// Community detection on a privately published graph, compared against the
// non-private spectral pipeline and across privacy budgets.
//
// Scenario (the paper's motivating one): a social network provider wants
// researchers to study community structure without seeing real friendships.
//
//   ./community_detection [--dataset facebook|pokec|livejournal]
//                         [--small] [--dim 100] [--seed 7]
//   ./community_detection --edges my_graph.txt --clusters 8
#include <cstdio>
#include <string>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "core/publisher.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

sgp::graph::Dataset pick_dataset(const std::string& name, bool small) {
  if (name == "pokec") {
    return small ? sgp::graph::pokec_sim_small() : sgp::graph::pokec_sim();
  }
  if (name == "livejournal") {
    return small ? sgp::graph::livejournal_sim_small()
                 : sgp::graph::livejournal_sim();
  }
  return small ? sgp::graph::facebook_sim_small() : sgp::graph::facebook_sim();
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  sgp::graph::Dataset dataset;
  if (args.has("edges")) {
    dataset.name = args.get_string("edges", "");
    dataset.planted.graph =
        sgp::graph::read_edge_list_file(args.get_string("edges", ""));
    dataset.num_communities =
        static_cast<std::size_t>(args.get_int("clusters", 8));
  } else {
    dataset = pick_dataset(args.get_string("dataset", "facebook"),
                           args.get_bool("small", true));
  }
  const auto& graph = dataset.planted.graph;
  const std::size_t k = dataset.num_communities;
  const bool have_truth = !dataset.planted.labels.empty();
  std::printf("dataset %s: %zu nodes, %zu edges, %zu communities\n",
              dataset.name.c_str(), graph.num_nodes(), graph.num_edges(), k);

  // Non-private reference: spectral clustering on the original graph.
  sgp::cluster::SpectralOptions ref_opt;
  ref_opt.num_clusters = k;
  ref_opt.seed = seed;
  const auto reference = sgp::cluster::spectral_cluster_graph(graph, ref_opt);
  if (have_truth) {
    std::printf("non-private spectral clustering NMI = %.3f\n\n",
                sgp::cluster::normalized_mutual_information(
                    reference.assignments, dataset.planted.labels));
  }

  sgp::util::TextTable table({"epsilon", "sigma", "nmi_vs_truth",
                              "nmi_vs_nonprivate"});
  for (double epsilon : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = std::min(dim, graph.num_nodes());
    opt.params = {epsilon, 1e-6};
    opt.seed = seed;
    const auto published =
        sgp::core::RandomProjectionPublisher(opt).publish(graph);
    const auto clusters = sgp::core::cluster_published(published, k, seed);
    table.new_row()
        .add(epsilon, 2)
        .add(published.calibration.sigma, 3)
        .add(have_truth ? sgp::cluster::normalized_mutual_information(
                              clusters.assignments, dataset.planted.labels)
                        : 0.0,
             3)
        .add(sgp::cluster::normalized_mutual_information(
                 clusters.assignments, reference.assignments),
             3);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading the table: published-graph clustering approaches the\n"
      "non-private pipeline as epsilon grows; privacy is free storage-wise\n"
      "(the release is %zu x %zu instead of %zu x %zu).\n",
      graph.num_nodes(), dim, graph.num_nodes(), graph.num_nodes());
  return 0;
}
