// Budget-capped re-publishing of an evolving social graph.
//
// Scenario: a provider publishes a fresh DP snapshot every week while the
// graph gains edges. The session enforces a yearly privacy cap with Rényi
// accounting, refusing to publish once the cap is reached; the example
// tracks clustering utility of each snapshot against the week's ground
// truth.
//
//   ./republishing_session [--weeks 20] [--per-epsilon 4.0]
//                          [--total-epsilon 24] [--seed 7]
#include <cstdio>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const auto weeks = static_cast<std::size_t>(args.get_int("weeks", 20));
  const double per_eps = args.get_double("per-epsilon", 4.0);
  const double total_eps = args.get_double("total-epsilon", 24.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  sgp::core::PublishingSession::Options opt;
  opt.publisher.projection_dim = 64;
  opt.publisher.params = {per_eps, 1e-7};
  opt.publisher.seed = seed;
  opt.total_budget = {total_eps, 1e-5};
  sgp::core::PublishingSession session(opt);

  std::printf("cap: %s; per release: %s\n",
              opt.total_budget.to_string().c_str(),
              opt.publisher.params.to_string().c_str());

  sgp::util::TextTable table(
      {"week", "edges", "published", "spent_eps", "remaining_eps", "nmi"});
  for (std::size_t week = 0; week < weeks; ++week) {
    // The graph densifies over time (new friendships every week).
    sgp::random::Rng rng(seed);  // same node set, evolving density
    const double p_in = 0.45 + 0.01 * static_cast<double>(week);
    const auto snapshot =
        sgp::graph::stochastic_block_model({150, 150, 150}, p_in, 0.01, rng);

    table.new_row().add(week + 1).add(snapshot.graph.num_edges());
    try {
      const auto release = session.publish(snapshot.graph);
      const auto clusters = sgp::core::cluster_published(release, 3, seed);
      table.add(std::string("yes"))
          .add(session.spent().epsilon, 3)
          .add(session.remaining_epsilon(), 3)
          .add(sgp::cluster::normalized_mutual_information(
                   clusters.assignments, snapshot.labels),
               3);
    } catch (const std::runtime_error&) {
      table.add(std::string("REFUSED"))
          .add(session.spent().epsilon, 3)
          .add(session.remaining_epsilon(), 3)
          .add(std::string("-"));
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\n%zu releases made; the session refused further publication once the "
      "Renyi-accounted spend would exceed eps=%.1f.\n",
      session.num_releases(), total_eps);
  return 0;
}
