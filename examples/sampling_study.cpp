// Scale-down study: publish a down-sampled graph when the full one is too
// large for a pipeline (or for a tight privacy budget — fewer nodes means a
// stronger relative spectral signal at the same ε).
//
// Compares uniform node sampling vs random-walk sampling as the scale-down
// step, measuring how well communities survive sampling + DP publication.
//
//   ./sampling_study [--target 800] [--epsilon 8] [--dim 64] [--seed 7]
#include <cstdio>

#include "cluster/metrics.hpp"
#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/sampling.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// Publishes `g` and clusters the release; returns NMI vs `labels`.
double publish_and_score(const sgp::graph::Graph& g,
                         const std::vector<std::uint32_t>& labels,
                         std::size_t k, double epsilon, std::size_t dim,
                         std::uint64_t seed) {
  sgp::core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = std::min(dim, g.num_nodes());
  opt.params = {epsilon, 1e-6};
  opt.seed = seed;
  const auto pub = sgp::core::RandomProjectionPublisher(opt).publish(g);
  const auto res = sgp::core::cluster_published(pub, k, seed);
  return sgp::cluster::normalized_mutual_information(res.assignments, labels);
}

std::vector<std::uint32_t> project_labels(
    const std::vector<std::uint32_t>& labels,
    const std::vector<std::uint32_t>& mapping) {
  std::vector<std::uint32_t> out(mapping.size());
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    out[i] = labels[mapping[i]];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const auto target = static_cast<std::size_t>(args.get_int("target", 800));
  const double epsilon = args.get_double("epsilon", 8.0);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  sgp::random::Rng rng(seed);
  const auto planted = sgp::graph::stochastic_block_model(
      std::vector<std::size_t>(8, 400), 0.3, 0.004, rng);
  const auto& full = planted.graph;
  std::printf("full graph: %zu nodes, %zu edges, 8 communities\n",
              full.num_nodes(), full.num_edges());

  sgp::util::TextTable table({"variant", "nodes", "edges", "avg_deg",
                              "min_comm_share", "nmi_after_publish"});

  auto min_community_share = [&](const std::vector<std::uint32_t>& labels) {
    std::vector<std::size_t> counts(8, 0);
    for (std::uint32_t l : labels) ++counts[l];
    std::size_t smallest = labels.size();
    for (std::size_t c : counts) smallest = std::min(smallest, c);
    return static_cast<double>(smallest) * 8.0 /
           static_cast<double>(labels.size());
  };

  table.new_row()
      .add(std::string("full graph"))
      .add(full.num_nodes())
      .add(full.num_edges())
      .add(full.average_degree(), 1)
      .add(min_community_share(planted.labels), 2)
      .add(publish_and_score(full, planted.labels, 8, epsilon, dim, seed), 3);

  {
    std::vector<std::uint32_t> mapping;
    const auto sub = sgp::graph::node_sample(full, target, rng, &mapping);
    const auto labels = project_labels(planted.labels, mapping);
    table.new_row()
        .add(std::string("uniform node sample"))
        .add(sub.num_nodes())
        .add(sub.num_edges())
        .add(sub.average_degree(), 1)
        .add(min_community_share(labels), 2)
        .add(publish_and_score(sub, labels, 8, epsilon, dim, seed), 3);
  }
  {
    std::vector<std::uint32_t> mapping;
    const auto sub =
        sgp::graph::random_walk_sample(full, target, rng, &mapping);
    const auto labels = project_labels(planted.labels, mapping);
    table.new_row()
        .add(std::string("random-walk sample"))
        .add(sub.num_nodes())
        .add(sub.num_edges())
        .add(sub.average_degree(), 1)
        .add(min_community_share(labels), 2)
        .add(publish_and_score(sub, labels, 8, epsilon, dim, seed), 3);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nThe trade-off (min_comm_share = smallest community's share of the "
      "sample, relative to parity at 1.0): uniform sampling covers every "
      "community evenly but dilutes edges; the restarting random walk keeps "
      "local density yet over-samples the communities it starts in, which "
      "can hurt k-way clustering more than sparsity does. Down-sampling is "
      "not free — prefer publishing the full graph when the budget allows.\n");
  return 0;
}
