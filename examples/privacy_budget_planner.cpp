// Privacy-budget planning for a graph-publishing deployment.
//
// Answers the data-owner questions that precede any release:
//  - how much noise buys (ε, δ) at my projection dimension?
//  - what does the analytic Gaussian mechanism save over the classic bound?
//  - if I re-publish monthly, what budget have I spent after a year?
//
//   ./privacy_budget_planner [--nodes 100000] [--dim 100] [--delta 1e-6]
//                            [--releases 12]
#include <cstdio>

#include "core/theory.hpp"
#include "dp/accountant.hpp"
#include "dp/mechanisms.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("nodes", 100000));
  const auto m = static_cast<std::size_t>(args.get_int("dim", 100));
  const double delta = args.get_double("delta", 1e-6);
  const auto releases = static_cast<std::size_t>(args.get_int("releases", 12));

  std::printf("planning a release of an n=%zu graph at m=%zu, delta=%g\n\n", n,
              m, delta);

  // Storage story first: what does the analyst receive?
  const double dense_mb =
      static_cast<double>(n) * static_cast<double>(n) * 8.0 / (1 << 20);
  const double projected_mb =
      static_cast<double>(n) * static_cast<double>(m) * 8.0 / (1 << 20);
  std::printf("published size: %.1f MiB (projected) vs %.1f MiB (dense A)\n\n",
              projected_mb, dense_mb);

  sgp::util::TextTable table({"epsilon", "sensitivity", "sigma_analytic",
                              "sigma_classic", "saving"});
  for (double epsilon : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const sgp::dp::PrivacyParams params{epsilon, delta};
    const auto analytic = sgp::core::calibrate_noise(m, params, true);
    const auto classic = sgp::core::calibrate_noise(m, params, false);
    char saving[32];
    std::snprintf(saving, sizeof(saving), "%.1f%%",
                  100.0 * (1.0 - analytic.sigma / classic.sigma));
    table.new_row()
        .add(epsilon, 2)
        .add(analytic.sensitivity, 4)
        .add(analytic.sigma, 3)
        .add(classic.sigma, 3)
        .add(std::string(saving));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Composition: republishing the evolving graph every month.
  sgp::dp::PrivacyAccountant accountant;
  const sgp::dp::PrivacyParams per_release{1.0, delta};
  for (std::size_t r = 0; r < releases; ++r) accountant.record(per_release);
  const auto basic = accountant.basic_composition();
  const auto advanced = accountant.advanced_composition(1e-6);
  const auto best = accountant.best_composition(1e-6);
  std::printf("after %zu releases at %s each:\n", releases,
              per_release.to_string().c_str());
  std::printf("  basic composition:    %s\n", basic.to_string().c_str());
  std::printf("  advanced composition: %s\n", advanced.to_string().c_str());
  std::printf("  best of the two:      %s\n", best.to_string().c_str());

  // JL guidance: the dimension needed for distance-faithful embeddings.
  std::printf("\nJL reference dims for n=%zu points: ", n);
  for (double distortion : {0.5, 0.3, 0.1}) {
    std::printf("dist %.1f -> m >= %zu;  ", distortion,
                sgp::core::johnson_lindenstrauss_dim(n, distortion));
  }
  std::printf("\n");
  return 0;
}
