// Publishing a *weighted* interaction matrix — the abstract's general
// "publishing matrices with differential privacy" setting.
//
// Scenario: instead of friendship bits, the provider holds interaction
// strengths (message counts per pair, capped at w_max by policy). The
// mechanism generalizes: one interaction changing by at most w_max scales
// the row sensitivity linearly. We publish the weighted matrix and verify
// the analyst still recovers the strong-tie community structure.
//
//   ./weighted_interactions [--epsilon 8] [--w-max 5] [--dim 64] [--seed 7]
#include <algorithm>
#include <cstdio>

#include "cluster/metrics.hpp"
#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "random/distributions.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const double epsilon = args.get_double("epsilon", 8.0);
  const double w_max = args.get_double("w-max", 5.0);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // Build a weighted interaction matrix: SBM topology, within-community
  // interactions are strong (2..w_max messages), cross ones weak (1).
  sgp::random::Rng rng(seed);
  const auto planted =
      sgp::graph::stochastic_block_model({150, 150, 150}, 0.4, 0.03, rng);
  std::vector<sgp::linalg::Triplet> trips;
  for (const auto& e : planted.graph.edges()) {
    const bool strong = planted.labels[e.u] == planted.labels[e.v];
    const double w =
        strong ? 2.0 + static_cast<double>(rng.next_below(
                           static_cast<std::uint64_t>(w_max) - 1))
               : 1.0;
    trips.push_back({e.u, e.v, w});
    trips.push_back({e.v, e.u, w});
  }
  const auto n = planted.graph.num_nodes();
  const auto interactions =
      sgp::linalg::CsrMatrix::from_triplets(n, n, trips);
  std::printf("interaction matrix: %zu users, %zu weighted pairs, w_max=%g\n",
              n, interactions.nnz() / 2, w_max);

  // Publish under the weighted neighboring relation.
  sgp::core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = dim;
  opt.params = {epsilon, 1e-6};
  opt.seed = seed;
  const sgp::core::RandomProjectionPublisher publisher(opt);
  const auto release = publisher.publish_matrix(interactions, w_max);
  std::printf(
      "published %zu x %zu, sigma=%.3f (= %g x the unweighted calibration), "
      "%s\n",
      release.data.rows(), release.data.cols(), release.calibration.sigma,
      w_max, release.params.to_string().c_str());

  // Analyst: strong-tie communities from the weighted release.
  const auto clusters = sgp::core::cluster_published(release, 3, seed);
  std::printf("clustering NMI vs ground truth: %.3f\n",
              sgp::cluster::normalized_mutual_information(
                  clusters.assignments, planted.labels));

  // Compare with publishing only the 0/1 skeleton at the same budget.
  const auto binary_release = publisher.publish(planted.graph);
  const auto binary_clusters =
      sgp::core::cluster_published(binary_release, 3, seed);
  std::printf("  (0/1 skeleton at the same budget: NMI %.3f — weights carry "
              "extra signal but cost w_max x noise)\n",
              sgp::cluster::normalized_mutual_information(
                  binary_clusters.assignments, planted.labels));
  return 0;
}
