// Influencer identification from a privately published graph.
//
// Scenario: a marketing analyst receives only the DP release of a social
// graph and must shortlist the most influential users. We compare the
// shortlist against the ground-truth ranking the provider could compute
// in-house.
//
//   ./influencer_ranking [--nodes 2000] [--attach 5] [--epsilon 10]
//                        [--dim 100] [--top-percent 5] [--seed 7]
#include <cstdio>

#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("nodes", 2000));
  const auto attach = static_cast<std::size_t>(args.get_int("attach", 5));
  const double epsilon = args.get_double("epsilon", 10.0);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 100));
  const auto top_pct = args.get_double("top-percent", 5.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // Hub-dominated graph: preferential attachment grows celebrity accounts.
  sgp::random::Rng rng(seed);
  const auto graph = sgp::graph::barabasi_albert(n, attach, rng);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * top_pct / 100.0));
  std::printf("graph: %zu nodes, %zu edges; shortlisting top %zu (%.1f%%)\n",
              graph.num_nodes(), graph.num_edges(), k, top_pct);

  // Provider-side ground truth.
  const auto true_degree = sgp::ranking::degree_centrality(graph);
  const auto true_eigen = sgp::ranking::eigenvector_centrality(graph);
  const auto true_pagerank = sgp::ranking::pagerank(graph);

  // Analyst-side: rankings recovered from the DP release alone.
  sgp::core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = std::min(dim, n);
  opt.params = {epsilon, 1e-6};
  opt.seed = seed;
  const auto published =
      sgp::core::RandomProjectionPublisher(opt).publish(graph);
  const auto est_degree = sgp::core::degree_scores(published);
  const auto est_eigen = sgp::core::centrality_scores(published);

  sgp::util::TextTable table(
      {"truth_metric", "estimator", "topk_overlap", "kendall_tau",
       "spearman_rho"});
  auto report = [&](const char* truth_name, const std::vector<double>& truth,
                    const char* est_name, const std::vector<double>& est) {
    table.new_row()
        .add(std::string(truth_name))
        .add(std::string(est_name))
        .add(sgp::ranking::top_k_overlap(truth, est, k), 3)
        .add(sgp::ranking::kendall_tau(truth, est), 3)
        .add(sgp::ranking::spearman_rho(truth, est), 3);
  };
  report("degree", true_degree, "row-norm estimate", est_degree);
  report("eigenvector", true_eigen, "top singular vector", est_eigen);
  report("pagerank", true_pagerank, "row-norm estimate", est_degree);
  std::printf("%s", table.to_string().c_str());

  // Show the actual shortlist intersection for the degree ranking.
  const auto true_order = sgp::ranking::ranking_from_scores(true_degree);
  const auto est_order = sgp::ranking::ranking_from_scores(est_degree);
  std::printf("\ntop-10 by true degree:      ");
  for (int i = 0; i < 10; ++i) std::printf("%zu ", true_order[i]);
  std::printf("\ntop-10 from the DP release: ");
  for (int i = 0; i < 10; ++i) std::printf("%zu ", est_order[i]);
  std::printf("\n");
  return 0;
}
