// Quickstart: publish a social graph with differential privacy and use the
// release for clustering and ranking — the full API surface in ~60 lines.
//
//   ./quickstart [--epsilon 6] [--dim 64] [--seed 7]
#include <cstdio>

#include "cluster/metrics.hpp"
#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const double epsilon = args.get_double("epsilon", 6.0);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // 1. A social graph with three communities and celebrity hubs (in
  //    practice: your real graph, e.g. via sgp::graph::read_edge_list_file).
  sgp::random::Rng rng(seed);
  const auto planted =
      sgp::graph::social_network_model({150, 150, 150}, 0.5, 0.01, 8, rng);
  const auto& graph = planted.graph;
  std::printf("graph: %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  // 2. Publish with (ε, δ)-differential privacy.
  sgp::core::RandomProjectionPublisher::Options options;
  options.projection_dim = dim;
  options.params = {epsilon, 1e-6};
  options.seed = seed;
  const sgp::core::RandomProjectionPublisher publisher(options);
  const auto published = publisher.publish(graph);
  std::printf("published: %zu x %zu matrix (%zu bytes), sigma=%.3f, %s\n",
              published.data.rows(), published.data.cols(),
              published.published_bytes(), published.calibration.sigma,
              published.params.to_string().c_str());

  // 3a. Application 1 — node clustering from the release alone.
  const auto clusters = sgp::core::cluster_published(published, 3, seed);
  const double nmi = sgp::cluster::normalized_mutual_information(
      clusters.assignments, planted.labels);
  std::printf("clustering: NMI vs ground-truth communities = %.3f\n", nmi);

  // 3b. Application 2 — node ranking from the release alone.
  const auto truth = sgp::ranking::degree_centrality(graph);
  const auto estimate = sgp::core::degree_scores(published);
  const double overlap = sgp::ranking::top_k_overlap(truth, estimate, 45);
  const double tau = sgp::ranking::kendall_tau(truth, estimate);
  std::printf(
      "ranking: top-10%% degree overlap = %.3f (random guess: 0.100), "
      "kendall tau = %.3f\n",
      overlap, tau);
  return 0;
}
