// Baseline publishers the paper compares against.
//
//  - DenseGaussianPublisher: perturb the full n×n adjacency matrix with the
//    Gaussian mechanism. This is the "publishing matrices with differential
//    privacy" prior work the abstract calls computationally impractical:
//    O(n²) noise draws and O(n²) storage.
//  - LnppPublisher: Laplace-noise perturbation of the top-k eigen-spectrum
//    (after Wang, Wu & Wu, "Differential Privacy Preserving Spectral Graph
//    Analysis"). Pure ε-DP; eigenvector sensitivity scales with 1/eigengap,
//    which is what ruins its utility on real graphs.
//  - EdgeFlipPublisher: randomized response on every potential edge. Pure
//    ε-DP; output is a (dense-ish) graph.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/defaults.hpp"
#include "dp/privacy.hpp"
#include "graph/graph.hpp"
#include "linalg/dense_matrix.hpp"

namespace sgp::core {

/// Full-matrix Gaussian release: Ã = A + N, N i.i.d. N(0, σ²) with σ
/// calibrated to the edge ℓ2-sensitivity √2.
struct DensePublishedGraph {
  linalg::DenseMatrix data;  ///< n × n, symmetrized
  dp::PrivacyParams params;
  double sigma = 0.0;

  [[nodiscard]] std::size_t published_bytes() const {
    return data.rows() * data.cols() * sizeof(double);
  }
};

class DenseGaussianPublisher {
 public:
  DenseGaussianPublisher(dp::PrivacyParams params, std::uint64_t seed = 7);

  /// Publishes the full perturbed adjacency matrix. O(n²) — intended for the
  /// small/medium graphs where it is feasible at all.
  [[nodiscard]] DensePublishedGraph publish(const graph::Graph& g) const;

 private:
  dp::PrivacyParams params_;
  std::uint64_t seed_;
};

/// Top-k spectral embedding (n×k eigenvectors of the symmetrized release).
linalg::DenseMatrix dense_spectral_embedding(const DensePublishedGraph& pub,
                                             std::size_t k,
                                             std::uint64_t seed = 7);

/// LNPP release: noisy top-k eigenvalues and eigenvectors of A.
struct LnppRelease {
  std::vector<double> eigenvalues;  ///< k noisy eigenvalues (descending-ish)
  linalg::DenseMatrix eigenvectors;  ///< n × k noisy eigenvectors
  dp::PrivacyParams params;          ///< ε-DP (delta is 0)
};

class LnppPublisher {
 public:
  struct Options {
    std::size_t k = 8;       ///< how many eigenpairs to release
    double epsilon = dp::kDefaultEpsilon;  ///< total pure-DP budget
    double value_share = 0.5;  ///< fraction of ε for the eigenvalues
    std::uint64_t seed = 7;
    double min_gap = 1e-3;  ///< eigengap floor to keep noise finite
  };

  explicit LnppPublisher(Options options);

  /// Publishes k noisy eigenpairs. Eigenvalues get Laplace noise at ℓ1
  /// sensitivity √(2k) (Weyl + Cauchy–Schwarz); eigenvector i gets Laplace
  /// noise at ℓ1 sensitivity √n·2√2/gap_i (Davis–Kahan style, gap from the
  /// noisy eigenvalues, budget ε_u/k per vector).
  [[nodiscard]] LnppRelease publish(const graph::Graph& g) const;

 private:
  Options options_;
};

/// Degree-sequence publishing after Hay et al. 2009: release the *sorted*
/// degree sequence with Laplace noise (global sensitivity 2 at edge level:
/// changing one edge moves two positions of the sorted multiset by 1 in ℓ1),
/// then post-process onto the monotone cone with isotonic regression (free),
/// and optionally materialize a synthetic graph from the cleaned sequence
/// via the configuration model. Pure ε-DP. A degree-distribution-faithful
/// but structure-free baseline: communities do not survive, which is why
/// spectrum-preserving publication (the paper's mechanism) exists.
class DegreeSequencePublisher {
 public:
  struct Release {
    std::vector<double> noisy_sorted_degrees;  ///< after isotonic cleanup
    dp::PrivacyParams params;                  ///< (ε, 0)
  };

  DegreeSequencePublisher(double epsilon, std::uint64_t seed = 7);

  /// Publishes the cleaned non-increasing degree sequence.
  [[nodiscard]] Release publish(const graph::Graph& g) const;

  /// Samples a synthetic graph matching a released sequence (configuration
  /// model; multi-edges/self-loops dropped). Post-processing — no budget.
  [[nodiscard]] graph::Graph synthesize(const Release& release) const;

 private:
  double epsilon_;
  std::uint64_t seed_;
};

/// Randomized response over all C(n, 2) potential edges: each bit kept with
/// probability e^ε/(1+e^ε). Pure ε-DP per edge. Output graph has
/// ~flip·n²/2 spurious edges, so it densifies sparse graphs — part of why
/// this baseline scales poorly.
class EdgeFlipPublisher {
 public:
  EdgeFlipPublisher(double epsilon, std::uint64_t seed = 7);

  [[nodiscard]] graph::Graph publish(const graph::Graph& g) const;

  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  std::uint64_t seed_;
};

}  // namespace sgp::core
