// Surrogate graph generation from a DP release.
//
// Some consumers want an actual *graph* (for tools that only speak edge
// lists), not an n×m matrix. Because the release approximates the top-k
// spectral structure of A, we can fit a random dot-product graph (RDPG):
//   X = U_k Σ_k^{1/2}   (from the SVD of Ỹ — left factors scaled so that
//                        X Xᵀ ≈ the rank-k part of A),
//   P(edge u, v) = clamp(<x_u, x_v>, 0, 1),
// and sample a synthetic graph from those probabilities. This is pure
// post-processing of the release: the surrogate inherits the (ε, δ)
// guarantee unchanged.
//
// Sampling all C(n,2) pairs exactly would be O(n²); `sample_surrogate_graph`
// uses per-row Bernoulli sampling over candidate pairs proposed by an upper
// bound on the dot products, keeping expected cost near the output size.
#pragma once

#include <cstdint>

#include "core/publisher.hpp"
#include "graph/graph.hpp"

namespace sgp::core {

struct SurrogateOptions {
  std::size_t rank = 8;        ///< spectral rank k of the RDPG fit
  std::uint64_t seed = 7;
  /// Cap on P(edge); guards against noise-inflated dot products.
  double max_probability = 1.0;
};

/// RDPG node positions X (n×k) fitted from the release. σ_i that are
/// numerically zero contribute zero columns.
linalg::DenseMatrix rdpg_positions(const PublishedGraph& published,
                                   std::size_t rank);

/// Samples a surrogate graph whose expected adjacency approximates the
/// rank-k spectral part of the original. O(n²) pair scan with early
/// rejection; intended for n up to ~10^5 at simulator scale.
graph::Graph sample_surrogate_graph(const PublishedGraph& published,
                                    const SurrogateOptions& options = {});

}  // namespace sgp::core
