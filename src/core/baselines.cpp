#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <functional>

#include "core/theory.hpp"
#include "dp/mechanisms.hpp"
#include "dp/postprocess.hpp"
#include "graph/generators.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/sparse_matrix.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::core {

DenseGaussianPublisher::DenseGaussianPublisher(dp::PrivacyParams params,
                                               std::uint64_t seed)
    : params_(params), seed_(seed) {
  params_.validate();
}

DensePublishedGraph DenseGaussianPublisher::publish(
    const graph::Graph& g) const {
  const std::size_t n = g.num_nodes();
  util::require(n >= 1, "dense publish: graph must have nodes");

  DensePublishedGraph out;
  out.params = params_;
  out.sigma = dp::analytic_gaussian_sigma(dense_row_sensitivity(), params_);

  // Perturb only the upper triangle and mirror it: the release stays
  // symmetric and the sensitivity √2 (two mirrored cells per edge) applies.
  random::Rng rng(seed_);
  out.data = g.adjacency_matrix().to_dense();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double noisy = out.data(i, j) + random::normal(rng, 0.0, out.sigma);
      out.data(i, j) = noisy;
      out.data(j, i) = noisy;
    }
  }
  return out;
}

linalg::DenseMatrix dense_spectral_embedding(const DensePublishedGraph& pub,
                                             std::size_t k,
                                             std::uint64_t seed) {
  const std::size_t n = pub.data.rows();
  util::require(k >= 1 && k <= n, "dense embedding: k must be in [1, n]");
  linalg::SymmetricOperator op{
      n, [&pub](std::span<const double> x, std::span<double> y) {
        const auto r = pub.data.multiply_vector(x);
        std::copy(r.begin(), r.end(), y.begin());
      }};
  linalg::LanczosOptions opt;
  opt.k = k;
  opt.seed = seed;
  return linalg::lanczos_topk(op, opt).vectors;
}

LnppPublisher::LnppPublisher(Options options) : options_(options) {
  util::require(options_.k >= 1, "lnpp: k must be >= 1");
  util::require(options_.epsilon > 0.0, "lnpp: epsilon must be > 0");
  util::require(options_.value_share > 0.0 && options_.value_share < 1.0,
                "lnpp: value_share must be in (0,1)");
  util::require(options_.min_gap > 0.0, "lnpp: min_gap must be > 0");
}

LnppRelease LnppPublisher::publish(const graph::Graph& g) const {
  const std::size_t n = g.num_nodes();
  const std::size_t k = options_.k;
  util::require(k <= n, "lnpp: k must be <= num_nodes");

  // True top-k eigenpairs of A (not private yet).
  const linalg::CsrMatrix a = g.adjacency_matrix();
  linalg::SymmetricOperator op{
      n, [&a](std::span<const double> x, std::span<double> y) {
        const auto r = a.multiply_vector(x);
        std::copy(r.begin(), r.end(), y.begin());
      }};
  linalg::LanczosOptions lopt;
  lopt.k = k;
  lopt.seed = options_.seed;
  linalg::LanczosResult eig = linalg::lanczos_topk(op, lopt);

  random::Rng rng(options_.seed + 0x517cc1b727220a95ULL);
  LnppRelease out;
  out.params = {options_.epsilon, 0.0};

  // Eigenvalues: one-edge change perturbs the spectrum by E with
  // ‖E‖_F = √2, so Σ(Δλ)² ≤ 2 (Wielandt–Hoffman) and the ℓ1 sensitivity of
  // the k-vector is ≤ √(2k) by Cauchy–Schwarz.
  const double eps_values = options_.epsilon * options_.value_share;
  const double value_scale =
      std::sqrt(2.0 * static_cast<double>(k)) / eps_values;
  out.eigenvalues = eig.values;
  for (double& v : out.eigenvalues) {
    v += random::laplace(rng, 0.0, value_scale);
  }

  // Eigenvectors: Davis–Kahan gives ‖Δu_i‖₂ ≤ 2√2 / gap_i; ℓ1 ≤ √n · that.
  // Gaps are estimated from the *noisy* eigenvalues (post-processing, no
  // extra budget) and floored to keep the scale finite.
  const double eps_vectors =
      options_.epsilon * (1.0 - options_.value_share);
  const double eps_per_vector = eps_vectors / static_cast<double>(k);
  out.eigenvectors = eig.vectors;
  for (std::size_t i = 0; i < k; ++i) {
    double gap = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < k; ++j) {
      if (j != i) {
        gap = std::min(gap,
                       std::fabs(out.eigenvalues[i] - out.eigenvalues[j]));
      }
    }
    if (k == 1) gap = std::max(std::fabs(out.eigenvalues[0]), options_.min_gap);
    gap = std::max(gap, options_.min_gap);
    const double sens_l1 =
        std::sqrt(static_cast<double>(n)) * 2.0 * std::sqrt(2.0) / gap;
    const double scale = sens_l1 / eps_per_vector;
    for (std::size_t row = 0; row < n; ++row) {
      out.eigenvectors(row, i) += random::laplace(rng, 0.0, scale);
    }
  }
  return out;
}

DegreeSequencePublisher::DegreeSequencePublisher(double epsilon,
                                                 std::uint64_t seed)
    : epsilon_(epsilon), seed_(seed) {
  util::require(epsilon > 0.0, "degree sequence: epsilon must be > 0");
}

DegreeSequencePublisher::Release DegreeSequencePublisher::publish(
    const graph::Graph& g) const {
  const std::size_t n = g.num_nodes();
  util::require(n >= 1, "degree sequence: graph must have nodes");

  std::vector<double> sorted(n);
  for (std::size_t u = 0; u < n; ++u) {
    sorted[u] = static_cast<double>(g.degree(u));
  }
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  // Laplace at ℓ1 sensitivity 2 (one edge shifts two sorted positions by 1).
  random::Rng rng(seed_);
  const double scale = dp::laplace_scale(2.0, epsilon_);
  for (double& v : sorted) v += random::laplace(rng, 0.0, scale);

  Release out;
  out.params = {epsilon_, 0.0};
  // Consistency: project back onto sorted-non-increasing, clamp to [0, n-1].
  out.noisy_sorted_degrees = dp::clamp_range(
      dp::isotonic_non_increasing(sorted), 0.0, static_cast<double>(n - 1));
  return out;
}

graph::Graph DegreeSequencePublisher::synthesize(const Release& release) const {
  const std::size_t n = release.noisy_sorted_degrees.size();
  util::require(n >= 1, "degree sequence: empty release");
  const auto degrees =
      dp::to_degree_sequence(release.noisy_sorted_degrees, n - 1);
  random::Rng rng(seed_ + 0x2545f4914f6cdd1dULL);
  return graph::configuration_model(degrees, rng);
}

EdgeFlipPublisher::EdgeFlipPublisher(double epsilon, std::uint64_t seed)
    : epsilon_(epsilon), seed_(seed) {
  util::require(epsilon > 0.0, "edge flip: epsilon must be > 0");
}

graph::Graph EdgeFlipPublisher::publish(const graph::Graph& g) const {
  const std::size_t n = g.num_nodes();
  random::Rng rng(seed_);
  const double keep = dp::randomized_response_keep_probability(epsilon_);
  const double flip = 1.0 - keep;

  std::vector<graph::Edge> edges;
  // Existing edges: kept with probability `keep`.
  for (const graph::Edge& e : g.edges()) {
    if (random::bernoulli(rng, keep)) edges.push_back(e);
  }
  // Non-edges: appear with probability `flip`. Enumerate by geometric
  // skipping over the C(n,2) pair space, O(#appearing).
  if (flip > 0.0 && n >= 2) {
    const std::size_t total = n * (n - 1) / 2;
    std::size_t idx = 0;
    while (true) {
      const std::uint64_t skip = random::geometric(rng, flip);
      if (skip >= total - idx) break;
      idx += skip;
      // Decode linear index into (u, v), u < v, row-major upper triangle.
      std::size_t u = 0;
      std::size_t remaining = idx;
      std::size_t row_len = n - 1;
      while (remaining >= row_len) {
        remaining -= row_len;
        ++u;
        --row_len;
      }
      const std::size_t v = u + 1 + remaining;
      if (!g.has_edge(u, v)) {
        edges.push_back({static_cast<std::uint32_t>(u),
                         static_cast<std::uint32_t>(v)});
      }
      ++idx;
      if (idx >= total) break;
    }
  }
  return graph::Graph::from_edges(n, edges);
}

}  // namespace sgp::core
