// Random projection matrices P ∈ R^{n×m}, the dimensionality-reduction stage
// of the mechanism. Entries are scaled so that E[‖x P‖²] = ‖x‖² for any row
// x (Johnson–Lindenstrauss normalization): projecting preserves geometry in
// expectation while shrinking n columns to m.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/dense_matrix.hpp"
#include "random/rng.hpp"

namespace sgp::core {

enum class ProjectionKind {
  kGaussian,    ///< entries i.i.d. N(0, 1/m) — the paper's choice
  kAchlioptas,  ///< sparse ±sqrt(3/m) w.p. 1/6 each, 0 w.p. 2/3 — ablation
};

[[nodiscard]] std::string to_string(ProjectionKind kind);

/// Samples an n×m projection matrix of the given kind. Requires m >= 1.
linalg::DenseMatrix make_projection(std::size_t n, std::size_t m,
                                    ProjectionKind kind, random::Rng& rng);

/// Gaussian projection: entries N(0, 1/m).
linalg::DenseMatrix gaussian_projection(std::size_t n, std::size_t m,
                                        random::Rng& rng);

/// Achlioptas sparse projection: sqrt(3/m)·{+1 w.p. 1/6, 0 w.p. 2/3,
/// −1 w.p. 1/6}. Same JL guarantees, 3× fewer multiplications.
linalg::DenseMatrix achlioptas_projection(std::size_t n, std::size_t m,
                                          random::Rng& rng);

}  // namespace sgp::core
