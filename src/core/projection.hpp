// Random projection matrices P ∈ R^{n×m}, the dimensionality-reduction stage
// of the mechanism. Entries are scaled so that E[‖x P‖²] = ‖x‖² for any row
// x (Johnson–Lindenstrauss normalization): projecting preserves geometry in
// expectation while shrinking n columns to m.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/dense_matrix.hpp"
#include "random/counter_rng.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"

namespace sgp::core {

enum class ProjectionKind {
  kGaussian,    ///< entries i.i.d. N(0, 1/m) — the paper's choice
  kAchlioptas,  ///< sparse ±sqrt(3/m) w.p. 1/6 each, 0 w.p. 2/3 — ablation
};

[[nodiscard]] std::string to_string(ProjectionKind kind);

/// Samples an n×m projection matrix of the given kind. Requires m >= 1.
linalg::DenseMatrix make_projection(std::size_t n, std::size_t m,
                                    ProjectionKind kind, random::Rng& rng);

/// Gaussian projection: entries N(0, 1/m).
linalg::DenseMatrix gaussian_projection(std::size_t n, std::size_t m,
                                        random::Rng& rng);

/// Achlioptas sparse projection: sqrt(3/m)·{+1 w.p. 1/6, 0 w.p. 2/3,
/// −1 w.p. 1/6}. Same JL guarantees, 3× fewer multiplications.
linalg::DenseMatrix achlioptas_projection(std::size_t n, std::size_t m,
                                          random::Rng& rng);

// ---------------------------------------------------------------------------
// Counter-based projection ("counter-v1" releases).
//
// P[i][j] is a pure function of (seed, i, j): entry (i, j) of an n×m
// projection draws from counter i·m + j of a CounterRng keyed on the release
// seed and a fixed stream id. Any tile can therefore be generated on demand,
// bit-identically, from any thread — the fused publish kernel never holds
// more of P than one thread-local tile.

/// Domain-separation stream ids (recorded implicitly by the release format's
/// `projection_rng counter-v1` tag — changing them breaks old releases).
inline constexpr std::uint64_t kProjectionStreamId = 0;
inline constexpr std::uint64_t kNoiseStreamId = 1;

/// The generator whose counters t = i·m + j define P[i][j] for a release seed.
[[nodiscard]] random::CounterRng projection_counter_rng(std::uint64_t seed);

/// The independent generator for the Gaussian noise N[i][j] (counter i·m + j).
[[nodiscard]] random::CounterRng noise_counter_rng(std::uint64_t seed);

/// Fills `out` (row-major, stride col_end - col_begin) with the tile
/// P[row_begin..row_end) × [col_begin..col_end) of the counter-based n×m
/// projection. `m` is the full column count (it fixes the counter layout).
/// Pure and thread-safe; matches the linalg::TileFiller shape once bound.
///
/// `kernel` selects the batch kernel: gaussian tiles resolve it through
/// resolve_normal_kernel (the mapping decides the release tag), achlioptas
/// tiles through resolve_exact_kernel (every variant is bit-identical, so
/// the default auto-dispatches to the fastest ISA without affecting bytes).
void fill_projection_tile(
    const random::CounterRng& rng, std::size_t m, ProjectionKind kind,
    std::size_t row_begin, std::size_t row_end, std::size_t col_begin,
    std::size_t col_end, double* out,
    random::KernelVariant kernel = random::KernelVariant::kAuto);

/// Materializes the full counter-based n×m projection for `seed` — the
/// reference the fused kernel is bit-identical to. Used by reconstruction
/// (regenerate_projection) and tests; publishing itself never calls this.
/// `kernel` as in fill_projection_tile: reconstruction passes the variant
/// matching the release tag it is regenerating.
linalg::DenseMatrix make_projection_counter(
    std::size_t n, std::size_t m, ProjectionKind kind, std::uint64_t seed,
    random::KernelVariant kernel = random::KernelVariant::kAuto);

}  // namespace sgp::core
