#include "core/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::core {

linalg::DenseMatrix rdpg_positions(const PublishedGraph& published,
                                   std::size_t rank) {
  util::require(rank >= 1 && rank <= published.projection_dim,
                "rdpg: rank must be in [1, m]");
  const linalg::SvdResult svd = linalg::svd_gram(published.data, rank);
  linalg::DenseMatrix x = svd.u;  // n×k
  for (std::size_t j = 0; j < rank; ++j) {
    const double scale = std::sqrt(std::max(svd.singular_values[j], 0.0));
    for (std::size_t i = 0; i < x.rows(); ++i) x(i, j) *= scale;
  }
  return x;
}

graph::Graph sample_surrogate_graph(const PublishedGraph& published,
                                    const SurrogateOptions& options) {
  util::require(options.max_probability > 0.0 &&
                    options.max_probability <= 1.0,
                "surrogate: max_probability must be in (0,1]");
  const linalg::DenseMatrix x = rdpg_positions(published, options.rank);
  const std::size_t n = x.rows();
  random::Rng rng(options.seed);

  // Row-norm upper bound: <x_u, x_v> <= ‖x_u‖·‖x_v‖ lets us skip hopeless
  // pairs cheaply once rows are processed in descending-norm order.
  std::vector<double> norms(n);
  for (std::size_t i = 0; i < n; ++i) norms[i] = linalg::norm2(x.row(i));

  std::vector<graph::Edge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    if (norms[u] == 0.0) continue;
    for (std::size_t v = u + 1; v < n; ++v) {
      const double upper = norms[u] * norms[v];
      if (upper <= 0.0) continue;
      // Cheap pre-test: draw once against the upper bound, then refine.
      // P(edge) = p ≤ upper, so accepting with p/upper after a Bernoulli
      // (upper-capped) pre-draw is an exact two-stage sampler.
      const double capped_upper = std::min(upper, options.max_probability);
      if (!random::bernoulli(rng, capped_upper)) continue;
      const double p = std::clamp(linalg::dot(x.row(u), x.row(v)), 0.0,
                                  options.max_probability);
      if (p <= 0.0) continue;
      if (random::bernoulli(rng, p / capped_upper)) {
        edges.push_back({static_cast<std::uint32_t>(u),
                         static_cast<std::uint32_t>(v)});
      }
    }
  }
  return graph::Graph::from_edges(n, edges);
}

}  // namespace sgp::core
