#include "core/distributed_publish.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/projection.hpp"
#include "core/serialization.hpp"
#include "core/theory.hpp"
#include "dp/defaults.hpp"
#include "dp/privacy.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/durable.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"

namespace sgp::core {
namespace {

constexpr char kLeaseMagic[] = "sgp-shard-lease v1";

std::string crc_hex_of(std::string_view bytes) {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", util::crc32(bytes));
  return hex;
}

std::string crc_hex_of_u32(std::uint32_t crc) {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", crc);
  return hex;
}

std::string with_crc(const std::string& body) {
  return body + " crc " + crc_hex_of(body);
}

/// Validates a CRC-guarded record line; on success strips the trailer into
/// `body`. A torn or bit-flipped line simply compares unequal.
bool crc_line_ok(const std::string& line, std::string& body) {
  const std::size_t pos = line.rfind(" crc ");
  if (pos == std::string::npos) return false;
  body = line.substr(0, pos);
  return with_crc(body) == line;
}

std::string shard_payload_path(const std::string& out_path, std::size_t s) {
  return out_path + ".shard." + std::to_string(s);
}

std::string progress_path_for(const std::string& out_path, std::size_t worker,
                              std::size_t gen) {
  return out_path + ".w" + std::to_string(worker) + ".g" +
         std::to_string(gen);
}

std::uint64_t payload_bytes_for(const ShardPlan& plan, std::size_t s,
                                std::size_t m) {
  const auto [r0, r1] = plan.shard_range(s);
  return static_cast<std::uint64_t>(r1 - r0) * m * sizeof(double);
}

/// Reads a payload side file and returns its CRC-32 when it exists with
/// exactly `expected_bytes` bytes; nullopt otherwise. Payloads are written
/// to a temp name and renamed, so existence already implies a complete
/// write; the size check additionally rejects stale files left by an
/// earlier, differently-shaped run.
std::optional<std::uint32_t> verify_payload(const std::string& path,
                                            std::uint64_t expected_bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size != expected_bytes) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() != expected_bytes) return std::nullopt;
  return util::crc32(bytes);
}

std::string lease_record(std::size_t s, std::size_t worker, std::size_t gen) {
  std::ostringstream out;
  out << "lease " << s << " worker " << worker << " gen " << gen;
  return with_crc(out.str());
}

std::string reclaim_record(std::size_t s, std::size_t worker,
                           const char* reason) {
  std::ostringstream out;
  out << "reclaim " << s << " worker " << worker << " reason " << reason;
  return with_crc(out.str());
}

std::string complete_record(std::size_t s, std::uint64_t bytes,
                            std::uint32_t payload_crc) {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", payload_crc);
  std::ostringstream out;
  out << "complete " << s << " bytes " << bytes << " payload " << hex;
  return with_crc(out.str());
}

/// Commits a payload tile atomically: write to `<path>.tmp`, flush, rename.
/// The rename is the commit point the coordinator's verifier observes.
/// Takes the release's PrivacyParams (and re-validates them) so payload
/// bytes cannot leave through a signature with no privacy context — the
/// sgp-lint R8 privacy-flow contract.
void write_payload_file(const std::string& path,
                        const dp::PrivacyParams& params,
                        const std::vector<double>& tile) {
  params.validate();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw util::IoError("distributed publish: cannot open " + tmp);
    }
    write_published_doubles(out, tile);
    out.flush();
    if (!out.good()) {
      throw util::IoError("distributed publish: write failed on " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw util::IoError("distributed publish: cannot rename " + tmp + ": " +
                        ec.message());
  }
}

/// Shards proven complete by a prior run's lease file: `complete` records
/// under a matching magic + config whose payload side files still verify
/// (size and CRC). Returns shard → payload CRC. Scanning stops at the
/// first structurally invalid line (torn tail); a complete record whose
/// payload has since vanished is skipped, not fatal — the shard is simply
/// recomputed.
std::map<std::size_t, std::uint32_t> resumable_shards(
    const std::string& lease_path, const std::string& config,
    const ShardPlan& plan, std::size_t m, const std::string& out_path) {
  std::map<std::size_t, std::uint32_t> done;
  std::ifstream in(lease_path, std::ios::binary);
  if (!in.good()) return done;
  std::string line;
  if (!std::getline(in, line) || line != kLeaseMagic) return done;
  if (!std::getline(in, line) || line != config) return done;
  while (std::getline(in, line)) {
    std::string body;
    if (!crc_line_ok(line, body)) break;
    std::istringstream fields(body);
    std::string kind;
    fields >> kind;
    if (kind == "lease" || kind == "reclaim") continue;
    if (kind != "complete") break;
    std::size_t s = 0;
    std::uint64_t bytes = 0;
    std::string bytes_kw, payload_kw, recorded_hex;
    fields >> s >> bytes_kw >> bytes >> payload_kw >> recorded_hex;
    if (!fields || bytes_kw != "bytes" || payload_kw != "payload") break;
    if (s >= plan.num_shards() || bytes != payload_bytes_for(plan, s, m)) {
      break;
    }
    const auto crc = verify_payload(shard_payload_path(out_path, s), bytes);
    if (!crc) continue;
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08x", *crc);
    if (recorded_hex == hex) done[s] = *crc;
  }
  return done;
}

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

/// Release-level trace id: wall-clock nanos mixed with the pid through the
/// splitmix64 finalizer. Uniqueness across concurrent coordinators is what
/// matters; this is an identifier, not randomness for the mechanism.
std::string mint_trace_id() {
  const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  std::uint64_t state = static_cast<std::uint64_t>(nanos) ^
                        (obs::sidecar_pid() << 32);
  const std::uint64_t mixed = random::splitmix64(state);
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(mixed));
  return hex;
}

std::string sidecar_path_for_pid(const std::string& prefix) {
  return prefix + std::to_string(obs::sidecar_pid()) + ".jsonl";
}

}  // namespace

DistributedPublishResult publish_distributed(
    const graph::EdgeListShardReader& reader,
    const DistributedPublishOptions& options, const std::string& out_path) {
  const std::size_t n = reader.num_nodes();
  const std::size_t m = options.sharded.publish.projection_dim;
  util::require(n >= 1, "publish_distributed: graph must have nodes");
  util::require(m >= 1 && m <= n,
                "publish_distributed: projection_dim must be in [1, n]");
  util::require(options.lease_timeout_seconds > 0.0,
                "publish_distributed: lease timeout must be positive");
  options.sharded.publish.params.validate();
  const std::size_t workers = std::max<std::size_t>(1, options.workers);

  const ShardPlan plan = plan_shards(n, options.sharded.shard_rows);
  const NoiseCalibration calibration = calibrate_noise(
      m, options.sharded.publish.params,
      options.sharded.publish.analytic_calibration,
      options.sharded.publish.delta_split);
  const std::string config =
      shard_config_line(options.sharded, n, m, calibration, plan);
  const std::string config_crc = crc_hex_of(config);

  // The observability plane: mint the release trace id and open the
  // coordinator's sidecar before any span or lifecycle event fires. The
  // merged v2 report needs the span tree, so tracing is forced on even when
  // the tool only asked for metrics.
  const bool obs_plane = !options.obs_sidecar_prefix.empty();
  std::string trace_id;
  if (obs_plane) {
    trace_id = mint_trace_id();
    obs::set_trace_enabled(true);
    obs::SidecarInfo sidecar_info;
    sidecar_info.role = "coordinator";
    sidecar_info.trace_id = trace_id;
    obs::open_sidecar(sidecar_path_for_pid(options.obs_sidecar_prefix),
                      sidecar_info);
  }

  obs::ScopedTimer timer(obs::names::kPublishDistributed);
  timer.attr("n", n).attr("m", m).attr("shards", plan.num_shards())
      .attr("workers", workers);
  // The span every worker forest re-attaches under at merge time.
  const std::uint64_t parent_span = obs::current_span_id();
  obs::gauge(obs::names::kPublishWorkers).set(static_cast<double>(workers));
  obs::gauge(obs::names::kPublishShardRows)
      .set(static_cast<double>(plan.shard_rows));
  obs::gauge(obs::names::kPublishSigma).set(calibration.sigma);
  obs::gauge(obs::names::kGraphNodes).set(static_cast<double>(n));

  std::ostringstream header;
  // The tag must name the normal mapping the shard tiles are generated
  // with — the same resolution the workers receive via --kernel.
  write_published_header(header, n, m, options.sharded.publish.params,
                         calibration, options.sharded.publish.projection,
                         projection_rng_for(
                             options.sharded.publish.projection,
                             random::resolve_normal_kernel(
                                 options.sharded.publish.kernel)));
  const std::string header_bytes = header.str();

  const std::string lease_path = out_path + ".lease";
  std::map<std::size_t, std::uint32_t> resumed;
  if (options.sharded.resume) {
    resumed = resumable_shards(lease_path, config, plan, m, out_path);
  }
  std::set<std::size_t> completed;
  for (const auto& [s, crc] : resumed) completed.insert(s);

  DistributedPublishResult result;
  result.num_nodes = n;
  result.shards_total = plan.num_shards();
  result.shards_resumed = completed.size();
  result.trace_id = trace_id;
  result.calibration = calibration;
  if (!completed.empty()) {
    obs::counter(obs::names::kPublishShardsResumed).add(completed.size());
    for (const std::size_t s : completed) {
      obs::log_event(obs::names::kEventShardResumed,
                     {{"shard", std::to_string(s)}});
    }
  }

  // Rewrite the lease log: magic, config, then the completes that survived
  // verification. Every record from here on is fsynced before it is
  // trusted (util/durable.hpp).
  util::DurableAppender lease;
  lease.open(lease_path, /*truncate=*/true);
  {
    std::string prefix = std::string(kLeaseMagic) + '\n' + config + '\n';
    for (const auto& [s, crc] : resumed) {
      prefix += complete_record(s, payload_bytes_for(plan, s, m), crc) + '\n';
    }
    lease.append(prefix);
  }

  static obs::Counter& shards_done = obs::counter(obs::names::kPublishShards);
  static obs::Counter& reclaimed_ctr =
      obs::counter(obs::names::kPublishLeasesReclaimed);

  auto append_lease = [&](const std::string& record) {
    util::retry_with_backoff(options.retry, "lease append", [&] {
      util::fault_point(util::fault_points::kLeaseAcquire);
      lease.append_line(record);
    });
  };
  auto mark_complete = [&](std::size_t s, std::uint32_t crc) {
    append_lease(complete_record(s, payload_bytes_for(plan, s, m), crc));
    completed.insert(s);
    shards_done.add();
    obs::log_event(obs::names::kEventShardCommitted,
                   {{"shard", std::to_string(s)},
                    {"bytes", std::to_string(payload_bytes_for(plan, s, m))},
                    {"payload", crc_hex_of_u32(crc)}});
  };

  struct Slot {
    std::size_t id = 0;
    std::size_t gen = 0;
    std::size_t spawn_attempts = 0;
    bool timed_out = false;
    std::vector<std::size_t> pending;
    std::optional<util::Subprocess> proc;
    std::string progress_path;
    std::uintmax_t progress_size = 0;
    std::chrono::steady_clock::time_point last_activity;
  };
  std::vector<Slot> slots(workers);
  std::vector<std::size_t> inprocess;
  const std::size_t spawn_budget =
      std::max<std::size_t>(1, options.retry.max_attempts);

  auto try_spawn = [&](Slot& slot) -> bool {
    util::Subprocess::Options sp;
    sp.argv = {options.worker_program,
               "--worker",
               "--edges",
               options.edges_path,
               "--out",
               out_path,
               "--worker-id",
               std::to_string(slot.id),
               "--gen",
               std::to_string(slot.gen),
               "--config-crc",
               config_crc,
               "--dim",
               std::to_string(m),
               "--epsilon",
               format_double(options.sharded.publish.params.epsilon),
               "--delta",
               format_double(options.sharded.publish.params.delta),
               "--delta-split",
               format_double(options.sharded.publish.delta_split),
               "--seed",
               std::to_string(options.sharded.publish.seed),
               "--projection",
               to_string(options.sharded.publish.projection),
               // The coordinator resolves the kernel once and hands workers
               // the resolved name, so a worker can never re-resolve kAuto
               // differently (its environment is not trusted to match).
               "--kernel",
               std::string(random::to_string(
                   random::resolve_normal_kernel(
                       options.sharded.publish.kernel))),
               "--shard-rows",
               std::to_string(plan.shard_rows),
               "--threads",
               std::to_string(options.sharded.threads),
               "--io-attempts",
               std::to_string(options.sharded.io_retry.max_attempts)};
    std::string csv;
    for (std::size_t s : slot.pending) {
      if (!csv.empty()) csv += ',';
      csv += std::to_string(s);
    }
    sp.argv.push_back("--shards");
    sp.argv.push_back(csv);
    if (!options.sharded.publish.analytic_calibration) {
      sp.argv.push_back("--no-analytic");
    }
    if (options.id_policy == graph::IdPolicy::kPreserve) {
      sp.argv.push_back("--preserve-ids");
    }
    if (slot.gen == 0) {
      const auto it = options.worker_env.find(slot.id);
      if (it != options.worker_env.end()) sp.env = it->second;
    }
    if (obs_plane) {
      // Trace context rides the environment into *every* generation — a
      // replacement worker reports under the same release trace id.
      sp.env.emplace_back("SGP_OBS_SIDECAR", options.obs_sidecar_prefix);
      sp.env.emplace_back("SGP_TRACE_ID", trace_id);
      sp.env.emplace_back("SGP_PARENT_SPAN", std::to_string(parent_span));
    }
    try {
      slot.proc.emplace(util::Subprocess::spawn(sp));
    } catch (const util::IoError&) {
      return false;
    }
    slot.progress_path = progress_path_for(out_path, slot.id, slot.gen);
    slot.progress_size = 0;
    slot.last_activity = std::chrono::steady_clock::now();
    ++result.workers_spawned;
    obs::log_event(obs::names::kEventWorkerSpawned,
                   {{"worker", std::to_string(slot.id)},
                    {"gen", std::to_string(slot.gen)},
                    {"pid", std::to_string(slot.proc->pid())}});
    for (std::size_t s : slot.pending) {
      append_lease(lease_record(s, slot.id, slot.gen));
      obs::log_event(obs::names::kEventShardLeased,
                     {{"shard", std::to_string(s)},
                      {"worker", std::to_string(slot.id)},
                      {"gen", std::to_string(slot.gen)}});
    }
    return true;
  };

  // Spawn (or re-spawn) a slot; once its generation budget is spent, its
  // shards fall back to the coordinator's own in-process queue — the
  // release always completes, whatever the workers do.
  auto spawn_or_fallback = [&](Slot& slot) {
    while (!slot.pending.empty() && slot.spawn_attempts < spawn_budget) {
      ++slot.spawn_attempts;
      if (try_spawn(slot)) return;
      util::sleep_for_seconds(
          util::retry_backoff_seconds(options.retry, slot.spawn_attempts));
    }
    if (!slot.pending.empty()) {
      for (std::size_t s : slot.pending) {
        append_lease(reclaim_record(s, slot.id, "spawn"));
        obs::log_event(obs::names::kEventLeaseReclaimed,
                       {{"shard", std::to_string(s)},
                        {"worker", std::to_string(slot.id)},
                        {"reason", "spawn"}});
      }
      inprocess.insert(inprocess.end(), slot.pending.begin(),
                       slot.pending.end());
      slot.pending.clear();
    }
  };

  // Completion is observed through the payload files themselves — the
  // rename commit plus size/CRC verification — never through worker exit
  // codes or progress-file claims.
  auto harvest = [&](Slot& slot) {
    for (auto it = slot.pending.begin(); it != slot.pending.end();) {
      const auto crc = verify_payload(shard_payload_path(out_path, *it),
                                      payload_bytes_for(plan, *it, m));
      if (crc) {
        mark_complete(*it, *crc);
        it = slot.pending.erase(it);
        slot.last_activity = std::chrono::steady_clock::now();
      } else {
        ++it;
      }
    }
  };

  std::size_t next_slot = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    if (completed.count(s) != 0) continue;
    slots[next_slot % workers].pending.push_back(s);
    ++next_slot;
  }
  for (std::size_t w = 0; w < workers; ++w) {
    slots[w].id = w;
    if (options.worker_program.empty()) {
      inprocess.insert(inprocess.end(), slots[w].pending.begin(),
                       slots[w].pending.end());
      slots[w].pending.clear();
    } else {
      spawn_or_fallback(slots[w]);
    }
  }

  while (true) {
    bool any_live = false;
    for (Slot& slot : slots) {
      if (!slot.proc) continue;
      any_live = true;
      harvest(slot);
      std::error_code ec;
      const auto psize = std::filesystem::file_size(slot.progress_path, ec);
      if (!ec && psize != slot.progress_size) {
        slot.progress_size = psize;
        slot.last_activity = std::chrono::steady_clock::now();
      }
      const auto status = slot.proc->try_wait();
      if (status.has_value()) {
        const std::int64_t worker_pid = slot.proc->pid();
        slot.proc.reset();
        // One more harvest: a payload rename can race the exit we just
        // observed, and a worker killed between the rename and its done
        // record (the second proc.worker.exit site) left verifiable work.
        harvest(slot);
        obs::log_event(obs::names::kEventWorkerExit,
                       {{"worker", std::to_string(slot.id)},
                        {"gen", std::to_string(slot.gen)},
                        {"pid", std::to_string(worker_pid)},
                        {"clean", status->clean() ? "1" : "0"}});
        if (!status->clean() || !slot.pending.empty()) {
          ++result.workers_lost;
        }
        if (!slot.pending.empty()) {
          const char* reason = slot.timed_out ? "timeout" : "died";
          for (std::size_t s : slot.pending) {
            append_lease(reclaim_record(s, slot.id, reason));
            ++result.leases_reclaimed;
            reclaimed_ctr.add();
            obs::log_event(obs::names::kEventLeaseReclaimed,
                           {{"shard", std::to_string(s)},
                            {"worker", std::to_string(slot.id)},
                            {"reason", reason}});
          }
          slot.timed_out = false;
          ++slot.gen;
          spawn_or_fallback(slot);
        }
      } else if (std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - slot.last_activity)
                     .count() > options.lease_timeout_seconds) {
        // Presumed dead: no payload landed and the heartbeat file stopped
        // growing. Kill hard; the next iteration reaps it as unclean.
        slot.timed_out = true;
        slot.proc->kill_hard();
      }
    }
    if (!any_live) break;
    util::sleep_for_seconds(options.poll_interval_seconds);
  }

  if (!inprocess.empty()) {
    std::optional<util::ThreadPool> local_pool;
    if (options.sharded.threads > 0) {
      local_pool.emplace(options.sharded.threads);
    }
    util::ThreadPool& pool = local_pool ? *local_pool : util::global_pool();
    std::vector<double> tile;
    std::sort(inprocess.begin(), inprocess.end());
    for (std::size_t s : inprocess) {
      const auto [r0, r1] = plan.shard_range(s);
      obs::ScopedTimer shard_timer(obs::names::kPublishShard);
      shard_timer.attr("shard", s).attr("rows", r1 - r0);
      const graph::ShardRows shard = util::retry_with_backoff(
          options.sharded.io_retry, "shard load",
          [&] { return reader.load_shard(r0, r1); });
      compute_shard_tile(shard, r0, r1, options.sharded.publish, calibration,
                         pool, tile);
      const std::string path = shard_payload_path(out_path, s);
      write_payload_file(path, options.sharded.publish.params, tile);
      const auto crc = verify_payload(path, payload_bytes_for(plan, s, m));
      SGP_CHECK(crc.has_value(),
                "publish_distributed: in-process payload failed verification");
      mark_complete(s, *crc);
      ++result.shards_inprocess;
    }
  }

  SGP_CHECK(completed.size() == plan.num_shards(),
            "publish_distributed: finished with incomplete shards");

  // Assemble the release: header then payloads in shard order — the exact
  // byte stream publish_sharded produces in one process.
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw util::IoError("publish_distributed: cannot open " + out_path);
  }
  out.write(header_bytes.data(),
            static_cast<std::streamsize>(header_bytes.size()));
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    util::fault_point(util::fault_points::kIoShardWrite);
    std::ifstream payload(shard_payload_path(out_path, s), std::ios::binary);
    if (!payload.good()) {
      throw util::IoError("publish_distributed: missing payload for shard " +
                          std::to_string(s));
    }
    out << payload.rdbuf();
    if (!out.good()) {
      throw util::IoError("publish_distributed: write failed on shard " +
                          std::to_string(s) + " of " + out_path);
    }
  }
  out.close();
  if (!out.good()) {
    throw util::IoError("publish_distributed: close failed on " + out_path);
  }

  // Publication is complete; drop every side file the protocol used.
  lease.close();
  std::error_code ec;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    std::filesystem::remove(shard_payload_path(out_path, s), ec);
  }
  for (const Slot& slot : slots) {
    for (std::size_t g = 0; g <= slot.gen; ++g) {
      std::filesystem::remove(progress_path_for(out_path, slot.id, g), ec);
    }
  }
  std::filesystem::remove(lease_path, ec);
  return result;
}

int run_publish_worker(const util::CliArgs& args) {
  const std::string edges_path = args.get_string("edges", "");
  const std::string out_path = args.get_string("out", "");
  util::require(!edges_path.empty() && !out_path.empty(),
                "worker: --edges and --out are required");

  ShardedPublishOptions opt;
  opt.publish.projection_dim =
      static_cast<std::size_t>(args.get_int("dim", 100));
  opt.publish.params = {args.get_double("epsilon", 1.0),
                        args.get_double("delta", 1e-6)};
  opt.publish.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  if (args.get_string("projection", "gaussian") == "achlioptas") {
    opt.publish.projection = ProjectionKind::kAchlioptas;
  }
  opt.publish.kernel =
      random::parse_kernel_variant(args.get_string("kernel", "auto"));
  opt.publish.analytic_calibration = !args.get_bool("no-analytic", false);
  opt.publish.delta_split =
      args.get_double("delta-split", dp::kDefaultDeltaSplit);
  opt.shard_rows = static_cast<std::size_t>(args.get_int("shard-rows", 0));
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  opt.io_retry.max_attempts =
      static_cast<std::size_t>(args.get_int("io-attempts", 1));

  const auto policy = args.get_bool("preserve-ids", false)
                          ? graph::IdPolicy::kPreserve
                          : graph::IdPolicy::kCompact;
  const graph::EdgeListShardReader reader(edges_path, policy);
  const std::size_t n = reader.num_nodes();
  const std::size_t m = opt.publish.projection_dim;
  const ShardPlan plan = plan_shards(n, opt.shard_rows);
  const NoiseCalibration calibration =
      calibrate_noise(m, opt.publish.params, opt.publish.analytic_calibration,
                      opt.publish.delta_split);

  // Drift guard: the coordinator hands over the CRC of its config record;
  // a worker whose own derivation disagrees would publish different bytes,
  // so it must refuse rather than contribute a payload.
  const std::string config = shard_config_line(opt, n, m, calibration, plan);
  const std::string derived_crc = crc_hex_of(config);
  const std::string expected_crc = args.get_string("config-crc", "");
  if (expected_crc != derived_crc) {
    throw util::ParseError("worker: config drift (coordinator crc '" +
                           expected_crc + "', worker crc '" + derived_crc +
                           "')");
  }

  const std::size_t worker_id =
      static_cast<std::size_t>(args.get_int("worker-id", 0));
  const std::size_t gen = static_cast<std::size_t>(args.get_int("gen", 0));

  // Trace context handed down by the coordinator. When present, this worker
  // joins the release-wide observability plane: metrics + tracing on, its
  // own sidecar at `<prefix><pid>.jsonl`, resource sampling in the
  // background.
  obs::ResourceSampler sampler;
  {
    const char* sidecar_prefix = std::getenv("SGP_OBS_SIDECAR");
    if (sidecar_prefix != nullptr && *sidecar_prefix != '\0') {
      obs::set_metrics_enabled(true);
      obs::set_trace_enabled(true);
      const char* trace_env = std::getenv("SGP_TRACE_ID");
      const char* parent_env = std::getenv("SGP_PARENT_SPAN");
      obs::SidecarInfo info;
      info.role = "worker";
      info.trace_id = trace_env != nullptr ? trace_env : "";
      info.parent_span =
          parent_env != nullptr ? std::strtoull(parent_env, nullptr, 10) : 0;
      info.worker = static_cast<std::int64_t>(worker_id);
      info.gen = static_cast<std::int64_t>(gen);
      obs::open_sidecar(sidecar_path_for_pid(sidecar_prefix), info);
      sampler.start();
    }
  }

  std::vector<std::size_t> shards;
  {
    std::istringstream csv(args.get_string("shards", ""));
    std::string tok;
    while (std::getline(csv, tok, ',')) {
      if (tok.empty()) continue;
      const std::size_t s = std::stoull(tok);
      util::require(s < plan.num_shards(),
                    "worker: assigned shard index out of range");
      shards.push_back(s);
    }
  }

  // Heartbeats are liveness signals, not durability records: a flushed
  // stream is enough, because the coordinator only watches the file grow
  // and never trusts its content for recovery.
  std::ofstream progress(progress_path_for(out_path, worker_id, gen),
                         std::ios::binary | std::ios::trunc);
  if (!progress.good()) {
    throw util::IoError("worker: cannot open progress file " +
                        progress_path_for(out_path, worker_id, gen));
  }

  std::optional<util::ThreadPool> local_pool;
  if (opt.threads > 0) local_pool.emplace(opt.threads);
  util::ThreadPool& pool = local_pool ? *local_pool : util::global_pool();

  std::vector<double> tile;
  std::uint64_t seq = 0;
  for (std::size_t s : shards) {
    // Chaos site 1: death at a shard boundary — this shard's lease (and
    // every later one held by this worker) must be reclaimed.
    util::fault_point(util::fault_points::kProcWorkerExit);
    util::fault_point(util::fault_points::kLeaseHeartbeat);
    progress << with_crc("hb " + std::to_string(seq++)) << '\n';
    progress.flush();
    obs::log_event(obs::names::kEventWorkerShardStart,
                   {{"shard", std::to_string(s)},
                    {"worker", std::to_string(worker_id)}});

    {
      obs::ScopedTimer shard_timer(obs::names::kPublishShard);
      const auto [r0, r1] = plan.shard_range(s);
      shard_timer.attr("shard", s).attr("rows", r1 - r0);
      const graph::ShardRows shard = util::retry_with_backoff(
          opt.io_retry, "shard load",
          [&] { return reader.load_shard(r0, r1); });
      compute_shard_tile(shard, r0, r1, opt.publish, calibration, pool, tile);

      util::fault_point(util::fault_points::kIoShardWrite);
      write_payload_file(shard_payload_path(out_path, s),
                         opt.publish.params, tile);
    }
    // The payload just committed (rename). Flush the truthful record of it
    // — span, counters, done event — BEFORE the second fault site, so a
    // worker killed post-commit leaves a sidecar whose contents match
    // exactly what the coordinator will salvage.
    obs::log_event(obs::names::kEventWorkerShardDone,
                   {{"shard", std::to_string(s)},
                    {"worker", std::to_string(worker_id)}});
    obs::flush_sidecar();
    // Chaos site 2: death after the payload commit but before the done
    // note — the coordinator must salvage the verified payload instead of
    // recomputing it.
    util::fault_point(util::fault_points::kProcWorkerExit);
    progress << with_crc("done " + std::to_string(s)) << '\n';
    progress.flush();
  }
  sampler.stop();
  obs::close_sidecar();
  return 0;
}

}  // namespace sgp::core
