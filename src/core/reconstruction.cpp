#include "core/reconstruction.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::core {

linalg::DenseMatrix regenerate_projection(const PublishedGraph& published,
                                          std::uint64_t publisher_seed) {
  // Must mirror the publisher that produced the release, which the release
  // records in projection_rng: counter-v1 releases define P[i][j] as a pure
  // function of (seed, i·m+j); legacy (v1-file) releases drew P row-major
  // from the sequential Rng seeded with the publisher seed.
  switch (published.projection_rng) {
    case ProjectionRngKind::kCounterV1:
      // Scalar libm mapping, regardless of environment overrides: the tag
      // pins the bytes.
      return make_projection_counter(
          published.num_nodes, published.projection_dim, published.projection,
          publisher_seed, random::KernelVariant::kScalar);
    case ProjectionRngKind::kCounterV1Simd:
      // Polynomial mapping. ISA-independent, so pick the fastest variant
      // supported here — the always-compiled generic kernel guarantees this
      // regenerates on machines without AVX.
      return make_projection_counter(
          published.num_nodes, published.projection_dim, published.projection,
          publisher_seed, random::best_polynomial_kernel());
    case ProjectionRngKind::kSequentialLegacy: {
      random::Rng rng(publisher_seed);
      return make_projection(published.num_nodes, published.projection_dim,
                             published.projection, rng);
    }
  }
  throw util::InternalError("regenerate_projection: unknown projection_rng");
}

double edge_score(const PublishedGraph& published,
                  const linalg::DenseMatrix& projection, std::size_t u,
                  std::size_t v) {
  util::require(u < published.num_nodes && v < published.num_nodes,
                "edge_score: node out of range");
  util::require(projection.rows() == published.num_nodes &&
                    projection.cols() == published.projection_dim,
                "edge_score: projection shape mismatch");
  return linalg::dot(published.data.row(u), projection.row(v));
}

std::vector<double> edge_scores(
    const PublishedGraph& published, const linalg::DenseMatrix& projection,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    scores.push_back(edge_score(published, projection, u, v));
  }
  return scores;
}

double estimate_edge_count(const PublishedGraph& published) {
  const double sigma = published.calibration.sigma;
  const double bias = static_cast<double>(published.projection_dim) * sigma *
                      sigma * static_cast<double>(published.num_nodes);
  double total = 0.0;
  for (std::size_t i = 0; i < published.data.rows(); ++i) {
    total += linalg::norm2_squared(published.data.row(i));
  }
  return (total - bias) / 2.0;
}

std::vector<std::size_t> estimate_degree_histogram(
    const PublishedGraph& published, double bin_width, std::size_t num_bins) {
  util::require(bin_width > 0.0, "degree histogram: bin width must be > 0");
  util::require(num_bins >= 1, "degree histogram: need at least one bin");
  const double noise_bias = static_cast<double>(published.projection_dim) *
                            published.calibration.sigma *
                            published.calibration.sigma;
  std::vector<std::size_t> hist(num_bins, 0);
  for (std::size_t i = 0; i < published.data.rows(); ++i) {
    const double estimate =
        linalg::norm2_squared(published.data.row(i)) - noise_bias;
    const double clamped = std::max(estimate, 0.0);
    const auto bin = std::min<std::size_t>(
        num_bins - 1, static_cast<std::size_t>(clamped / bin_width));
    ++hist[bin];
  }
  return hist;
}

}  // namespace sgp::core
