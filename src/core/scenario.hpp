// Product-set scenario engine: one grid definition drives tests, benches,
// and analyst reports.
//
// Two layers:
//
//   1. Axis primitives + PARAMETERIZE/OPTION/PICK macros (after exotracker's
//      test_utils/parameterize.h, SNIPPETS.md §1): an axis is a named list
//      of labeled options; SGP_PICK clauses chain by juxtaposition into the
//      full product set. Test suites that used to hand-roll nested loops
//      (shard×thread matrices, kernel-variant grids, statistical sweeps)
//      declare their axes once and iterate the product; the axis objects
//      stay inspectable, so pin tests can assert exact cell counts.
//
//   2. The standard mechanism grid: {generator × mechanism × (ε, δ) × task}
//      with per-cell deterministic seeds (FNV-1a of the cell label folded
//      into a base seed) and named-axis labels
//      ("generator=sbm/mechanism=privgraph/epsilon=2/task=cluster").
//      Consumed by the tier-1 `scenario` ctest suite, the slow statistical
//      layer, bench_e14_mechanisms, and sgp_analyze --compare-mechanisms.
//
// Budget points of the standard grid come from dp/defaults.hpp
// (kScenarioEpsilons / kScenarioDelta) — privacy policy stays in the DP
// layer (lint rule R5).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/mechanism.hpp"
#include "dp/privacy.hpp"
#include "graph/generators.hpp"

namespace sgp::core::scenario {

// --- axis primitives ------------------------------------------------------

template <typename T>
struct AxisOption {
  std::string label;
  T value;
};

/// A named list of labeled options — one dimension of a product set.
template <typename T>
struct Axis {
  std::string name;
  std::vector<AxisOption<T>> options;

  [[nodiscard]] std::size_t size() const { return options.size(); }
};

template <typename T>
class AxisBuilder {
 public:
  explicit AxisBuilder(std::string name) { axis_.name = std::move(name); }

  AxisBuilder& add(std::string label, T value) {
    axis_.options.push_back({std::move(label), std::move(value)});
    return *this;
  }

  [[nodiscard]] Axis<T> build() { return std::move(axis_); }

 private:
  Axis<T> axis_;
};

/// FNV-1a 64-bit over `text` — platform-stable (unlike std::hash), so cell
/// seeds derived from labels reproduce everywhere.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// Deterministic per-cell seed: the base seed and the label hash mixed
/// through a splitmix64 finalizer. Distinct labels give independent seeds;
/// the same (base, label) always gives the same seed.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t base_seed,
                                      std::string_view label);

/// Joins "axis=option" parts into the canonical "a=x/b=y/..." cell label.
[[nodiscard]] std::string join_labels(
    std::initializer_list<std::string_view> parts);

// --- PARAMETERIZE / OPTION / PICK -----------------------------------------
//
// Declaration mirrors the exotracker harness:
//
//   SGP_PARAMETERIZE(shard_rows_axis, std::size_t, shard_rows,
//       SGP_OPTION(shard_rows, 1);
//       SGP_OPTION(shard_rows, 7);
//       SGP_OPTION(shard_rows, 64);
//   )
//
// Iteration chains one SGP_PICK clause per axis (juxtaposed, innermost body
// runs once per product-set cell — where doctest re-enters the test per
// subcase, gtest bodies iterate in place):
//
//   std::size_t shard_rows;
//   std::size_t threads;
//   SGP_PICK(shard_rows_axis, shard_rows) SGP_PICK(threads_axis, threads) {
//     ...one cell; SGP_PICK_LABEL(shard_rows) names the option...
//   }
//
// The axis object behind a PARAMETERIZE is reachable as sgp_axis_<name>()
// for cell-count pin tests.

#define SGP_PARAMETERIZE(name, type, var, ...)                            \
  inline const ::sgp::core::scenario::Axis<type>& sgp_axis_##name() {     \
    static const ::sgp::core::scenario::Axis<type> sgp_axis_value = [] {  \
      ::sgp::core::scenario::AxisBuilder<type> sgp_builder(#name);        \
      type var{};                                                         \
      (void)var;                                                          \
      __VA_ARGS__                                                         \
      return sgp_builder.build();                                         \
    }();                                                                  \
    return sgp_axis_value;                                                \
  }

/// Registers one option; the stringified value is the option label.
#define SGP_OPTION(var, ...) \
  sgp_builder.add(#__VA_ARGS__, ((var) = (__VA_ARGS__)))

/// Registers one option under an explicit label (for values whose
/// stringification is unreadable, e.g. qualified enumerators).
#define SGP_OPTION_LABELED(var, label, ...) \
  sgp_builder.add((label), ((var) = (__VA_ARGS__)))

/// One product-set clause: binds `var` to each option of `name` in turn.
/// Chain clauses by juxtaposition; the following statement (or block) is
/// the per-cell body.
#define SGP_PICK(name, var)                                            \
  for (const auto& sgp_pick_##var : sgp_axis_##name().options)         \
    if ((var) = sgp_pick_##var.value; true)

/// The label of the option currently bound to `var` (inside SGP_PICK).
#define SGP_PICK_LABEL(var) (sgp_pick_##var.label)

// --- the standard mechanism grid ------------------------------------------

/// Graph families of the standard grid. SBM carries planted ground-truth
/// communities; BA is the heavy-tailed degree counterpoint.
enum class GeneratorKind { kSbm, kBa };

[[nodiscard]] std::string to_string(GeneratorKind kind);
/// Throws util::PreconditionError listing the valid names ("sbm" / "ba").
[[nodiscard]] GeneratorKind parse_generator(const std::string& name);
[[nodiscard]] const std::vector<std::string>& known_generator_names();

/// Analyst tasks a release is scored on. Every score is in [0, 1], higher
/// is better (conductance is reported as 1 − φ).
enum class TaskKind { kCluster, kRank, kDegree, kConductance };

[[nodiscard]] std::string to_string(TaskKind task);
/// Throws util::PreconditionError listing the valid names
/// ("cluster" / "rank" / "degree" / "conductance").
[[nodiscard]] TaskKind parse_task(const std::string& name);
[[nodiscard]] const std::vector<std::string>& known_task_names();

/// Node count of the standard scenario graphs — small enough for the tier-1
/// grid to stay fast, large enough for Louvain to resolve communities.
inline constexpr std::size_t kScenarioNodes = 240;
/// Base seed every cell seed is derived from.
inline constexpr std::uint64_t kScenarioBaseSeed = 20260809;

/// One cell of the {generator × mechanism × (ε, δ) × task} product set.
struct ScenarioCell {
  GeneratorKind generator = GeneratorKind::kSbm;
  MechanismKind mechanism = MechanismKind::kProjection;
  dp::PrivacyParams budget;
  TaskKind task = TaskKind::kCluster;
  std::string label;       ///< "generator=sbm/mechanism=.../epsilon=.../task=..."
  std::uint64_t seed = 0;  ///< cell_seed(base, label)
  std::size_t index = 0;   ///< position in the materialized grid
};

/// Materializes the full standard grid (generators × mechanisms ×
/// dp::kScenarioEpsilons × tasks), labels and seeds included.
[[nodiscard]] std::vector<ScenarioCell> standard_grid(
    std::uint64_t base_seed = kScenarioBaseSeed);

/// The scenario graph of a cell: deterministic in (kind, seed).
[[nodiscard]] graph::PlantedGraph make_scenario_graph(
    GeneratorKind kind, std::uint64_t seed,
    std::size_t num_nodes = kScenarioNodes);

/// MechanismOptions for a cell (budget + seed filled in; ledger/accountant
/// left for the caller to attach).
[[nodiscard]] MechanismOptions cell_options(const ScenarioCell& cell);

/// Scores `release` on `task` against the original graph. Deterministic in
/// (release, task, seed).
[[nodiscard]] double run_task(const MechanismRelease& release, TaskKind task,
                              const graph::PlantedGraph& original,
                              std::uint64_t seed);

/// The non-private baseline for `task` on the same graph — what a lossless
/// release would score. Upper reference for the E14 comparison table.
[[nodiscard]] double reference_score(TaskKind task,
                                     const graph::PlantedGraph& original,
                                     std::uint64_t seed);

/// Canonical byte string of a release (matrix bytes or sorted edge list),
/// used by the determinism tests: equal releases ⇔ equal fingerprints.
[[nodiscard]] std::string release_fingerprint(const MechanismRelease& release);

}  // namespace sgp::core::scenario
