// Analyst-side estimators that go beyond spectral structure.
//
// The projection matrix P is reproducible from the release seed, and the
// privacy proof allows publishing it: the Gaussian-mechanism guarantee holds
// for any *fixed* P whose row norms satisfy the sensitivity bound, and the
// δ_projection share of the budget covers the probability that a random P
// violates it. With P public the analyst can form richer estimates:
//
//   edge score:    <ỹ_i, P_j> ≈ Σ_t a_it <P_t, P_j> ≈ a_ij ± O(√(deg_i/m)),
//   edge count:    Σ_i ‖ỹ_i‖² − n·m·σ²  ≈ Σ_i deg_i = 2|E|,
//   degree CDF:    from the per-row debiased norms (degree_scores).
//
// None of these touch the original graph; they are post-processing of the
// DP release and consume no extra budget.
#pragma once

#include <cstdint>
#include <vector>

#include "core/publisher.hpp"

namespace sgp::core {

/// Regenerates the projection matrix used by a release from the publisher
/// seed (the seed is public metadata; see file comment).
linalg::DenseMatrix regenerate_projection(const PublishedGraph& published,
                                          std::uint64_t publisher_seed);

/// Score for the presence of edge (u, v): the correlation of published row u
/// with projection row v. Unbiased for a_uv up to JL cross-talk; higher
/// means more likely an edge. Requires the regenerated projection.
double edge_score(const PublishedGraph& published,
                  const linalg::DenseMatrix& projection, std::size_t u,
                  std::size_t v);

/// Scores a batch of node pairs at once (same semantics as edge_score).
std::vector<double> edge_scores(
    const PublishedGraph& published, const linalg::DenseMatrix& projection,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);

/// Total-edge estimate from debiased row norms: (Σ‖ỹ_i‖² − n·m·σ²) / 2.
/// Can be negative under heavy noise (unbiasedness over clamping).
double estimate_edge_count(const PublishedGraph& published);

/// Histogram of estimated degrees with `bin_width`-wide bins starting at 0;
/// estimates below zero land in bin 0. Returns counts per bin.
std::vector<std::size_t> estimate_degree_histogram(
    const PublishedGraph& published, double bin_width, std::size_t num_bins);

}  // namespace sgp::core
