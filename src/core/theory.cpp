#include "core/theory.hpp"

#include <cmath>

#include "dp/budget.hpp"
#include "dp/mechanisms.hpp"
#include "util/check.hpp"

namespace sgp::core {

double projected_row_sensitivity(std::size_t m, double delta_p) {
  util::require(m >= 1, "sensitivity: m must be >= 1");
  util::require(delta_p > 0.0 && delta_p < 1.0,
                "sensitivity: delta_p must be in (0,1)");
  // Laurent–Massart: P[χ²_m ≥ m + 2√(mt) + 2t] ≤ e^{−t}. With t = ln(1/δ_p)
  // and ‖P_j‖² = χ²_m / m:
  const double t = std::log(1.0 / delta_p);
  const double md = static_cast<double>(m);
  return std::sqrt(1.0 + 2.0 * std::sqrt(t / md) + 2.0 * t / md);
}

double dense_row_sensitivity() { return std::sqrt(2.0); }

NoiseCalibration calibrate_noise(std::size_t m, const dp::PrivacyParams& params,
                                 bool analytic, double delta_split) {
  params.validate();
  util::require(delta_split > 0.0 && delta_split < 1.0,
                "calibrate_noise: delta_split must be in (0,1)");
  NoiseCalibration cal;
  const dp::DeltaSplit deltas = dp::split_delta(params.delta, delta_split);
  cal.delta_projection = deltas.first;
  cal.delta_gaussian = deltas.second;
  cal.sensitivity = projected_row_sensitivity(m, cal.delta_projection);
  const dp::PrivacyParams gaussian_budget{params.epsilon, cal.delta_gaussian};
  cal.sigma = analytic
                  ? dp::analytic_gaussian_sigma(cal.sensitivity, gaussian_budget)
                  : dp::gaussian_sigma(cal.sensitivity, gaussian_budget);
  return cal;
}

std::size_t johnson_lindenstrauss_dim(std::size_t n_points, double distortion) {
  util::require(n_points >= 2, "jl_dim: need at least two points");
  util::require(distortion > 0.0 && distortion < 1.0,
                "jl_dim: distortion must be in (0,1)");
  const double eps2 = distortion * distortion;
  const double eps3 = eps2 * distortion;
  const double denom = eps2 / 2.0 - eps3 / 3.0;
  return static_cast<std::size_t>(
      std::ceil(4.0 * std::log(static_cast<double>(n_points)) / denom));
}

}  // namespace sgp::core
