#include "core/projection.hpp"

#include <cmath>
#include <new>

#include "random/counter_rng_simd.hpp"
#include "random/distributions.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::core {

std::string to_string(ProjectionKind kind) {
  switch (kind) {
    case ProjectionKind::kGaussian:
      return "gaussian";
    case ProjectionKind::kAchlioptas:
      return "achlioptas";
  }
  return "unknown";
}

linalg::DenseMatrix make_projection(std::size_t n, std::size_t m,
                                    ProjectionKind kind, random::Rng& rng) {
  // n×m doubles — the single largest allocation of a materialized publish;
  // the fault point lets chaos tests exercise the out-of-memory path on
  // demand. Both it and a genuine allocation failure surface as the typed
  // ResourceError so the CLI exit-code contract holds.
  try {
    util::fault_point(util::fault_points::kAlloc);
    switch (kind) {
      case ProjectionKind::kGaussian:
        return gaussian_projection(n, m, rng);
      case ProjectionKind::kAchlioptas:
        return achlioptas_projection(n, m, rng);
    }
  } catch (const std::bad_alloc&) {
    throw util::ResourceError("make_projection: out of memory allocating " +
                              std::to_string(n) + "x" + std::to_string(m) +
                              " projection");
  }
  throw util::InternalError("make_projection: unknown kind");
}

linalg::DenseMatrix gaussian_projection(std::size_t n, std::size_t m,
                                        random::Rng& rng) {
  util::require(n >= 1 && m >= 1, "projection: dimensions must be >= 1");
  const double stddev = 1.0 / std::sqrt(static_cast<double>(m));
  linalg::DenseMatrix p(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = p.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = random::normal(rng, 0.0, stddev);
    }
  }
  return p;
}

linalg::DenseMatrix achlioptas_projection(std::size_t n, std::size_t m,
                                          random::Rng& rng) {
  util::require(n >= 1 && m >= 1, "projection: dimensions must be >= 1");
  const double magnitude = std::sqrt(3.0 / static_cast<double>(m));
  linalg::DenseMatrix p(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = p.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double u = rng.next_double();
      if (u < 1.0 / 6.0) {
        row[j] = magnitude;
      } else if (u < 2.0 / 6.0) {
        row[j] = -magnitude;
      }  // else 0
    }
  }
  return p;
}

random::CounterRng projection_counter_rng(std::uint64_t seed) {
  return random::CounterRng(seed, kProjectionStreamId);
}

random::CounterRng noise_counter_rng(std::uint64_t seed) {
  return random::CounterRng(seed, kNoiseStreamId);
}

void fill_projection_tile(const random::CounterRng& rng, std::size_t m,
                          ProjectionKind kind, std::size_t row_begin,
                          std::size_t row_end, std::size_t col_begin,
                          std::size_t col_end, double* out,
                          random::KernelVariant kernel) {
  util::require(m >= 1, "fill_projection_tile: m must be >= 1");
  util::require(row_begin <= row_end && col_begin <= col_end && col_end <= m,
                "fill_projection_tile: tile out of bounds");
  const std::size_t width = col_end - col_begin;
  switch (kind) {
    case ProjectionKind::kGaussian: {
      // Resolve once per tile, not per row: a tile is the batch unit.
      const random::KernelVariant resolved =
          random::resolve_normal_kernel(kernel);
      const double stddev = 1.0 / std::sqrt(static_cast<double>(m));
      for (std::size_t i = row_begin; i < row_end; ++i) {
        double* row = out + (i - row_begin) * width;
        const std::uint64_t base = i * m;
        random::normal_batch(rng, base + col_begin, width, row, resolved);
        for (std::size_t j = 0; j < width; ++j) {
          row[j] *= stddev;
        }
      }
      return;
    }
    case ProjectionKind::kAchlioptas: {
      const random::KernelVariant resolved =
          random::resolve_exact_kernel(kernel);
      const double magnitude = std::sqrt(3.0 / static_cast<double>(m));
      for (std::size_t i = row_begin; i < row_end; ++i) {
        double* row = out + (i - row_begin) * width;
        const std::uint64_t base = i * m;
        random::uniform_batch(rng, base + col_begin, width, row, resolved);
        for (std::size_t j = 0; j < width; ++j) {
          const double u = row[j];
          double v = 0.0;
          if (u < 1.0 / 6.0) {
            v = magnitude;
          } else if (u < 2.0 / 6.0) {
            v = -magnitude;
          }
          row[j] = v;
        }
      }
      return;
    }
  }
  throw util::InternalError("fill_projection_tile: unknown kind");
}

linalg::DenseMatrix make_projection_counter(std::size_t n, std::size_t m,
                                            ProjectionKind kind,
                                            std::uint64_t seed,
                                            random::KernelVariant kernel) {
  util::require(n >= 1 && m >= 1, "projection: dimensions must be >= 1");
  try {
    util::fault_point(util::fault_points::kAlloc);
    linalg::DenseMatrix p(n, m);
    const random::CounterRng rng = projection_counter_rng(seed);
    fill_projection_tile(rng, m, kind, 0, n, 0, m, p.data().data(), kernel);
    return p;
  } catch (const std::bad_alloc&) {
    throw util::ResourceError(
        "make_projection_counter: out of memory allocating " +
        std::to_string(n) + "x" + std::to_string(m) + " projection");
  }
}

}  // namespace sgp::core
