#include "core/projection.hpp"

#include <cmath>

#include "random/distributions.hpp"
#include "util/check.hpp"
#include "util/fault_injection.hpp"

namespace sgp::core {

std::string to_string(ProjectionKind kind) {
  switch (kind) {
    case ProjectionKind::kGaussian:
      return "gaussian";
    case ProjectionKind::kAchlioptas:
      return "achlioptas";
  }
  return "unknown";
}

linalg::DenseMatrix make_projection(std::size_t n, std::size_t m,
                                    ProjectionKind kind, random::Rng& rng) {
  // n×m doubles — the single largest allocation of a publish; the fault
  // point lets chaos tests exercise the std::bad_alloc path on demand.
  util::fault_point("alloc");
  switch (kind) {
    case ProjectionKind::kGaussian:
      return gaussian_projection(n, m, rng);
    case ProjectionKind::kAchlioptas:
      return achlioptas_projection(n, m, rng);
  }
  throw std::invalid_argument("make_projection: unknown kind");
}

linalg::DenseMatrix gaussian_projection(std::size_t n, std::size_t m,
                                        random::Rng& rng) {
  util::require(n >= 1 && m >= 1, "projection: dimensions must be >= 1");
  const double stddev = 1.0 / std::sqrt(static_cast<double>(m));
  linalg::DenseMatrix p(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = p.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = random::normal(rng, 0.0, stddev);
    }
  }
  return p;
}

linalg::DenseMatrix achlioptas_projection(std::size_t n, std::size_t m,
                                          random::Rng& rng) {
  util::require(n >= 1 && m >= 1, "projection: dimensions must be >= 1");
  const double magnitude = std::sqrt(3.0 / static_cast<double>(m));
  linalg::DenseMatrix p(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = p.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double u = rng.next_double();
      if (u < 1.0 / 6.0) {
        row[j] = magnitude;
      } else if (u < 2.0 / 6.0) {
        row[j] = -magnitude;
      }  // else 0
    }
  }
  return p;
}

}  // namespace sgp::core
