// The paper's theoretical results as executable functions.
//
// Theorem (privacy): publishing Ỹ = A·P + N, with P a Gaussian projection
// (entries N(0, 1/m)) and N i.i.d. N(0, σ²), is (ε, δ)-DP for edge-level
// neighbors when σ is calibrated to the ℓ2-sensitivity of a projected row.
//
// Changing edge (i, j) changes row i of A by ±e_j, so row i of Y = A·P
// changes by ±P_{j,·}. m·‖P_{j,·}‖² is χ²_m distributed; the Laurent–Massart
// tail bound gives, with probability ≥ 1 − δ_p,
//   ‖P_{j,·}‖² ≤ 1 + 2·sqrt(t/m) + 2·t/m,   t = ln(1/δ_p).
// The sensitivity is therefore 1 + o(1) — *independent of n* — which is the
// paper's "small noise" claim: direct publication of A needs noise in every
// one of n² cells, while the projected row needs σ ≈ sqrt(2 ln(1/δ))/ε
// regardless of graph size.
#pragma once

#include <cstddef>

#include "dp/defaults.hpp"
#include "dp/privacy.hpp"

namespace sgp::core {

/// High-probability bound on ‖P_{j,·}‖₂ for a Gaussian projection row
/// (failure probability delta_p). Decreases toward 1 as m grows.
double projected_row_sensitivity(std::size_t m, double delta_p);

/// Sensitivity of the same one-edge change if A itself were published with
/// the Gaussian mechanism: the change is ±1 in two symmetric cells → √2.
/// (Reference point for the E2 noise-comparison figure.)
double dense_row_sensitivity();

/// Full calibration for the mechanism: splits δ into δ_p (sensitivity-bound
/// failure) and δ_g (Gaussian mechanism), default half/half, and returns the
/// noise σ. Set `analytic` false to use the classic calibration instead
/// (ablation E2). Throws for invalid params.
struct NoiseCalibration {
  double sensitivity = 0.0;  ///< high-probability ‖P_j‖ bound used
  double sigma = 0.0;        ///< per-entry Gaussian noise stddev
  double delta_projection = 0.0;
  double delta_gaussian = 0.0;
};
NoiseCalibration calibrate_noise(std::size_t m, const dp::PrivacyParams& params,
                                 bool analytic = true,
                                 double delta_split = dp::kDefaultDeltaSplit);

/// Johnson–Lindenstrauss dimension: smallest m guaranteeing all pairwise
/// distances among `n_points` distorted by at most `distortion` (∈ (0, 1)):
///   m ≥ 4 ln(n) / (distortion²/2 − distortion³/3).
std::size_t johnson_lindenstrauss_dim(std::size_t n_points, double distortion);

}  // namespace sgp::core
