// Differentially private release of scalar/histogram graph statistics.
//
// The projected-matrix release preserves *spectral* structure; deployments
// usually also want headline statistics (edge count, degree distribution)
// published alongside it. These are classic pure ε-DP Laplace releases under
// the same edge-level neighboring relation, so their budgets compose with
// the matrix release through the accountants in sgp::dp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace sgp::core {

/// A scalar release: noisy value plus the Laplace scale used (the scale is
/// public — it depends only on ε and the sensitivity).
struct NoisyScalar {
  double value = 0.0;
  double laplace_scale = 0.0;
};

/// Edge count with Laplace(1/ε) noise (one edge changes the count by 1).
/// ε-DP. The result may be non-integral or negative; clamp if you need a
/// count, but unbiasedness is lost by clamping.
NoisyScalar dp_edge_count(const graph::Graph& g, double epsilon,
                          random::Rng& rng);

/// Average degree derived from dp_edge_count by post-processing (n is
/// public metadata, so no extra budget is consumed beyond the edge count).
NoisyScalar dp_average_degree(const graph::Graph& g, double epsilon,
                              random::Rng& rng);

/// Degree histogram (index d = #nodes with degree d) with Laplace noise.
/// One edge changes the degrees of its two endpoints, moving each between
/// adjacent bins: ℓ1 sensitivity 4, so each bin gets Laplace(4/ε). ε-DP.
/// `max_degree` fixes the (public) histogram length: bins beyond it are
/// truncated into the last bin; pass 0 to size by the true max degree —
/// NOTE that sizing by the true max leaks that maximum and is provided for
/// non-private diagnostics only.
std::vector<double> dp_degree_histogram(const graph::Graph& g, double epsilon,
                                        std::size_t max_degree,
                                        random::Rng& rng);

/// Triangle count under a *promised* degree bound D (public policy, e.g.
/// enforced by the platform): one edge change creates/destroys at most D−1
/// triangles, so the count gets Laplace((D−1)/ε). ε-DP **only for graphs
/// that actually satisfy the bound**; throws std::invalid_argument if the
/// graph violates it (publishing would silently break the guarantee).
NoisyScalar dp_triangle_count(const graph::Graph& g, double epsilon,
                              std::size_t degree_bound, random::Rng& rng);

}  // namespace sgp::core
