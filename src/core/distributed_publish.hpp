// Fault-tolerant multi-process publication: a coordinator, N worker
// processes, and a durable lease file.
//
// The mechanism's row-separability (core/sharded_publish.hpp) already makes
// shards independent; this layer exploits that across *processes*. The
// coordinator round-robins the shard plan over N spawned workers
// (util/subprocess.hpp), each of which recomputes the calibration from the
// same flags, verifies it against the coordinator's config CRC, and writes
// its shards' payload tiles to side files (`<out>.shard.<s>`, written to a
// temp name and renamed so existence ⇒ completeness). The coordinator
// verifies every payload (size and CRC-32) before vouching for it, then
// concatenates header + payloads in shard order — byte-identical to
// publish_sharded and publish_to_stream for the same options, whatever the
// worker topology or failure history.
//
// Failure handling, all observable through obs counters:
//   - worker exits uncleanly (crash, SIGKILL, fault injection): the
//     coordinator reclaims its outstanding leases (`reclaim` records,
//     publish.leases_reclaimed), salvages any payload that already verifies,
//     and respawns a replacement generation for the rest — bounded by
//     the retry policy's max_attempts generations per worker slot.
//   - worker goes silent (no heartbeat-file growth for
//     lease_timeout_seconds): the coordinator hard-kills it and proceeds as
//     above. The timeout must exceed the worst-case single-shard compute
//     time; heartbeats are written once per shard.
//   - spawn fails (proc.spawn fault point, missing binary) or a slot
//     exhausts its generations: the slot's shards fall back to in-process
//     computation in the coordinator. The degenerate case — every spawn
//     failing — degrades to an ordinary single-process publish that still
//     produces the exact release bytes.
//
// Durability: the lease file (`<out>.lease`) reuses the checkpoint idiom —
// magic line, the shard_config_line tying it to one exact publication, then
// CRC-guarded `lease` / `reclaim` / `complete` records appended through
// util::DurableAppender (fsync per record). On resume, `complete` records
// whose payload files still verify are trusted and those shards are skipped
// (publish.shards_resumed). The lease file and payload files are deleted
// once the release is assembled. Format details in docs/scaling.md;
// failure matrix in docs/robustness.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/sharded_publish.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"
#include "util/retry.hpp"

namespace sgp::core {

struct DistributedPublishOptions {
  /// Shard plan, publish knobs, per-worker threads, resume, io retry.
  ShardedPublishOptions sharded;
  /// Worker processes to spawn; 0 or 1 still runs the full protocol with
  /// one worker (and falls back in-process if it cannot spawn).
  std::size_t workers = 2;
  /// Path of the worker binary (normally the running sgp_publish itself).
  /// Empty = skip spawning entirely and compute every shard in-process.
  std::string worker_program;
  /// Edge-list path handed to workers; must name the same file the
  /// coordinator's reader scanned.
  std::string edges_path;
  graph::IdPolicy id_policy = graph::IdPolicy::kCompact;
  /// A worker whose heartbeat file stops growing for this long is presumed
  /// dead and hard-killed. Must exceed worst-case single-shard compute time.
  double lease_timeout_seconds = 30.0;
  /// Coordinator monitor-loop poll cadence.
  double poll_interval_seconds = 0.02;
  /// Generations budget per worker slot (max_attempts) and the backoff
  /// between respawns. Also used to retry lease-record appends
  /// (lease.acquire fault point).
  util::RetryPolicy retry;
  /// Extra environment for generation-0 spawns, keyed by worker slot —
  /// the chaos hook (e.g. {"SGP_FAULT_SPEC", "proc.worker.exit:after=1"}).
  /// Replacement generations spawn clean, mirroring a transient failure.
  std::map<std::size_t, std::vector<std::pair<std::string, std::string>>>
      worker_env;
  /// When non-empty, the cross-process observability plane is on: the
  /// coordinator mints a release trace id, opens its own event sidecar at
  /// `<prefix><pid>.jsonl` (obs/event_log.hpp), and hands every worker
  /// generation the prefix, the trace id and its parent span id via the
  /// SGP_OBS_SIDECAR / SGP_TRACE_ID / SGP_PARENT_SPAN environment variables
  /// so the sidecars merge into one "sgp-obs-report v2" document
  /// (obs/aggregate.hpp). Empty = no sidecars, no env overrides.
  std::string obs_sidecar_prefix;
};

struct DistributedPublishResult {
  std::size_t num_nodes = 0;
  std::size_t shards_total = 0;
  /// Shards proven complete by a prior run's lease file + payloads.
  std::size_t shards_resumed = 0;
  /// Worker processes actually spawned (all generations).
  std::size_t workers_spawned = 0;
  /// Worker processes that exited uncleanly or were presumed dead.
  std::size_t workers_lost = 0;
  /// Leases taken back from dead workers (salvaged or reassigned).
  std::size_t leases_reclaimed = 0;
  /// Shards the coordinator computed itself (fallback path).
  std::size_t shards_inprocess = 0;
  /// Release-level trace id (empty unless obs_sidecar_prefix was set).
  std::string trace_id;
  NoiseCalibration calibration;
};

/// Publishes the graph behind `reader` to `out_path` through the
/// coordinator/worker protocol above. Byte-identical to publish_sharded
/// with options.sharded. Throws util::PreconditionError on bad options and
/// util::IoError when the release itself cannot be written (worker failures
/// are absorbed, not thrown). Fault points: "proc.spawn", "lease.acquire",
/// "io.shard.write"; workers additionally run "proc.worker.exit",
/// "lease.heartbeat" and the io.shard.* points.
DistributedPublishResult publish_distributed(
    const graph::EdgeListShardReader& reader,
    const DistributedPublishOptions& options, const std::string& out_path);

/// Entry point for the hidden `--worker` mode of sgp_publish: recomputes
/// options from flags, validates --config-crc against its own derivation
/// (exits via ParseError on drift), computes the assigned --shards list and
/// writes each payload + heartbeat records. Returns the process exit code
/// (0 on success); IO failures throw and take the tool's usual error paths.
int run_publish_worker(const util::CliArgs& args);

}  // namespace sgp::core
