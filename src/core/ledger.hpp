// Crash-safe write-ahead ledger for privacy-budget accounting.
//
// The privacy budget is the one resource this system must never lose track
// of: a crash between perturbation and accounting would let a restarted
// session double-spend ε and silently void the (ε, δ) guarantee. The ledger
// therefore records every release *before* the artifact is handed to the
// caller (write-ahead discipline), and each append rewrites the file through
// a temp-file + fsync + atomic-rename sequence so the on-disk ledger is
// always either the old complete state or the new complete state — never a
// torn write.
//
// File format (text, one record per line, versioned + per-record CRC32;
// full spec in docs/robustness.md):
//
//   sgp-budget-ledger v1
//   release 1 epsilon <e> delta <d> sigma <s> sensitivity <c> crc <8 hex>
//   release 2 ...
//
// The CRC covers the record line up to (not including) " crc", computed
// over the exact bytes written, so float round-tripping can never produce
// a false mismatch. Loading validates magic/version, per-record checksums,
// and the contiguous 1-based index sequence; any deviation raises
// util::LedgerCorruptError and nothing is loaded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sgp::core {

class BudgetLedger {
 public:
  struct Record {
    std::uint64_t index = 0;   ///< 1-based release index (contiguous)
    double epsilon = 0.0;      ///< per-release ε charged
    double delta = 0.0;        ///< per-release δ charged
    double sigma = 0.0;        ///< Gaussian noise scale actually used
    double sensitivity = 0.0;  ///< ℓ2-sensitivity the noise was calibrated to
  };

  /// Opens the ledger at `path`, loading and validating any existing
  /// records. A missing file is an empty ledger (nothing is created until
  /// the first append). Throws util::LedgerCorruptError on any validation
  /// failure and util::IoError if the file exists but cannot be read.
  explicit BudgetLedger(std::string path);

  /// Durably appends one record: writes the full ledger to `path + ".tmp"`,
  /// fsyncs, then atomically renames over `path`. The record's index must
  /// be size() + 1. Throws util::IoError on any failure — in which case the
  /// on-disk ledger is unchanged and the record is NOT considered appended.
  void append(const Record& record);

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace sgp::core
