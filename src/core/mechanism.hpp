// The mechanism family: one interface over every way this repo can publish
// a graph under an (ε, δ) budget.
//
// The paper's projection+perturbation publisher releases a noisy projected
// matrix; the community-level mechanisms (after "PrivGraph: Differentially
// Private Graph Data Publication by Exploiting Community Information",
// PAPERS.md) release a *synthetic graph* resampled from a noisy community
// profile. Wrapping both behind `Mechanism` lets the scenario engine
// (core/scenario.hpp), the E14 bench, and `sgp_analyze --compare-mechanisms`
// treat "which mechanism" as just another grid axis.
//
// Budget discipline is enforced by the base class, not by each
// implementation: `Mechanism::publish` validates the budget, charges the
// write-ahead ledger and the RDP accountant exactly once (before any
// artifact exists — the same discipline as core/session.hpp), then asks the
// implementation to build the release. All ε/δ splitting happens through
// dp/budget.hpp; hand-rolled budget arithmetic in a mechanism body is an
// sgp-lint R8 violation.
//
// Determinism contract: every implementation is a pure function of
// (graph, options) — noise and resampling draw from counter/seeded streams
// derived from options.seed, so equal inputs give byte-identical releases
// regardless of thread count or call order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "core/publisher.hpp"
#include "dp/budget.hpp"
#include "dp/defaults.hpp"
#include "dp/privacy.hpp"
#include "dp/rdp_accountant.hpp"
#include "graph/graph.hpp"

namespace sgp::core {

enum class MechanismKind {
  /// The paper's mechanism: random projection + Gaussian perturbation
  /// (core/publisher.hpp). Releases a noisy n×m matrix.
  kProjection,
  /// PrivGraph-style edge-DP community publishing: partition on a
  /// randomized-response sketch, Laplace-noise the community edge-count
  /// profile, resample a synthetic graph from the noisy profile.
  kPrivGraph,
  /// Node-DP community-preserved variant: degree-capped graph, group-privacy
  /// randomized response for the partition, Laplace noise at ℓ1-sensitivity
  /// `max_degree` on the counts.
  kNodeCommunity,
};

[[nodiscard]] std::string to_string(MechanismKind kind);
/// Inverse of to_string ("projection" / "privgraph" / "node-community");
/// throws util::PreconditionError listing the valid names for anything else.
[[nodiscard]] MechanismKind parse_mechanism(const std::string& name);
/// All registered mechanism names, in registry order.
[[nodiscard]] const std::vector<std::string>& known_mechanism_names();

struct MechanismOptions {
  dp::PrivacyParams params{};  ///< total budget for this release
  std::uint64_t seed = 7;      ///< root of every derived noise stream
  /// kProjection: the projection dimension m.
  std::size_t projection_dim = 64;
  /// Community mechanisms: share of ε/δ spent on the partition phase; the
  /// remainder buys the Laplace noise on the edge-count profile.
  double partition_share = dp::kDefaultPartitionShare;
  /// kNodeCommunity: degree cap D of the node-DP neighboring relation.
  std::size_t max_degree = 16;
  /// When set, the release is charged here write-ahead (exactly one record
  /// per publish, appended before the artifact is built).
  BudgetLedger* ledger = nullptr;
  /// When set, the release's RDP curve is accumulated here.
  dp::RdpAccountant* accountant = nullptr;
};

/// What a mechanism hands back: exactly one payload — a published matrix
/// (kProjection) or a synthetic graph (community mechanisms) — plus the
/// budget actually charged and the community count where one exists.
struct MechanismRelease {
  MechanismKind kind = MechanismKind::kProjection;
  dp::PrivacyParams charged;  ///< total (ε, δ) charged for this release
  std::size_t num_nodes = 0;  ///< n of the original graph (preserved)
  std::optional<PublishedGraph> matrix;
  std::optional<graph::Graph> synthetic;
  std::size_t num_communities = 0;

  /// Structural self-check: exactly one payload, node counts agree, the
  /// charged budget validates. Returns false instead of throwing so test
  /// grids can assert on it per cell.
  [[nodiscard]] bool validate() const;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  [[nodiscard]] virtual MechanismKind kind() const = 0;

  /// Publishes `g` under options.params. Template method: validates the
  /// budget, appends one ledger record and one accountant entry (write-ahead
  /// — before any artifact is built), then delegates to the implementation.
  [[nodiscard]] MechanismRelease publish(const graph::Graph& g,
                                         const MechanismOptions& options) const;

 protected:
  /// The ledger record this release will charge (index filled in by the base
  /// class): ε/δ plus the noise scale and sensitivity actually used.
  [[nodiscard]] virtual BudgetLedger::Record charge(
      const MechanismOptions& options) const = 0;

  /// Accumulates this release's RDP curve into `accountant`.
  virtual void account(const MechanismOptions& options,
                       dp::RdpAccountant& accountant) const = 0;

  /// Builds the release artifact; the budget is already charged.
  [[nodiscard]] virtual MechanismRelease build(
      const graph::Graph& g, const MechanismOptions& options) const = 0;
};

/// Factory over the registry; the string overload accepts the names
/// `known_mechanism_names` lists.
[[nodiscard]] std::unique_ptr<Mechanism> make_mechanism(MechanismKind kind);
[[nodiscard]] std::unique_ptr<Mechanism> make_mechanism(
    const std::string& name);

}  // namespace sgp::core
