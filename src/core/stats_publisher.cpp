#include "core/stats_publisher.hpp"

#include <algorithm>

#include "dp/mechanisms.hpp"
#include "graph/metrics.hpp"
#include "random/distributions.hpp"
#include "util/check.hpp"

namespace sgp::core {

NoisyScalar dp_edge_count(const graph::Graph& g, double epsilon,
                          random::Rng& rng) {
  const double scale = dp::laplace_scale(1.0, epsilon);
  NoisyScalar out;
  out.laplace_scale = scale;
  out.value =
      static_cast<double>(g.num_edges()) + random::laplace(rng, 0.0, scale);
  return out;
}

NoisyScalar dp_average_degree(const graph::Graph& g, double epsilon,
                              random::Rng& rng) {
  util::require(g.num_nodes() > 0, "dp_average_degree: empty graph");
  const NoisyScalar edges = dp_edge_count(g, epsilon, rng);
  NoisyScalar out;
  out.laplace_scale = edges.laplace_scale;
  out.value = 2.0 * edges.value / static_cast<double>(g.num_nodes());
  return out;
}

std::vector<double> dp_degree_histogram(const graph::Graph& g, double epsilon,
                                        std::size_t max_degree,
                                        random::Rng& rng) {
  util::require(epsilon > 0.0, "dp_degree_histogram: epsilon must be > 0");
  const auto exact = graph::degree_histogram(g);
  std::size_t bins = max_degree + 1;
  if (max_degree == 0) bins = std::max<std::size_t>(exact.size(), 1);

  std::vector<double> hist(bins, 0.0);
  for (std::size_t d = 0; d < exact.size(); ++d) {
    const std::size_t bin = std::min(d, bins - 1);  // truncate into last bin
    hist[bin] += static_cast<double>(exact[d]);
  }
  const double scale = dp::laplace_scale(4.0, epsilon);
  for (double& v : hist) v += random::laplace(rng, 0.0, scale);
  return hist;
}

NoisyScalar dp_triangle_count(const graph::Graph& g, double epsilon,
                              std::size_t degree_bound, random::Rng& rng) {
  util::require(degree_bound >= 2, "dp_triangle_count: degree bound must be >= 2");
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    util::require(g.degree(u) <= degree_bound,
                  "dp_triangle_count: graph violates the promised degree "
                  "bound; the DP guarantee would not hold");
  }
  const double sensitivity = static_cast<double>(degree_bound - 1);
  const double scale = dp::laplace_scale(sensitivity, epsilon);
  NoisyScalar out;
  out.laplace_scale = scale;
  out.value = static_cast<double>(graph::triangle_count(g)) +
              random::laplace(rng, 0.0, scale);
  return out;
}

}  // namespace sgp::core
