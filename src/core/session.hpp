// Budget-capped repeated publishing.
//
// A provider re-publishing an evolving graph (weekly snapshots, A/B cohorts)
// must stop before the cumulative privacy loss exceeds policy. The session
// wraps the publisher with two accountants — classic composition and Rényi
// (tighter for many Gaussian releases) — charges each release against a
// total (ε, δ) cap, and refuses to publish past it.
//
// A session can optionally be backed by a crash-safe BudgetLedger
// (core/ledger.hpp): every release is then durably recorded *before* the
// artifact is returned, and a session re-constructed from the same ledger
// path after a crash recovers the spent budget. A crash can therefore only
// ever over-count spent ε (a recorded release whose artifact was never
// delivered) — never under-count it, which is the failure that would void
// the (ε, δ) guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/ledger.hpp"
#include "core/publisher.hpp"
#include "dp/accountant.hpp"
#include "dp/rdp_accountant.hpp"

namespace sgp::core {

class PublishingSession {
 public:
  struct Options {
    RandomProjectionPublisher::Options publisher;
    dp::PrivacyParams total_budget{10.0, 1e-5};  ///< hard cap for the session
  };

  explicit PublishingSession(Options options);

  /// Durable session: every release is write-ahead recorded in the ledger
  /// at `ledger_path` before the artifact is returned. If the ledger
  /// already holds records (crash recovery), the spent budget is restored
  /// from it. Throws util::LedgerCorruptError if the ledger fails
  /// validation or was written under different per-release parameters.
  PublishingSession(Options options, const std::string& ledger_path);

  /// Publishes `g`, charging the configured per-release budget. Each release
  /// uses fresh randomness (the publisher seed is mixed with the release
  /// index). Throws util::BudgetExhaustedError if the release would push the
  /// spent budget past the cap — the graph is NOT published and nothing is
  /// charged in that case. With a ledger attached, util::IoError from the
  /// append likewise means nothing was published or charged.
  PublishedGraph publish(const graph::Graph& g);

  /// Charges the next release (write-ahead into the ledger when attached)
  /// and returns its per-release publisher options, seed already mixed with
  /// the release index. For callers that produce the artifact out of
  /// process — e.g. publish_sharded (core/sharded_publish.hpp) — instead of
  /// through publish(). A crash after this call leaves the budget charged
  /// with no artifact delivered: an over-count, the safe direction.
  /// Throws like publish() (budget refusal charges nothing).
  RandomProjectionPublisher::Options begin_release();

  /// Per-release options of an already-charged release `index` (1-based,
  /// <= num_releases()): deterministic, so a crashed out-of-core release
  /// can be finished — or re-emitted byte-identically — without a second
  /// budget charge.
  [[nodiscard]] RandomProjectionPublisher::Options release_options(
      std::uint64_t index) const;

  /// Cumulative (ε, δ) consumed so far, at the session's total δ: the
  /// tighter of sequential composition and Rényi-DP accounting.
  [[nodiscard]] dp::PrivacyParams spent() const;

  /// ε headroom left under the cap (0 when exhausted).
  [[nodiscard]] double remaining_epsilon() const;

  [[nodiscard]] std::size_t num_releases() const { return releases_; }
  [[nodiscard]] const Options& options() const { return options_; }

  [[nodiscard]] bool has_ledger() const { return ledger_ != nullptr; }
  /// The backing ledger, or nullptr for an in-memory session.
  [[nodiscard]] const BudgetLedger* ledger() const { return ledger_.get(); }

 private:
  [[nodiscard]] dp::PrivacyParams spent_after(std::size_t releases) const;

  Options options_;
  dp::PrivacyAccountant basic_;
  dp::RdpAccountant rdp_;
  double delta_projection_sum_ = 0.0;
  std::size_t releases_ = 0;
  std::unique_ptr<BudgetLedger> ledger_;
};

}  // namespace sgp::core
