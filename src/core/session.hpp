// Budget-capped repeated publishing.
//
// A provider re-publishing an evolving graph (weekly snapshots, A/B cohorts)
// must stop before the cumulative privacy loss exceeds policy. The session
// wraps the publisher with two accountants — classic composition and Rényi
// (tighter for many Gaussian releases) — charges each release against a
// total (ε, δ) cap, and refuses to publish past it.
#pragma once

#include <cstdint>

#include "core/publisher.hpp"
#include "dp/accountant.hpp"
#include "dp/rdp_accountant.hpp"

namespace sgp::core {

class PublishingSession {
 public:
  struct Options {
    RandomProjectionPublisher::Options publisher;
    dp::PrivacyParams total_budget{10.0, 1e-5};  ///< hard cap for the session
  };

  explicit PublishingSession(Options options);

  /// Publishes `g`, charging the configured per-release budget. Each release
  /// uses fresh randomness (the publisher seed is mixed with the release
  /// index). Throws std::runtime_error if the release would push the spent
  /// budget past the cap — the graph is NOT published in that case.
  PublishedGraph publish(const graph::Graph& g);

  /// Cumulative (ε, δ) consumed so far, at the session's total δ: the
  /// tighter of sequential composition and Rényi-DP accounting.
  [[nodiscard]] dp::PrivacyParams spent() const;

  /// ε headroom left under the cap (0 when exhausted).
  [[nodiscard]] double remaining_epsilon() const;

  [[nodiscard]] std::size_t num_releases() const { return releases_; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  [[nodiscard]] dp::PrivacyParams spent_after(std::size_t releases) const;

  Options options_;
  dp::PrivacyAccountant basic_;
  dp::RdpAccountant rdp_;
  double delta_projection_sum_ = 0.0;
  std::size_t releases_ = 0;
};

}  // namespace sgp::core
