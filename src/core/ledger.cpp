#include "core/ledger.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SGP_HAVE_FSYNC 1
#endif

namespace sgp::core {
namespace {

constexpr const char kMagic[] = "sgp-budget-ledger v1";

/// The record line up to (not including) the " crc <hex>" suffix.
std::string record_body(const BudgetLedger::Record& r) {
  std::ostringstream out;
  out.precision(17);  // max_digits10: values must survive a round trip
  out << "release " << r.index << " epsilon " << r.epsilon << " delta "
      << r.delta << " sigma " << r.sigma << " sensitivity " << r.sensitivity;
  return out.str();
}

std::string record_line(const BudgetLedger::Record& r) {
  const std::string body = record_body(r);
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", util::crc32(body));
  return body + " crc " + crc_hex;
}

[[noreturn]] void corrupt(const std::string& path, std::size_t line_no,
                          const std::string& why) {
  throw util::LedgerCorruptError("budget ledger " + path + ": line " +
                                 std::to_string(line_no) + ": " + why);
}

BudgetLedger::Record parse_record(const std::string& path,
                                  std::size_t line_no,
                                  const std::string& line,
                                  std::uint64_t expected_index) {
  const std::size_t crc_at = line.rfind(" crc ");
  if (crc_at == std::string::npos) corrupt(path, line_no, "missing checksum");
  const std::string body = line.substr(0, crc_at);
  const std::string crc_field = line.substr(crc_at + 5);

  char expected_hex[16];
  std::snprintf(expected_hex, sizeof(expected_hex), "%08x", util::crc32(body));
  if (crc_field != expected_hex) {
    obs::counter(obs::names::kLedgerCrcFailures).add();
    corrupt(path, line_no, "checksum mismatch (record altered or truncated)");
  }

  BudgetLedger::Record r;
  std::istringstream fields(body);
  std::string t_release, t_eps, t_delta, t_sigma, t_sens;
  if (!(fields >> t_release >> r.index >> t_eps >> r.epsilon >> t_delta >>
        r.delta >> t_sigma >> r.sigma >> t_sens >> r.sensitivity) ||
      t_release != "release" || t_eps != "epsilon" || t_delta != "delta" ||
      t_sigma != "sigma" || t_sens != "sensitivity") {
    corrupt(path, line_no, "malformed record");
  }
  std::string extra;
  if (fields >> extra) corrupt(path, line_no, "trailing fields in record");
  if (r.index != expected_index) {
    corrupt(path, line_no,
            "record index " + std::to_string(r.index) + " out of order "
            "(expected " + std::to_string(expected_index) + ")");
  }
  return r;
}

}  // namespace

BudgetLedger::BudgetLedger(std::string path) : path_(std::move(path)) {
  util::require(!path_.empty(), "budget ledger: path must be non-empty");
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec)) return;  // fresh ledger

  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) {
    throw util::IoError("budget ledger: cannot open " + path_);
  }
  std::string line;
  if (!std::getline(in, line)) {
    corrupt(path_, 1, "empty file (missing magic line)");
  }
  if (line != kMagic) {
    corrupt(path_, 1,
            "bad magic/version '" + line + "' (expected '" + kMagic + "')");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) corrupt(path_, line_no, "blank line inside ledger");
    records_.push_back(
        parse_record(path_, line_no, line, records_.size() + 1));
  }
  if (in.bad()) {
    throw util::IoError("budget ledger: read error on " + path_);
  }
  // A file ending without a final newline means the tail record was cut
  // mid-write; the checksum above already rejects a cut *within* the crc
  // field, and a cut before it loses " crc" and is rejected too, so at this
  // point every parsed record is intact.
  obs::counter(obs::names::kLedgerRecoveries).add();
  obs::counter(obs::names::kLedgerRecoveredRecords).add(records_.size());
}

void BudgetLedger::append(const Record& record) {
  static obs::Counter& attempts = obs::counter(obs::names::kLedgerAppendAttempts);
  static obs::Counter& appends = obs::counter(obs::names::kLedgerAppends);
  attempts.add();
  const util::WallTimer append_timer;
  util::fault_point(util::fault_points::kLedgerAppend);
  util::require(record.index == records_.size() + 1,
                "budget ledger: record index must be size() + 1");

  const std::string tmp = path_ + ".tmp";
  std::string content;
  content.reserve((records_.size() + 2) * 96);
  content += kMagic;
  content += '\n';
  for (const Record& r : records_) {
    content += record_line(r);
    content += '\n';
  }
  content += record_line(record);
  content += '\n';

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw util::IoError("budget ledger: cannot open temp file " + tmp + ": " +
                        std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size() &&
      std::fflush(f) == 0;
#ifdef SGP_HAVE_FSYNC
  const bool synced = !wrote || ::fsync(::fileno(f)) == 0;
#else
  const bool synced = true;
#endif
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    throw util::IoError("budget ledger: failed writing temp file " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    throw util::IoError("budget ledger: rename " + tmp + " -> " + path_ +
                        " failed: " + std::strerror(err));
  }
  records_.push_back(record);
  appends.add();
  if (obs::metrics_enabled()) {
    static obs::Histogram& latency = obs::histogram(obs::names::kLedgerAppendSeconds);
    latency.record(append_timer.seconds());
  }
}

}  // namespace sgp::core
