#include "core/session.hpp"

#include <algorithm>

#include "core/theory.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::core {

PublishingSession::PublishingSession(Options options)
    : options_(std::move(options)) {
  options_.total_budget.validate();
  const auto& per_release = options_.publisher.params;
  per_release.validate();
  util::require(per_release.epsilon <= options_.total_budget.epsilon,
                "session: per-release epsilon exceeds the total budget");
}

dp::PrivacyParams PublishingSession::spent_after(std::size_t releases) const {
  if (releases == 0) return {0.0, 0.0};
  const auto& per = options_.publisher.params;

  // Path 1: sequential composition of the full (ε, δ) releases.
  const double basic_eps = per.epsilon * static_cast<double>(releases);

  // Path 2: RDP of the Gaussian part. Each release is a Gaussian mechanism
  // with noise multiplier σ/Δ, plus δ_projection from the sensitivity bound.
  // Convert at whatever δ headroom remains after the projection failures.
  const NoiseCalibration cal = calibrate_noise(
      options_.publisher.projection_dim, per,
      options_.publisher.analytic_calibration, options_.publisher.delta_split);
  const double delta_proj_total =
      cal.delta_projection * static_cast<double>(releases);
  double rdp_eps = basic_eps;
  if (delta_proj_total < options_.total_budget.delta) {
    dp::RdpAccountant rdp;
    const double multiplier = cal.sigma / cal.sensitivity;
    for (std::size_t i = 0; i < releases; ++i) rdp.record_gaussian(multiplier);
    rdp_eps =
        rdp.to_dp(options_.total_budget.delta - delta_proj_total).epsilon;
  }
  return {std::min(basic_eps, rdp_eps), options_.total_budget.delta};
}

PublishedGraph PublishingSession::publish(const graph::Graph& g) {
  const auto projected = spent_after(releases_ + 1);
  util::ensure(projected.epsilon <= options_.total_budget.epsilon,
               "session: publishing would exceed the total privacy budget");

  RandomProjectionPublisher::Options opt = options_.publisher;
  // Fresh randomness per release: mix the release index into the seed.
  std::uint64_t mix = opt.seed + 0x9e3779b97f4a7c15ULL * (releases_ + 1);
  opt.seed = random::splitmix64(mix);
  const RandomProjectionPublisher publisher(opt);
  PublishedGraph out = publisher.publish(g);

  ++releases_;
  basic_.record(opt.params);
  rdp_.record_gaussian(out.calibration.sigma / out.calibration.sensitivity);
  delta_projection_sum_ += out.calibration.delta_projection;
  return out;
}

dp::PrivacyParams PublishingSession::spent() const {
  return spent_after(releases_);
}

double PublishingSession::remaining_epsilon() const {
  return std::max(0.0, options_.total_budget.epsilon - spent().epsilon);
}

}  // namespace sgp::core
