#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/theory.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::core {
namespace {

/// Recorded and configured per-release budgets must agree bit-for-bit up to
/// the text round trip (the ledger prints max_digits10, so exact equality
/// is expected; the epsilon tolerance only forgives the last ulp).
bool close(double a, double b) {
  return std::fabs(a - b) <= 1e-12 * std::max(1.0, std::fabs(a));
}

}  // namespace

PublishingSession::PublishingSession(Options options)
    : options_(std::move(options)) {
  options_.total_budget.validate();
  const auto& per_release = options_.publisher.params;
  per_release.validate();
  util::require(per_release.epsilon <= options_.total_budget.epsilon,
                "session: per-release epsilon exceeds the total budget");
}

PublishingSession::PublishingSession(Options options,
                                     const std::string& ledger_path)
    : PublishingSession(std::move(options)) {
  ledger_ = std::make_unique<BudgetLedger>(ledger_path);
  const auto& per = options_.publisher.params;
  const NoiseCalibration cal = calibrate_noise(
      options_.publisher.projection_dim, per,
      options_.publisher.analytic_calibration, options_.publisher.delta_split);
  for (const BudgetLedger::Record& r : ledger_->records()) {
    if (!close(r.epsilon, per.epsilon) || !close(r.delta, per.delta)) {
      throw util::LedgerCorruptError(
          "budget ledger " + ledger_->path() + ": record " +
          std::to_string(r.index) +
          " was written under different per-release parameters than this "
          "session is configured with — refusing to recover");
    }
    basic_.record({r.epsilon, r.delta});
    rdp_.record_gaussian(r.sigma / r.sensitivity);
    delta_projection_sum_ += cal.delta_projection;
  }
  releases_ = ledger_->size();
}

dp::PrivacyParams PublishingSession::spent_after(std::size_t releases) const {
  if (releases == 0) return {0.0, 0.0};
  const auto& per = options_.publisher.params;

  // Path 1: sequential composition of the full (ε, δ) releases.
  const double basic_eps = per.epsilon * static_cast<double>(releases);

  // Path 2: RDP of the Gaussian part. Each release is a Gaussian mechanism
  // with noise multiplier σ/Δ, plus δ_projection from the sensitivity bound.
  // Convert at whatever δ headroom remains after the projection failures.
  const NoiseCalibration cal = calibrate_noise(
      options_.publisher.projection_dim, per,
      options_.publisher.analytic_calibration, options_.publisher.delta_split);
  const double delta_proj_total =
      cal.delta_projection * static_cast<double>(releases);
  double rdp_eps = basic_eps;
  if (delta_proj_total < options_.total_budget.delta) {
    dp::RdpAccountant rdp;
    const double multiplier = cal.sigma / cal.sensitivity;
    for (std::size_t i = 0; i < releases; ++i) rdp.record_gaussian(multiplier);
    rdp_eps =
        rdp.to_dp(options_.total_budget.delta - delta_proj_total).epsilon;
  }
  return {std::min(basic_eps, rdp_eps), options_.total_budget.delta};
}

RandomProjectionPublisher::Options PublishingSession::release_options(
    std::uint64_t index) const {
  util::require(index >= 1 && index <= releases_,
                "session: release index must be in [1, num_releases()]");
  RandomProjectionPublisher::Options opt = options_.publisher;
  // Fresh randomness per release: mix the release index into the seed.
  std::uint64_t mix = opt.seed + 0x9e3779b97f4a7c15ULL * index;
  opt.seed = random::splitmix64(mix);
  return opt;
}

RandomProjectionPublisher::Options PublishingSession::begin_release() {
  // Times the admission + write-ahead charge, and scopes the ledger-charge
  // event below (R10: log_event only fires under an active span).
  obs::ScopedTimer timer(obs::names::kSessionBeginRelease);
  const auto projected = spent_after(releases_ + 1);
  if (projected.epsilon > options_.total_budget.epsilon) {
    obs::counter(obs::names::kSessionBudgetRefusals).add();
    throw util::BudgetExhaustedError(
        "session: publishing would exceed the total privacy budget (spent " +
        spent().to_string() + " of cap " + options_.total_budget.to_string() +
        ")");
  }

  // Write-ahead accounting: persist the charge (and charge in memory)
  // BEFORE computing the artifact. If the process dies — or the publisher
  // throws — after this point, the budget reads as spent even though no
  // artifact went out: an over-count, which is the safe direction. The
  // reverse order could hand out an unaccounted release.
  const auto& per = options_.publisher.params;
  const NoiseCalibration cal = calibrate_noise(
      options_.publisher.projection_dim, per,
      options_.publisher.analytic_calibration, options_.publisher.delta_split);
  if (ledger_ != nullptr) {
    ledger_->append({static_cast<std::uint64_t>(releases_ + 1), per.epsilon,
                     per.delta, cal.sigma, cal.sensitivity});
    char eps[32];
    char delta[32];
    std::snprintf(eps, sizeof(eps), "%g", per.epsilon);
    std::snprintf(delta, sizeof(delta), "%g", per.delta);
    obs::log_event(obs::names::kEventLedgerCharge,
                   {{"release", std::to_string(releases_ + 1)},
                    {"epsilon", eps},
                    {"delta", delta}});
  }
  ++releases_;
  basic_.record(per);
  rdp_.record_gaussian(cal.sigma / cal.sensitivity);
  delta_projection_sum_ += cal.delta_projection;

  static obs::Counter& publishes = obs::counter(obs::names::kSessionPublishes);
  publishes.add();
  return release_options(releases_);
}

PublishedGraph PublishingSession::publish(const graph::Graph& g) {
  obs::Span span("session.publish");
  span.attr("release_index", releases_ + 1);
  const RandomProjectionPublisher publisher(begin_release());
  return publisher.publish(g);
}

dp::PrivacyParams PublishingSession::spent() const {
  return spent_after(releases_);
}

double PublishingSession::remaining_epsilon() const {
  return std::max(0.0, options_.total_budget.epsilon - spent().epsilon);
}

}  // namespace sgp::core
