#include "core/serialization.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/projection.hpp"
#include "core/theory.hpp"
#include "obs/metric_names.hpp"
#include "obs/scoped_timer.hpp"
#include "random/counter_rng.hpp"
#include "random/counter_rng_simd.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::core {
namespace {

// v2 adds the `projection_rng` header line (counter-v1 vs sequential-v0).
// v1 files predate counter-based generation: they carry no tag and are
// loaded as sequential-v0 so reconstruction regenerates their P with the
// old sequential Rng.
constexpr char kMagic[] = "sgp-published-graph v2";
constexpr char kMagicV1[] = "sgp-published-graph v1";

}  // namespace

void write_published_header(std::ostream& out, std::size_t num_nodes,
                            std::size_t projection_dim,
                            const dp::PrivacyParams& params,
                            const NoiseCalibration& calibration,
                            ProjectionKind projection,
                            ProjectionRngKind projection_rng) {
  out.precision(17);  // max_digits10: header doubles must round-trip exactly
  out << kMagic << '\n';
  out << "nodes " << num_nodes << " dim " << projection_dim << '\n';
  out << "epsilon " << params.epsilon << " delta " << params.delta << " sigma "
      << calibration.sigma << " sensitivity " << calibration.sensitivity
      << '\n';
  out << "projection " << to_string(projection) << '\n';
  out << "projection_rng " << to_string(projection_rng) << '\n';
  out << "data\n";
}

void write_published_doubles(std::ostream& out,
                             std::span<const double> values) {
  // Assumes a little-endian IEEE-754 host (x86-64 / aarch64) — asserted at
  // compile time below so a port to an exotic platform fails loudly.
  static_assert(sizeof(double) == 8);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

void save_published(const PublishedGraph& published, std::ostream& out) {
  util::fault_point(util::fault_points::kIoWrite);
  obs::ScopedTimer timer(obs::names::kIoSaveRelease);
  timer.attr("bytes", published.published_bytes());
  write_published_header(out, published.num_nodes, published.projection_dim,
                         published.params, published.calibration,
                         published.projection, published.projection_rng);
  write_published_doubles(out, published.data.data());
  if (!out.good()) {
    throw util::IoError("save_published: stream write failed");
  }
}

void save_published_file(const PublishedGraph& published,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    throw util::IoError("save_published: cannot open " + path);
  }
  save_published(published, out);
}

PublishedGraph load_published(std::istream& in) {
  util::fault_point(util::fault_points::kIoRead);
  obs::ScopedTimer timer(obs::names::kIoLoadRelease);
  std::string line;
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: bad magic line");
  }
  bool legacy_v1 = false;
  if (line == kMagicV1) {
    legacy_v1 = true;
  } else if (line != kMagic) {
    throw util::ParseError("load_published: bad magic line");
  }

  PublishedGraph pub;
  std::string token;
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: truncated header");
  }
  {
    std::istringstream fields(line);
    std::size_t n = 0, m = 0;
    if (!(fields >> token >> n >> token >> m) || n == 0 || m == 0) {
      throw util::ParseError("load_published: bad dimensions line");
    }
    pub.num_nodes = n;
    pub.projection_dim = m;
  }
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: truncated header");
  }
  {
    std::istringstream fields(line);
    if (!(fields >> token >> pub.params.epsilon >> token >> pub.params.delta >>
          token >> pub.calibration.sigma >> token >>
          pub.calibration.sensitivity)) {
      throw util::ParseError("load_published: bad privacy line");
    }
  }
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: truncated header");
  }
  {
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> token >> kind) || token != "projection") {
      throw util::ParseError("load_published: bad projection line");
    }
    if (kind == "gaussian") {
      pub.projection = ProjectionKind::kGaussian;
    } else if (kind == "achlioptas") {
      pub.projection = ProjectionKind::kAchlioptas;
    } else {
      throw util::ParseError("load_published: unknown projection kind '" +
                             kind + "'");
    }
  }
  if (legacy_v1) {
    // v1 files predate the projection_rng tag: their P/noise came from the
    // sequential Rng, so reconstruction must use the legacy regeneration.
    pub.projection_rng = ProjectionRngKind::kSequentialLegacy;
  } else {
    if (!std::getline(in, line)) {
      throw util::ParseError("load_published: truncated header");
    }
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> token >> tag) || token != "projection_rng") {
      throw util::ParseError("load_published: bad projection_rng line");
    }
    pub.projection_rng = parse_projection_rng(tag);
  }
  if (!std::getline(in, line) || line != "data") {
    throw util::ParseError("load_published: missing data marker");
  }

  std::vector<double> values(pub.num_nodes * pub.projection_dim);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (in.gcount() !=
      static_cast<std::streamsize>(values.size() * sizeof(double))) {
    throw util::ParseError("load_published: truncated payload");
  }
  pub.data = linalg::DenseMatrix(pub.num_nodes, pub.projection_dim,
                                 std::move(values));
  return pub;
}

PublishedGraph load_published_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::IoError("load_published: cannot open " + path);
  }
  return load_published(in);
}

void publish_to_stream(const graph::Graph& g,
                       const RandomProjectionPublisher::Options& options,
                       std::ostream& out) {
  util::fault_point(util::fault_points::kIoWrite);
  obs::ScopedTimer timer(obs::names::kPublishStream);
  timer.attr("n", g.num_nodes()).attr("m", options.projection_dim);
  const std::size_t n = g.num_nodes();
  const std::size_t m = options.projection_dim;
  util::require(n >= 1, "publish_to_stream: graph must have nodes");
  util::require(m >= 1 && m <= n,
                "publish_to_stream: projection_dim must be in [1, n]");
  options.params.validate();

  // Replicate the fused publisher's randomness exactly: P and the noise are
  // counter-based pure functions of the seed (core/projection.hpp), so the
  // needed row of P regenerates on demand per neighbor and nothing n×m is
  // ever held. Per output cell, neighbors are visited in ascending order —
  // the same accumulation order as the fused kernel — so the payload is
  // byte-identical to save_published(publish(g)) in O(m) memory.
  const random::CounterRng p_rng = projection_counter_rng(options.seed);
  const random::CounterRng noise = noise_counter_rng(options.seed);

  // Same once-per-publish kernel resolution as the in-memory publisher, so
  // the two paths pick the same mapping — and therefore the same header tag
  // and payload bytes — for the same options and environment.
  const random::KernelVariant kernel =
      random::resolve_normal_kernel(options.kernel);

  const NoiseCalibration calibration = calibrate_noise(
      m, options.params, options.analytic_calibration, options.delta_split);
  write_published_header(out, n, m, options.params, calibration,
                         options.projection,
                         projection_rng_for(options.projection, kernel));

  // Stream one published row at a time: Ỹ_i = Σ_{j∈N(i)} P_j + σ·N_i.
  std::vector<double> row(m);
  std::vector<double> prow(m);
  std::vector<double> draws(m);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(row.begin(), row.end(), 0.0);
    for (std::uint32_t j : g.neighbors(i)) {
      fill_projection_tile(p_rng, m, options.projection, j, j + 1, 0, m,
                           prow.data(), kernel);
      for (std::size_t c = 0; c < m; ++c) row[c] += prow[c];
    }
    const std::uint64_t base = static_cast<std::uint64_t>(i) * m;
    random::normal_batch(noise, base, m, draws.data(), kernel);
    for (std::size_t c = 0; c < m; ++c) {
      row[c] += calibration.sigma * draws[c];
    }
    write_published_doubles(out, row);
  }
  if (!out.good()) {
    throw util::IoError("publish_to_stream: stream write failed");
  }
}

}  // namespace sgp::core
