#include "core/serialization.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "obs/scoped_timer.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace sgp::core {
namespace {

constexpr char kMagic[] = "sgp-published-graph v1";

void write_doubles(std::ostream& out, std::span<const double> values) {
  // Assumes a little-endian IEEE-754 host (x86-64 / aarch64) — asserted at
  // compile time below so a port to an exotic platform fails loudly.
  static_assert(sizeof(double) == 8);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
}

}  // namespace

void save_published(const PublishedGraph& published, std::ostream& out) {
  util::fault_point("io.write");
  obs::ScopedTimer timer("io.save_release");
  timer.attr("bytes", published.published_bytes());
  out.precision(17);  // max_digits10: header doubles must round-trip exactly
  out << kMagic << '\n';
  out << "nodes " << published.num_nodes << " dim " << published.projection_dim
      << '\n';
  out << "epsilon " << published.params.epsilon << " delta "
      << published.params.delta << " sigma " << published.calibration.sigma
      << " sensitivity " << published.calibration.sensitivity << '\n';
  out << "projection " << to_string(published.projection) << '\n';
  out << "data\n";
  write_doubles(out, published.data.data());
  if (!out.good()) {
    throw util::IoError("save_published: stream write failed");
  }
}

void save_published_file(const PublishedGraph& published,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    throw util::IoError("save_published: cannot open " + path);
  }
  save_published(published, out);
}

PublishedGraph load_published(std::istream& in) {
  util::fault_point("io.read");
  obs::ScopedTimer timer("io.load_release");
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw util::ParseError("load_published: bad magic line");
  }

  PublishedGraph pub;
  std::string token;
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: truncated header");
  }
  {
    std::istringstream fields(line);
    std::size_t n = 0, m = 0;
    if (!(fields >> token >> n >> token >> m) || n == 0 || m == 0) {
      throw util::ParseError("load_published: bad dimensions line");
    }
    pub.num_nodes = n;
    pub.projection_dim = m;
  }
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: truncated header");
  }
  {
    std::istringstream fields(line);
    if (!(fields >> token >> pub.params.epsilon >> token >> pub.params.delta >>
          token >> pub.calibration.sigma >> token >>
          pub.calibration.sensitivity)) {
      throw util::ParseError("load_published: bad privacy line");
    }
  }
  if (!std::getline(in, line)) {
    throw util::ParseError("load_published: truncated header");
  }
  {
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> token >> kind) || token != "projection") {
      throw util::ParseError("load_published: bad projection line");
    }
    if (kind == "gaussian") {
      pub.projection = ProjectionKind::kGaussian;
    } else if (kind == "achlioptas") {
      pub.projection = ProjectionKind::kAchlioptas;
    } else {
      throw util::ParseError("load_published: unknown projection kind '" +
                             kind + "'");
    }
  }
  if (!std::getline(in, line) || line != "data") {
    throw util::ParseError("load_published: missing data marker");
  }

  std::vector<double> values(pub.num_nodes * pub.projection_dim);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (in.gcount() !=
      static_cast<std::streamsize>(values.size() * sizeof(double))) {
    throw util::ParseError("load_published: truncated payload");
  }
  pub.data = linalg::DenseMatrix(pub.num_nodes, pub.projection_dim,
                                 std::move(values));
  return pub;
}

PublishedGraph load_published_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::IoError("load_published: cannot open " + path);
  }
  return load_published(in);
}

void publish_to_stream(const graph::Graph& g,
                       const RandomProjectionPublisher::Options& options,
                       std::ostream& out) {
  util::fault_point("io.write");
  obs::ScopedTimer timer("publish.stream");
  timer.attr("n", g.num_nodes()).attr("m", options.projection_dim);
  const std::size_t n = g.num_nodes();
  const std::size_t m = options.projection_dim;
  util::require(n >= 1, "publish_to_stream: graph must have nodes");
  util::require(m >= 1 && m <= n,
                "publish_to_stream: projection_dim must be in [1, n]");
  options.params.validate();

  // Replicate the publisher's randomness exactly: the projection consumes
  // the base stream, the noise uses a jumped substream of the post-
  // projection state (see RandomProjectionPublisher::publish).
  random::Rng rng(options.seed);
  const linalg::DenseMatrix p =
      make_projection(n, m, options.projection, rng);
  random::Rng noise_rng = rng.split(1);

  PublishedGraph header_only;
  header_only.num_nodes = n;
  header_only.projection_dim = m;
  header_only.params = options.params;
  header_only.projection = options.projection;
  header_only.calibration = calibrate_noise(
      m, options.params, options.analytic_calibration, options.delta_split);
  // Write the header through the normal path with an empty payload...
  out.precision(17);
  out << kMagic << '\n';
  out << "nodes " << n << " dim " << m << '\n';
  out << "epsilon " << options.params.epsilon << " delta "
      << options.params.delta << " sigma " << header_only.calibration.sigma
      << " sensitivity " << header_only.calibration.sensitivity << '\n';
  out << "projection " << to_string(options.projection) << '\n';
  out << "data\n";

  // ...then stream one published row at a time.
  std::vector<double> row(m);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(row.begin(), row.end(), 0.0);
    for (std::uint32_t j : g.neighbors(i)) {
      const auto prow = p.row(j);
      for (std::size_t c = 0; c < m; ++c) row[c] += prow[c];
    }
    for (std::size_t c = 0; c < m; ++c) {
      row[c] += random::normal(noise_rng, 0.0, header_only.calibration.sigma);
    }
    write_doubles(out, row);
  }
  if (!out.good()) {
    throw util::IoError("publish_to_stream: stream write failed");
  }
}

}  // namespace sgp::core
