// The paper's mechanism: differentially private graph publication via random
// projection + random perturbation.
//
//   1. Project:  Y = A · P,   P ∈ R^{n×m} random (Gaussian or Achlioptas),
//                             m ≪ n  →  O(|E|·m) time, O(n·m) space.
//   2. Perturb:  Ỹ = Y + N,   N i.i.d. N(0, σ²), σ from core/theory.hpp.
//   3. Publish:  Ỹ plus non-private metadata.
//
// The published object supports the paper's two utility applications through
// `spectral_embedding` (node clustering) and `centrality_scores`
// (node ranking) — both derived from the top left singular vectors of Ỹ,
// which approximate the top eigenvectors of A.
#pragma once

#include <cstdint>

#include "cluster/kmeans.hpp"
#include "core/projection.hpp"
#include "core/theory.hpp"
#include "dp/defaults.hpp"
#include "dp/privacy.hpp"
#include "graph/graph.hpp"
#include "linalg/dense_matrix.hpp"
#include "random/kernel_variant.hpp"

namespace sgp::core {

/// Which generator family produced P (and the noise) for a release. Recorded
/// in the release metadata so reconstruction can regenerate P exactly.
enum class ProjectionRngKind {
  /// Pre-counter releases: P drawn row-major from the sequential
  /// xoshiro-based Rng seeded with the release seed, noise from rng.split(1).
  /// Kept so old on-disk releases keep round-tripping.
  kSequentialLegacy,
  /// Counter-based releases (the fused kernel): P[i][j] and N[i][j] are pure
  /// functions of (seed, i·m + j) — see core/projection.hpp. Gaussian draws
  /// use the scalar libm Box–Muller mapping.
  kCounterV1,
  /// Counter-based releases whose gaussian draws use the polynomial normal
  /// mapping of the vector kernels (random/counter_rng_simd.hpp). Same
  /// counter layout as kCounterV1; only the normal transform differs. The
  /// mapping is ISA-independent (generic/avx2/avx512 are bit-identical), so
  /// any machine can regenerate P for these releases via the always-compiled
  /// generic kernel. Achlioptas releases never carry this tag — their
  /// uniform transform is exact under every kernel variant.
  kCounterV1Simd,
};

[[nodiscard]] std::string to_string(ProjectionRngKind kind);
/// Inverse of to_string ("sequential-v0" / "counter-v1" /
/// "counter-v1-simd"); throws util::ParseError for anything else.
[[nodiscard]] ProjectionRngKind parse_projection_rng(const std::string& s);

/// The tag a new release publishes under, given its projection family and
/// the RESOLVED kernel variant (never kAuto): gaussian + polynomial normals
/// → kCounterV1Simd, everything else → kCounterV1. Shared by the in-memory,
/// streaming, and sharded publishers so the three can never disagree.
[[nodiscard]] ProjectionRngKind projection_rng_for(
    ProjectionKind projection, random::KernelVariant resolved_kernel);

/// The artifact a data owner releases. Everything in here is safe to share:
/// `data` is the perturbed projection; the metadata (n, m, ε, δ, σ) is
/// data-independent.
struct PublishedGraph {
  linalg::DenseMatrix data;      ///< Ỹ, n × m
  std::size_t num_nodes = 0;     ///< n of the original graph
  std::size_t projection_dim = 0;  ///< m
  dp::PrivacyParams params;      ///< budget consumed by this release
  NoiseCalibration calibration;  ///< σ and sensitivity actually used
  ProjectionKind projection = ProjectionKind::kGaussian;
  /// Generator family of this release; new releases are always kCounterV1,
  /// kSequentialLegacy only appears on releases loaded from old files.
  ProjectionRngKind projection_rng = ProjectionRngKind::kCounterV1;

  /// Size of the release in bytes (doubles of Ỹ) — the storage-efficiency
  /// metric of experiment E7.
  [[nodiscard]] std::size_t published_bytes() const {
    return data.rows() * data.cols() * sizeof(double);
  }
};

class RandomProjectionPublisher {
 public:
  struct Options {
    std::size_t projection_dim = 100;  ///< m
    dp::PrivacyParams params{1.0, 1e-6};
    ProjectionKind projection = ProjectionKind::kGaussian;
    std::uint64_t seed = 7;
    bool analytic_calibration = true;  ///< false → classic Gaussian bound
    /// Fraction of δ spent on the sensitivity-bound failure probability.
    double delta_split = dp::kDefaultDeltaSplit;
    /// Which counter-RNG batch kernel generates P and the noise. kAuto keeps
    /// gaussian normals on the byte-stable scalar mapping (unless
    /// SGP_FORCE_KERNEL overrides) while exact ops pick the fastest ISA; a
    /// vector variant publishes gaussian releases under the
    /// "counter-v1-simd" tag. See random/kernel_variant.hpp.
    random::KernelVariant kernel = random::KernelVariant::kAuto;
  };

  explicit RandomProjectionPublisher(Options options);

  /// Publishes `g` under the configured budget. Requires m <= n.
  [[nodiscard]] PublishedGraph publish(const graph::Graph& g) const;

  /// Publishes an arbitrary symmetric weighted matrix (e.g. an interaction-
  /// strength matrix — the abstract's general "publishing matrices" setting)
  /// under the neighboring relation "one symmetric pair of entries changes
  /// by at most `max_entry_change`". The row ℓ2-sensitivity scales linearly,
  /// so σ is `max_entry_change` times the 0/1-graph calibration. Requires a
  /// square symmetric matrix and m <= n.
  [[nodiscard]] PublishedGraph publish_matrix(const linalg::CsrMatrix& matrix,
                                              double max_entry_change) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Analyst-side: top-k left singular vectors of Ỹ (n×k) — the spectral node
/// embedding used for clustering. Requires 1 <= k <= m.
linalg::DenseMatrix spectral_embedding(const PublishedGraph& published,
                                       std::size_t k);

/// Analyst-side: eigenvector-centrality surrogate from the dominant left
/// singular vector of Ỹ.
std::vector<double> centrality_scores(const PublishedGraph& published);

/// Analyst-side: degree estimates from published row norms. JL preserves
/// ‖A_{i,·}‖² = deg(i), so E‖Ỹ_{i,·}‖² = deg(i) + m·σ²; this returns the
/// debiased ‖Ỹ_{i,·}‖² − m·σ² (can be negative for low-degree nodes under
/// heavy noise — fine for ranking purposes).
std::vector<double> degree_scores(const PublishedGraph& published);

/// Analyst-side convenience: spectral clustering of the published graph into
/// `k` groups (embedding + row normalization + k-means).
cluster::KMeansResult cluster_published(const PublishedGraph& published,
                                        std::size_t k, std::uint64_t seed = 7);

}  // namespace sgp::core
