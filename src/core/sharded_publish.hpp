// Out-of-core shard-parallel publication.
//
// The mechanism is row-separable: published row i is
//   Ỹ_i = Σ_{j∈N(i)} P_j + σ·N_i,
// and with counter-based generation (core/projection.hpp) both P rows and
// the noise are pure functions of (seed, counter) — no state flows between
// rows. Publication therefore decomposes into independent row shards: stream
// shard rows from the edge list (graph/shard_loader.hpp), compute the
// shard's tile of Ỹ in parallel, append it to the release stream, repeat.
// Working memory is O(rows_per_shard·m + |E_shard|) instead of O(n·m), and
// the output is byte-identical to publish_to_stream for every shard size
// and thread count (enforced by tests/core/sharded_publish_test.cpp and the
// slow differential matrix).
//
// Durability: after each shard the publisher appends a CRC-guarded record to
// a sidecar checkpoint log (`<out>.ckpt`). A crash mid-shard leaves the log
// one record short; on the next run with identical options the publisher
// truncates the release file back to the last complete shard boundary and
// resumes there, producing the same bytes as an uninterrupted run. The log
// is deleted once the release is complete.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/publisher.hpp"
#include "graph/shard_loader.hpp"

namespace sgp::core {

/// Partition of the row range [0, num_rows) into consecutive half-open
/// shards of `shard_rows` rows (the last shard may be smaller).
struct ShardPlan {
  std::size_t num_rows = 0;
  std::size_t shard_rows = 1;

  [[nodiscard]] std::size_t num_shards() const {
    return num_rows == 0 ? 0 : (num_rows + shard_rows - 1) / shard_rows;
  }

  /// Row range [begin, end) of shard `s` (s < num_shards()).
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
      std::size_t s) const {
    const std::size_t begin = s * shard_rows;
    return {begin, std::min(num_rows, begin + shard_rows)};
  }
};

/// Builds a plan. `shard_rows == 0` means "one shard covering everything"
/// (and a plan over zero rows has zero shards either way).
[[nodiscard]] ShardPlan plan_shards(std::size_t num_rows,
                                    std::size_t shard_rows);

/// Derives a shard height from a memory budget: half the budget is reserved
/// for the shard's output tile (shard_rows·m·8 bytes), the other half
/// absorbs the shard's adjacency lists and per-thread scratch — so
///   shard_rows = max(1, (max_memory_mb·2^20 / 2) / (8·m)).
/// Documented in docs/scaling.md; the property tests pin the bound.
[[nodiscard]] std::size_t shard_rows_for_memory(std::size_t max_memory_mb,
                                                std::size_t projection_dim);

struct ShardedPublishOptions {
  /// Same knobs as the in-memory path — seed, m, budget, projection kind.
  RandomProjectionPublisher::Options publish;
  /// Rows per shard; 0 = single shard (still out-of-core loaded).
  std::size_t shard_rows = 0;
  /// Worker threads for the per-shard row loop; 0 = the global pool.
  std::size_t threads = 0;
  /// Consult `<out>.ckpt` and resume at the last complete shard when the
  /// checkpoint matches these options. Off = always start fresh.
  bool resume = true;
};

struct ShardedPublishResult {
  std::size_t num_nodes = 0;
  std::size_t shards_total = 0;
  /// Shards skipped because a matching checkpoint proved them complete.
  std::size_t shards_resumed = 0;
  NoiseCalibration calibration;
};

/// Publishes the graph behind `reader` to `out_path` shard by shard.
/// The release file is byte-identical to publish_to_stream over
/// read_edge_list of the same file with the same options. Throws
/// util::PreconditionError on bad options and util::IoError on IO failure
/// (fault points: "io.shard.read", "io.shard.write", "io.shard.checkpoint").
ShardedPublishResult publish_sharded(const graph::EdgeListShardReader& reader,
                                     const ShardedPublishOptions& options,
                                     const std::string& out_path);

}  // namespace sgp::core
