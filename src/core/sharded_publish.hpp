// Out-of-core shard-parallel publication.
//
// The mechanism is row-separable: published row i is
//   Ỹ_i = Σ_{j∈N(i)} P_j + σ·N_i,
// and with counter-based generation (core/projection.hpp) both P rows and
// the noise are pure functions of (seed, counter) — no state flows between
// rows. Publication therefore decomposes into independent row shards: stream
// shard rows from the edge list (graph/shard_loader.hpp), compute the
// shard's tile of Ỹ in parallel, append it to the release stream, repeat.
// Working memory is O(rows_per_shard·m + |E_shard|) instead of O(n·m), and
// the output is byte-identical to publish_to_stream for every shard size
// and thread count (enforced by tests/core/sharded_publish_test.cpp and the
// slow differential matrix).
//
// Durability: after each shard the publisher appends a CRC-guarded record to
// a sidecar checkpoint log (`<out>.ckpt`). A crash mid-shard leaves the log
// one record short; on the next run with identical options the publisher
// truncates the release file back to the last complete shard boundary and
// resumes there, producing the same bytes as an uninterrupted run. The log
// is deleted once the release is complete.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/publisher.hpp"
#include "graph/shard_loader.hpp"
#include "util/check.hpp"
#include "util/retry.hpp"
#include "util/thread_pool.hpp"

namespace sgp::core {

/// Partition of the row range [0, num_rows) into consecutive half-open
/// shards of `shard_rows` rows (the last shard may be smaller).
struct ShardPlan {
  std::size_t num_rows = 0;
  std::size_t shard_rows = 1;

  [[nodiscard]] std::size_t num_shards() const {
    // 1 + (num_rows-1)/shard_rows is the overflow-free form of the ceil
    // division: the naive (num_rows + shard_rows - 1) wraps for
    // adversarially large shard_rows (e.g. the shard_rows == num_rows
    // single-shard plan when num_rows > SIZE_MAX/2).
    SGP_REQUIRE(shard_rows >= 1, "ShardPlan: shard_rows must be >= 1");
    return num_rows == 0 ? 0 : 1 + (num_rows - 1) / shard_rows;
  }

  /// Row range [begin, end) of shard `s`. Requires s < num_shards() —
  /// which also makes the s·shard_rows product overflow-free, since the
  /// begin of any valid shard is at most num_rows − 1.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
      std::size_t s) const {
    SGP_REQUIRE(s < num_shards(), "ShardPlan: shard index out of range");
    const std::size_t begin = s * shard_rows;
    return {begin, begin + std::min(num_rows - begin, shard_rows)};
  }
};

/// Builds a plan. `shard_rows == 0` means "one shard covering everything"
/// (and a plan over zero rows has zero shards either way).
[[nodiscard]] ShardPlan plan_shards(std::size_t num_rows,
                                    std::size_t shard_rows);

/// Derives a shard height from a memory budget: half the budget is reserved
/// for the shard's output tile (shard_rows·m·8 bytes), the other half
/// absorbs the shard's adjacency lists and per-thread scratch — so
///   shard_rows = max(1, (max_memory_mb·2^20 / 2) / (8·m)).
/// Documented in docs/scaling.md; the property tests pin the bound.
[[nodiscard]] std::size_t shard_rows_for_memory(std::size_t max_memory_mb,
                                                std::size_t projection_dim);

struct ShardedPublishOptions {
  /// Same knobs as the in-memory path — seed, m, budget, projection kind.
  RandomProjectionPublisher::Options publish;
  /// Rows per shard; 0 = single shard (still out-of-core loaded).
  std::size_t shard_rows = 0;
  /// Worker threads for the per-shard row loop; 0 = the global pool.
  std::size_t threads = 0;
  /// Consult `<out>.ckpt` and resume at the last complete shard when the
  /// checkpoint matches these options. Off = always start fresh.
  bool resume = true;
  /// Retry policy for the transiently-failing IO steps (shard loads — the
  /// `io.shard.read` fault point; re-loading is idempotent). The default
  /// max_attempts == 1 preserves fail-fast semantics; the distributed
  /// coordinator/worker mode raises it.
  util::RetryPolicy io_retry{.max_attempts = 1};
};

struct ShardedPublishResult {
  std::size_t num_nodes = 0;
  std::size_t shards_total = 0;
  /// Shards skipped because a matching checkpoint proved them complete.
  std::size_t shards_resumed = 0;
  NoiseCalibration calibration;
};

/// Publishes the graph behind `reader` to `out_path` shard by shard.
/// The release file is byte-identical to publish_to_stream over
/// read_edge_list of the same file with the same options. Throws
/// util::PreconditionError on bad options and util::IoError on IO failure
/// (fault points: "io.shard.read", "io.shard.write", "io.shard.checkpoint").
ShardedPublishResult publish_sharded(const graph::EdgeListShardReader& reader,
                                     const ShardedPublishOptions& options,
                                     const std::string& out_path);

/// Computes the published tile for rows [row_begin, row_end) — exactly the
/// bytes publish_to_stream would emit for those rows: neighbors ascending,
/// then σ-scaled counter noise, both pure functions of (seed, counter), so
/// the caller's process/shard/thread topology cannot change a bit. `tile`
/// is resized to (row_end − row_begin)·m. Shared by the single-process
/// shard loop and the distributed workers (core/distributed_publish.hpp).
void compute_shard_tile(const graph::ShardRows& shard, std::size_t row_begin,
                        std::size_t row_end,
                        const RandomProjectionPublisher::Options& publish,
                        const NoiseCalibration& calibration,
                        util::ThreadPool& pool, std::vector<double>& tile);

/// The CRC-guarded config record that ties a checkpoint — or a distributed
/// lease file — to one exact publication: every knob that changes output
/// bytes or shard boundaries is included, so stale state from a different
/// run can never be resumed into.
[[nodiscard]] std::string shard_config_line(
    const ShardedPublishOptions& options, std::size_t num_nodes,
    std::size_t projection_dim, const NoiseCalibration& calibration,
    const ShardPlan& plan);

}  // namespace sgp::core
