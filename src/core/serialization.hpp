// Serialization of the published artifact.
//
// Publishing means shipping a file: the release is written as a small text
// header (human-auditable metadata — everything in it is data-independent)
// followed by the raw little-endian doubles of Ỹ.
#pragma once

#include <iosfwd>
#include <string>

#include "core/publisher.hpp"

namespace sgp::core {

/// Writes the release (header + matrix) to a stream.
/// Format, line-oriented header then binary payload:
///   sgp-published-graph v1
///   nodes <n> dim <m>
///   epsilon <e> delta <d> sigma <s> sensitivity <c>
///   projection <gaussian|achlioptas>
///   data
///   <n*m little-endian IEEE-754 doubles, row-major>
void save_published(const PublishedGraph& published, std::ostream& out);

/// Saves to a file path. Throws std::runtime_error if unwritable.
void save_published_file(const PublishedGraph& published,
                         const std::string& path);

/// Reads a release previously written by save_published.
/// Throws std::runtime_error on format or IO errors.
PublishedGraph load_published(std::istream& in);

/// Loads from a file path. Throws std::runtime_error if unreadable.
PublishedGraph load_published_file(const std::string& path);

/// Memory-bounded publish: computes and writes the release row by row
/// instead of materializing Ỹ (peak memory drops from ~2·n·m to ~n·m
/// doubles — the projection matrix only). Produces **byte-identical** output
/// to `save_published(RandomProjectionPublisher(options).publish(g), out)`
/// for the same options, so consumers cannot tell the difference.
void publish_to_stream(const graph::Graph& g,
                       const RandomProjectionPublisher::Options& options,
                       std::ostream& out);

}  // namespace sgp::core
