// Serialization of the published artifact.
//
// Publishing means shipping a file: the release is written as a small text
// header (human-auditable metadata — everything in it is data-independent)
// followed by the raw little-endian doubles of Ỹ.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/publisher.hpp"

namespace sgp::core {

/// Writes the v2 text header (magic through the "data" marker, inclusive)
/// exactly as save_published/publish_to_stream emit it. The single encoder
/// for the header bytes: save_published, publish_to_stream and the sharded
/// publisher (core/sharded_publish.hpp) all call this, so their outputs can
/// only differ in the payload. Sets the stream's precision to 17
/// (max_digits10) as a side effect.
void write_published_header(std::ostream& out, std::size_t num_nodes,
                            std::size_t projection_dim,
                            const dp::PrivacyParams& params,
                            const NoiseCalibration& calibration,
                            ProjectionKind projection,
                            ProjectionRngKind projection_rng);

/// Writes `values` as raw little-endian IEEE-754 doubles — the payload
/// encoding of the release format. Exposed so every publisher path shares
/// one encoder.
void write_published_doubles(std::ostream& out, std::span<const double> values);

/// Writes the release (header + matrix) to a stream.
/// Format, line-oriented header then binary payload:
///   sgp-published-graph v1
///   nodes <n> dim <m>
///   epsilon <e> delta <d> sigma <s> sensitivity <c>
///   projection <gaussian|achlioptas>
///   data
///   <n*m little-endian IEEE-754 doubles, row-major>
void save_published(const PublishedGraph& published, std::ostream& out);

/// Saves to a file path. Throws std::runtime_error if unwritable.
void save_published_file(const PublishedGraph& published,
                         const std::string& path);

/// Reads a release previously written by save_published.
/// Throws std::runtime_error on format or IO errors.
PublishedGraph load_published(std::istream& in);

/// Loads from a file path. Throws std::runtime_error if unreadable.
PublishedGraph load_published_file(const std::string& path);

/// Memory-bounded publish: computes and writes the release row by row
/// instead of materializing Ỹ (peak memory drops from ~2·n·m to ~n·m
/// doubles — the projection matrix only). Produces **byte-identical** output
/// to `save_published(RandomProjectionPublisher(options).publish(g), out)`
/// for the same options, so consumers cannot tell the difference.
void publish_to_stream(const graph::Graph& g,
                       const RandomProjectionPublisher::Options& options,
                       std::ostream& out);

}  // namespace sgp::core
