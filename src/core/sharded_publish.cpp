#include "core/sharded_publish.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "core/projection.hpp"
#include "core/serialization.hpp"
#include "core/theory.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "random/counter_rng.hpp"
#include "random/counter_rng_simd.hpp"
#include "random/kernel_variant.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/durable.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"
#include "util/retry.hpp"
#include "util/thread_pool.hpp"

namespace sgp::core {
namespace {

constexpr char kCheckpointMagic[] = "sgp-shard-checkpoint v1";

std::string with_crc(const std::string& body) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", util::crc32(body));
  return body + " crc " + crc_hex;
}

std::string shard_line(std::size_t shard, std::size_t row_begin,
                       std::size_t row_end, std::uint64_t bytes) {
  std::ostringstream out;
  out << "shard " << shard << " rows " << row_begin << " " << row_end
      << " bytes " << bytes;
  return with_crc(out.str());
}

/// Number of shards proven complete by `ckpt_path`, given the expected
/// line-for-line content of a checkpoint for this exact run. Every record is
/// deterministic, so validation is exact string comparison — a torn tail,
/// a bit flip (CRC mismatch) or a config drift all compare unequal and stop
/// the scan at the last trustworthy shard. Returns 0 when nothing usable.
std::size_t completed_shards_in(const std::string& ckpt_path,
                                const std::string& config,
                                const ShardPlan& plan,
                                std::uint64_t header_bytes, std::size_t m) {
  std::ifstream in(ckpt_path, std::ios::binary);
  if (!in.good()) return 0;
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointMagic) return 0;
  if (!std::getline(in, line) || line != config) return 0;
  std::size_t completed = 0;
  while (completed < plan.num_shards() && std::getline(in, line)) {
    const auto [r0, r1] = plan.shard_range(completed);
    const std::uint64_t bytes =
        header_bytes + static_cast<std::uint64_t>(r1) * m * sizeof(double);
    if (line != shard_line(completed, r0, r1, bytes)) break;
    ++completed;
  }
  return completed;
}

}  // namespace

std::string shard_config_line(const ShardedPublishOptions& options,
                              std::size_t num_nodes,
                              std::size_t projection_dim,
                              const NoiseCalibration& calibration,
                              const ShardPlan& plan) {
  std::ostringstream out;
  out.precision(17);
  out << "config nodes " << num_nodes << " dim " << projection_dim
      << " shard_rows " << plan.shard_rows << " seed "
      << options.publish.seed << " epsilon "
      << options.publish.params.epsilon << " delta "
      << options.publish.params.delta << " sigma " << calibration.sigma
      << " sensitivity " << calibration.sensitivity << " projection "
      << to_string(options.publish.projection) << " rng "
      << to_string(projection_rng_for(
             options.publish.projection,
             random::resolve_normal_kernel(options.publish.kernel)));
  return with_crc(out.str());
}

void compute_shard_tile(const graph::ShardRows& shard, std::size_t row_begin,
                        std::size_t row_end,
                        const RandomProjectionPublisher::Options& publish,
                        const NoiseCalibration& calibration,
                        util::ThreadPool& pool, std::vector<double>& tile) {
  const std::size_t m = publish.projection_dim;
  const random::CounterRng p_rng = projection_counter_rng(publish.seed);
  const random::CounterRng noise = noise_counter_rng(publish.seed);
  const random::KernelVariant kernel =
      random::resolve_normal_kernel(publish.kernel);
  tile.assign((row_end - row_begin) * m, 0.0);

  // Row i of the release, computed exactly as publish_to_stream computes
  // it: neighbors ascending, then σ-scaled counter noise — both pure
  // functions of (seed, counter, kernel mapping), so threads and shard
  // boundaries cannot change a single bit.
  util::parallel_for(
      pool, row_begin, row_end,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> prow(m);
        std::vector<double> draws(m);
        for (std::size_t i = lo; i < hi; ++i) {
          double* row = tile.data() + (i - row_begin) * m;
          for (std::uint32_t j : shard.neighbors(i)) {
            fill_projection_tile(p_rng, m, publish.projection, j, j + 1, 0, m,
                                 prow.data(), kernel);
            for (std::size_t c = 0; c < m; ++c) row[c] += prow[c];
          }
          const std::uint64_t base = static_cast<std::uint64_t>(i) * m;
          random::normal_batch(noise, base, m, draws.data(), kernel);
          for (std::size_t c = 0; c < m; ++c) {
            row[c] += calibration.sigma * draws[c];
          }
        }
      },
      /*grain=*/16);
  // Counted here — the one code path every publish mode (streaming aside)
  // funnels through — so single-process and distributed runs report the
  // same publish.cells total for the same release.
  static obs::Counter& cells = obs::counter(obs::names::kPublishCells);
  cells.add((row_end - row_begin) * m);
}

ShardPlan plan_shards(std::size_t num_rows, std::size_t shard_rows) {
  ShardPlan plan;
  plan.num_rows = num_rows;
  plan.shard_rows =
      shard_rows == 0 ? std::max<std::size_t>(num_rows, 1) : shard_rows;
  return plan;
}

std::size_t shard_rows_for_memory(std::size_t max_memory_mb,
                                  std::size_t projection_dim) {
  util::require(projection_dim >= 1,
                "shard_rows_for_memory: projection_dim must be >= 1");
  const std::size_t tile_budget = max_memory_mb * (1ULL << 20) / 2;
  return std::max<std::size_t>(1, tile_budget / (projection_dim * sizeof(double)));
}

ShardedPublishResult publish_sharded(const graph::EdgeListShardReader& reader,
                                     const ShardedPublishOptions& options,
                                     const std::string& out_path) {
  const std::size_t n = reader.num_nodes();
  const std::size_t m = options.publish.projection_dim;
  util::require(n >= 1, "publish_sharded: graph must have nodes");
  util::require(m >= 1 && m <= n,
                "publish_sharded: projection_dim must be in [1, n]");
  options.publish.params.validate();

  const ShardPlan plan = plan_shards(n, options.shard_rows);
  const NoiseCalibration calibration = calibrate_noise(
      m, options.publish.params, options.publish.analytic_calibration,
      options.publish.delta_split);

  obs::ScopedTimer timer(obs::names::kPublishSharded);
  timer.attr("n", n).attr("m", m).attr("shards", plan.num_shards());
  obs::gauge(obs::names::kPublishShardRows)
      .set(static_cast<double>(plan.shard_rows));
  obs::gauge(obs::names::kPublishSigma).set(calibration.sigma);
  obs::gauge(obs::names::kGraphNodes).set(static_cast<double>(n));

  // Header bytes are needed for checkpoint offsets before anything is
  // written; rendering through the shared encoder keeps them exact.
  std::ostringstream header;
  write_published_header(header, n, m, options.publish.params, calibration,
                         options.publish.projection,
                         projection_rng_for(
                             options.publish.projection,
                             random::resolve_normal_kernel(options.publish.kernel)));
  const std::string header_bytes = header.str();

  const std::string ckpt_path = out_path + ".ckpt";
  const std::string config =
      shard_config_line(options, n, m, calibration, plan);

  std::size_t completed = 0;
  if (options.resume) {
    completed = completed_shards_in(ckpt_path, config, plan,
                                    header_bytes.size(), m);
    if (completed > 0) {
      // The release file must still hold every byte the checkpoint vouches
      // for; anything shorter means it was replaced or truncated → restart.
      const auto [r0, r1] = plan.shard_range(completed - 1);
      const std::uint64_t bytes =
          header_bytes.size() +
          static_cast<std::uint64_t>(r1) * m * sizeof(double);
      std::error_code ec;
      const auto size = std::filesystem::file_size(out_path, ec);
      if (ec || size < bytes) {
        completed = 0;
      } else {
        std::filesystem::resize_file(out_path, bytes, ec);
        if (ec) {
          throw util::IoError("publish_sharded: cannot truncate " + out_path +
                              " to the last complete shard: " + ec.message());
        }
      }
    }
  }
  if (completed > 0) {
    obs::counter(obs::names::kPublishShardsResumed).add(completed);
  }

  std::ofstream out;
  if (completed > 0) {
    out.open(out_path, std::ios::binary | std::ios::app);
  } else {
    out.open(out_path, std::ios::binary | std::ios::trunc);
  }
  if (!out.good()) {
    throw util::IoError("publish_sharded: cannot open " + out_path);
  }
  if (completed == 0) {
    out.write(header_bytes.data(),
              static_cast<std::streamsize>(header_bytes.size()));
  }

  // The checkpoint log is rewritten up to the resume point (dropping any
  // torn tail), then appended to shard by shard. Records are appended only
  // after the shard's payload bytes are down, and each append fsyncs
  // (util::DurableAppender) — a machine crash can therefore never leave a
  // record the resume path trusts while the payload bytes it vouches for
  // were still in the page cache.
  util::DurableAppender ckpt;
  try {
    ckpt.open(ckpt_path, /*truncate=*/true);
    std::string prefix = std::string(kCheckpointMagic) + '\n' + config + '\n';
    for (std::size_t s = 0; s < completed; ++s) {
      const auto [r0, r1] = plan.shard_range(s);
      const std::uint64_t bytes =
          header_bytes.size() +
          static_cast<std::uint64_t>(r1) * m * sizeof(double);
      prefix += shard_line(s, r0, r1, bytes) + '\n';
    }
    ckpt.append(prefix);
  } catch (const util::IoError& e) {
    throw util::IoError("publish_sharded: checkpoint write failed: " +
                        std::string(e.what()));
  }

  std::optional<util::ThreadPool> local_pool;
  if (options.threads > 0) local_pool.emplace(options.threads);
  util::ThreadPool& pool =
      local_pool ? *local_pool : util::global_pool();

  static obs::Counter& shards_done = obs::counter(obs::names::kPublishShards);

  std::vector<double> tile;
  for (std::size_t s = completed; s < plan.num_shards(); ++s) {
    const auto [r0, r1] = plan.shard_range(s);
    obs::ScopedTimer shard_timer(obs::names::kPublishShard);
    shard_timer.attr("shard", s).attr("rows", r1 - r0);

    // Loading a shard is idempotent (a fresh pass over the edge list), so
    // a transient read failure — the io.shard.read fault point — is safely
    // retried under the configured policy.
    const graph::ShardRows shard = util::retry_with_backoff(
        options.io_retry, "shard load",
        [&] { return reader.load_shard(r0, r1); });
    compute_shard_tile(shard, r0, r1, options.publish, calibration, pool,
                       tile);

    util::fault_point(util::fault_points::kIoShardWrite);
    write_published_doubles(out, tile);
    out.flush();
    if (!out.good()) {
      throw util::IoError("publish_sharded: write failed on shard " +
                          std::to_string(s) + " of " + out_path);
    }

    util::fault_point(util::fault_points::kIoShardCheckpoint);
    const std::uint64_t bytes =
        header_bytes.size() + static_cast<std::uint64_t>(r1) * m * sizeof(double);
    ckpt.append_line(shard_line(s, r0, r1, bytes));
    shards_done.add();
  }

  out.close();
  if (!out.good()) {
    throw util::IoError("publish_sharded: close failed on " + out_path);
  }
  ckpt.close();
  // Publication is complete; the checkpoint has nothing left to vouch for.
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);

  ShardedPublishResult result;
  result.num_nodes = n;
  result.shards_total = plan.num_shards();
  result.shards_resumed = completed;
  result.calibration = calibration;
  return result;
}

}  // namespace sgp::core
