#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "cluster/louvain.hpp"
#include "cluster/metrics.hpp"
#include "core/serialization.hpp"
#include "dp/defaults.hpp"
#include "graph/metrics.hpp"
#include "random/rng.hpp"
#include "ranking/metrics.hpp"
#include "util/check.hpp"

namespace sgp::core::scenario {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string format_epsilon(double epsilon) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", epsilon);
  return buf;
}

/// Truth labels of a scenario graph: the planted communities when the
/// generator provides them, otherwise the Louvain partition of the original
/// graph (the best non-private reference available).
std::vector<std::uint32_t> truth_labels(const graph::PlantedGraph& original,
                                        std::uint64_t seed) {
  if (!original.labels.empty()) return original.labels;
  cluster::LouvainOptions lopt;
  lopt.seed = seed;
  return cluster::louvain_cluster(original.graph, lopt).assignments;
}

std::size_t count_labels(const std::vector<std::uint32_t>& labels) {
  std::size_t k = 0;
  for (std::uint32_t c : labels) k = std::max<std::size_t>(k, c + 1);
  return k;
}

/// The partition an analyst recovers from a release: spectral clustering of
/// the published matrix, or Louvain on the synthetic graph.
std::vector<std::uint32_t> predicted_partition(
    const MechanismRelease& release, const graph::PlantedGraph& original,
    std::uint64_t seed) {
  if (release.matrix.has_value()) {
    const std::size_t k = std::max<std::size_t>(
        2, std::min(count_labels(truth_labels(original, seed)),
                    release.matrix->projection_dim));
    return cluster_published(*release.matrix, k, seed).assignments;
  }
  cluster::LouvainOptions lopt;
  lopt.seed = seed;
  return cluster::louvain_cluster(*release.synthetic, lopt).assignments;
}

/// Per-node degree estimates of a release (exact degrees for synthetic
/// graphs, debiased row-norm estimates for matrix releases).
std::vector<double> degree_estimates(const MechanismRelease& release) {
  if (release.matrix.has_value()) return degree_scores(*release.matrix);
  std::vector<double> degrees(release.synthetic->num_nodes(), 0.0);
  for (std::size_t u = 0; u < degrees.size(); ++u) {
    degrees[u] = static_cast<double>(release.synthetic->degree(u));
  }
  return degrees;
}

std::vector<double> exact_degrees(const graph::Graph& g) {
  std::vector<double> degrees(g.num_nodes(), 0.0);
  for (std::size_t u = 0; u < degrees.size(); ++u) {
    degrees[u] = static_cast<double>(g.degree(u));
  }
  return degrees;
}

/// 1 − total-variation distance between the binned degree distributions of
/// the original graph and the estimates. Bins are sized from the original's
/// max degree so both sides share one binning.
double degree_distribution_score(const std::vector<double>& truth,
                                 const std::vector<double>& estimate) {
  double max_degree = 1.0;
  for (double d : truth) max_degree = std::max(max_degree, d);
  const double bin_width = std::max(1.0, max_degree / 16.0);
  const auto bins = static_cast<std::size_t>(max_degree / bin_width) + 2;
  std::vector<double> p(bins, 0.0), q(bins, 0.0);
  const auto bin_of = [&](double d) {
    const double clamped = std::clamp(d, 0.0, max_degree + bin_width);
    return std::min(bins - 1, static_cast<std::size_t>(clamped / bin_width));
  };
  for (double d : truth) p[bin_of(d)] += 1.0;
  for (double d : estimate) q[bin_of(d)] += 1.0;
  double tv = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    tv += std::abs(p[b] / static_cast<double>(truth.size()) -
                   q[b] / static_cast<double>(estimate.size()));
  }
  return 1.0 - 0.5 * tv;
}

/// 1 − conductance of the largest community of `labels` on the original
/// graph. A partition that merges everything scores 0 (no structure found).
double conductance_score(const graph::Graph& g,
                         const std::vector<std::uint32_t>& labels) {
  const std::size_t k = count_labels(labels);
  std::vector<std::size_t> sizes(k, 0);
  for (std::uint32_t c : labels) ++sizes[c];
  const std::size_t largest = static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  if (sizes[largest] == 0 || sizes[largest] >= g.num_nodes()) return 0.0;
  std::vector<bool> in_set(g.num_nodes(), false);
  for (std::size_t u = 0; u < labels.size(); ++u) {
    in_set[u] = labels[u] == static_cast<std::uint32_t>(largest);
  }
  const double phi = graph::conductance(g, in_set);
  return 1.0 - std::clamp(phi, 0.0, 1.0);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t cell_seed(std::uint64_t base_seed, std::string_view label) {
  return splitmix64(base_seed ^ splitmix64(fnv1a64(label)));
}

std::string join_labels(std::initializer_list<std::string_view> parts) {
  std::string label;
  for (std::string_view part : parts) {
    if (!label.empty()) label += "/";
    label += part;
  }
  return label;
}

std::string to_string(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kSbm:
      return "sbm";
    case GeneratorKind::kBa:
      return "ba";
  }
  util::require(false, "to_string: invalid GeneratorKind");
  return {};
}

const std::vector<std::string>& known_generator_names() {
  static const std::vector<std::string> names{
      to_string(GeneratorKind::kSbm), to_string(GeneratorKind::kBa)};
  return names;
}

GeneratorKind parse_generator(const std::string& name) {
  if (name == "sbm") return GeneratorKind::kSbm;
  if (name == "ba") return GeneratorKind::kBa;
  util::require(false, "unknown generator '" + name + "' (valid: sbm|ba)");
  return GeneratorKind::kSbm;
}

std::string to_string(TaskKind task) {
  switch (task) {
    case TaskKind::kCluster:
      return "cluster";
    case TaskKind::kRank:
      return "rank";
    case TaskKind::kDegree:
      return "degree";
    case TaskKind::kConductance:
      return "conductance";
  }
  util::require(false, "to_string: invalid TaskKind");
  return {};
}

const std::vector<std::string>& known_task_names() {
  static const std::vector<std::string> names{
      to_string(TaskKind::kCluster), to_string(TaskKind::kRank),
      to_string(TaskKind::kDegree), to_string(TaskKind::kConductance)};
  return names;
}

TaskKind parse_task(const std::string& name) {
  if (name == "cluster") return TaskKind::kCluster;
  if (name == "rank") return TaskKind::kRank;
  if (name == "degree") return TaskKind::kDegree;
  if (name == "conductance") return TaskKind::kConductance;
  util::require(false, "unknown task '" + name +
                           "' (valid: cluster|rank|degree|conductance)");
  return TaskKind::kCluster;
}

std::vector<ScenarioCell> standard_grid(std::uint64_t base_seed) {
  // The four axes, declared through the same primitives the PARAMETERIZE
  // macros build on.
  AxisBuilder<GeneratorKind> generators("generator");
  for (const auto& name : known_generator_names()) {
    generators.add(name, parse_generator(name));
  }
  AxisBuilder<MechanismKind> mechanisms("mechanism");
  for (const auto& name : known_mechanism_names()) {
    mechanisms.add(name, parse_mechanism(name));
  }
  AxisBuilder<double> epsilons("epsilon");
  for (double epsilon : dp::kScenarioEpsilons) {
    epsilons.add(format_epsilon(epsilon), epsilon);
  }
  AxisBuilder<TaskKind> tasks("task");
  for (const auto& name : known_task_names()) {
    tasks.add(name, parse_task(name));
  }
  const Axis<GeneratorKind> generator_axis = generators.build();
  const Axis<MechanismKind> mechanism_axis = mechanisms.build();
  const Axis<double> epsilon_axis = epsilons.build();
  const Axis<TaskKind> task_axis = tasks.build();

  std::vector<ScenarioCell> grid;
  grid.reserve(generator_axis.size() * mechanism_axis.size() *
               epsilon_axis.size() * task_axis.size());
  for (const auto& g : generator_axis.options) {
    for (const auto& m : mechanism_axis.options) {
      for (const auto& epsilon_option : epsilon_axis.options) {
        for (const auto& t : task_axis.options) {
          ScenarioCell cell;
          cell.generator = g.value;
          cell.mechanism = m.value;
          cell.budget.epsilon = epsilon_option.value;
          cell.budget.delta = dp::kScenarioDelta;
          cell.task = t.value;
          cell.label = join_labels({"generator=" + g.label,
                                    "mechanism=" + m.label,
                                    "epsilon=" + epsilon_option.label,
                                    "task=" + t.label});
          cell.seed = cell_seed(base_seed, cell.label);
          cell.index = grid.size();
          grid.push_back(std::move(cell));
        }
      }
    }
  }
  return grid;
}

graph::PlantedGraph make_scenario_graph(GeneratorKind kind,
                                        std::uint64_t seed,
                                        std::size_t num_nodes) {
  util::require(num_nodes >= 16, "scenario graph: too few nodes");
  random::Rng rng(seed);
  switch (kind) {
    case GeneratorKind::kSbm: {
      const std::size_t quarter = num_nodes / 4;
      const std::vector<std::size_t> sizes{quarter, quarter, quarter,
                                           num_nodes - 3 * quarter};
      // Dense enough that the planted blocks sit above the partition-phase
      // noise at the grid's upper ε points — the cluster task then separates
      // mechanisms instead of scoring ~0 everywhere.
      return graph::stochastic_block_model(sizes, 0.25, 0.025, rng);
    }
    case GeneratorKind::kBa: {
      graph::PlantedGraph planted;
      planted.graph = graph::barabasi_albert(num_nodes, 4, rng);
      return planted;
    }
  }
  util::require(false, "make_scenario_graph: invalid GeneratorKind");
  return {};
}

MechanismOptions cell_options(const ScenarioCell& cell) {
  MechanismOptions options;
  options.params = cell.budget;
  options.seed = cell.seed;
  return options;
}

double run_task(const MechanismRelease& release, TaskKind task,
                const graph::PlantedGraph& original, std::uint64_t seed) {
  util::require(release.validate(), "run_task: release failed validation");
  switch (task) {
    case TaskKind::kCluster:
      return cluster::normalized_mutual_information(
          predicted_partition(release, original, seed),
          truth_labels(original, seed));
    case TaskKind::kRank:
      return ranking::top_k_overlap(
          exact_degrees(original.graph), degree_estimates(release),
          std::max<std::size_t>(1, original.graph.num_nodes() / 10));
    case TaskKind::kDegree:
      return degree_distribution_score(exact_degrees(original.graph),
                                       degree_estimates(release));
    case TaskKind::kConductance:
      return conductance_score(original.graph,
                               predicted_partition(release, original, seed));
  }
  util::require(false, "run_task: invalid TaskKind");
  return 0.0;
}

double reference_score(TaskKind task, const graph::PlantedGraph& original,
                       std::uint64_t seed) {
  switch (task) {
    case TaskKind::kCluster: {
      cluster::LouvainOptions lopt;
      lopt.seed = seed;
      return cluster::normalized_mutual_information(
          cluster::louvain_cluster(original.graph, lopt).assignments,
          truth_labels(original, seed));
    }
    case TaskKind::kRank:
      return 1.0;  // exact degrees rank themselves perfectly
    case TaskKind::kDegree:
      return 1.0;  // identical distributions, zero TV distance
    case TaskKind::kConductance: {
      cluster::LouvainOptions lopt;
      lopt.seed = seed;
      return conductance_score(
          original.graph,
          cluster::louvain_cluster(original.graph, lopt).assignments);
    }
  }
  util::require(false, "reference_score: invalid TaskKind");
  return 0.0;
}

std::string release_fingerprint(const MechanismRelease& release) {
  std::ostringstream out;
  if (release.matrix.has_value()) {
    save_published(*release.matrix, out);
    return out.str();
  }
  out << "synthetic n=" << release.synthetic->num_nodes()
      << " k=" << release.num_communities << "\n";
  for (const auto& e : release.synthetic->edges()) {
    out << e.u << "," << e.v << ";";
  }
  return out.str();
}

}  // namespace sgp::core::scenario
