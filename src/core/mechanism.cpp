#include "core/mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "cluster/kmeans.hpp"
#include "core/theory.hpp"
#include "dp/budget.hpp"
#include "dp/mechanisms.hpp"
#include "graph/graph.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/eigen_sym.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "random/counter_rng.hpp"
#include "util/check.hpp"

namespace sgp::core {
namespace {

// Counter-RNG stream ids of a community release, all derived from
// options.seed. Stream 0/1 are reserved by the projection publisher
// (core/projection.hpp), so community streams start well above.
constexpr std::uint64_t kPartitionStream = 0x100;
constexpr std::uint64_t kCountsStream = 0x101;
constexpr std::uint64_t kResampleStreamBase = 0x1000;

// Upper bound on the spectral-gap community count estimate: caps both the
// k-means cost and the k² block profile of a degenerate partition.
constexpr std::size_t kMaxCommunities = 16;

/// Node lists per community, from a dense assignment vector.
std::vector<std::vector<std::uint32_t>> community_members(
    const std::vector<std::uint32_t>& assignments, std::size_t k) {
  std::vector<std::vector<std::uint32_t>> members(k);
  for (std::size_t u = 0; u < assignments.size(); ++u) {
    members[assignments[u]].push_back(static_cast<std::uint32_t>(u));
  }
  return members;
}

/// Exact edge counts between (and within) communities of `g`. Block (c, d)
/// with c <= d is stored at index c*k + d.
std::vector<double> block_edge_counts(const graph::Graph& g,
                                      const std::vector<std::uint32_t>& labels,
                                      std::size_t k) {
  std::vector<double> counts(k * k, 0.0);
  for (const auto& e : g.edges()) {
    std::uint32_t c = labels[e.u];
    std::uint32_t d = labels[e.v];
    if (c > d) std::swap(c, d);
    counts[c * k + d] += 1.0;
  }
  return counts;
}

std::size_t block_capacity(const std::vector<std::vector<std::uint32_t>>& m,
                           std::size_t c, std::size_t d) {
  if (c == d) return m[c].size() * (m[c].size() - 1) / 2;
  return m[c].size() * m[d].size();
}

/// Samples `target` distinct node pairs from block (c, d) via the keyed
/// counter stream of that block — deterministic in (seed, c, d), independent
/// of every other block. Attempts are capped so near-full blocks terminate;
/// a shortfall of a few edges is within the mechanism's noise tolerance.
void sample_block_edges(const std::vector<std::vector<std::uint32_t>>& members,
                        std::size_t c, std::size_t d, std::size_t target,
                        std::uint64_t seed, std::size_t k,
                        std::vector<graph::Edge>& out) {
  const auto& mc = members[c];
  const auto& md = members[d];
  if (target == 0 || mc.empty() || md.empty()) return;
  const random::CounterRng rng(seed, kResampleStreamBase + c * k + d);
  std::set<std::pair<std::uint32_t, std::uint32_t>> chosen;
  const std::size_t max_attempts = 24 * target + 256;
  for (std::uint64_t w = 0; w < max_attempts && chosen.size() < target; ++w) {
    std::uint32_t u = mc[rng.bits(2 * w) % mc.size()];
    std::uint32_t v = md[rng.bits(2 * w + 1) % md.size()];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  }
  for (const auto& [u, v] : chosen) out.push_back({u, v});
}

/// Resamples a synthetic graph on `n` nodes from a noisy community
/// edge-count profile.
graph::Graph resample_from_profile(
    std::size_t n, const std::vector<std::vector<std::uint32_t>>& members,
    const std::vector<double>& noisy_counts, std::uint64_t seed) {
  const std::size_t k = members.size();
  std::vector<graph::Edge> edges;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = c; d < k; ++d) {
      const double noisy = noisy_counts[c * k + d];
      const auto capacity = static_cast<double>(block_capacity(members, c, d));
      const double clamped = std::clamp(std::round(noisy), 0.0, capacity);
      sample_block_edges(members, c, d, static_cast<std::size_t>(clamped),
                         seed, k, edges);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return graph::Graph::from_edges(n, edges);
}

/// Deterministic degree cap: walk the canonical sorted edge list and keep an
/// edge only while both endpoints still have capacity. This is the standard
/// node-DP projection that bounds per-node sensitivity at `max_degree`.
graph::Graph clamp_degrees(const graph::Graph& g, std::size_t max_degree) {
  std::vector<std::size_t> degree(g.num_nodes(), 0);
  std::vector<graph::Edge> kept;
  for (const auto& e : g.edges()) {
    if (degree[e.u] < max_degree && degree[e.v] < max_degree) {
      ++degree[e.u];
      ++degree[e.v];
      kept.push_back(e);
    }
  }
  return graph::Graph::from_edges(g.num_nodes(), kept);
}

/// A community assignment produced by the private partition phase.
struct Partition {
  std::vector<std::uint32_t> labels;
  std::size_t num_communities = 0;
};

/// Renumbers labels to a dense 0..k-1 range, first-seen order.
std::size_t compact_partition(std::vector<std::uint32_t>& labels) {
  std::map<std::uint32_t, std::uint32_t> remap;
  for (std::uint32_t& l : labels) {
    const auto [it, inserted] =
        remap.emplace(l, static_cast<std::uint32_t>(remap.size()));
    l = it->second;
  }
  return remap.size();
}

/// The ε₁-DP partition phase: release the Laplace-perturbed signed dense
/// adjacency W = A + Lap(scale)^{n×n} — one edge change moves one entry by
/// the sensitivity, so releasing all entries at `scale = sensitivity/ε₁` is
/// ε₁-DP — then recover communities from W by pure post-processing:
/// symmetric eigendecomposition, largest-spectral-gap estimate of the
/// community count, and k-means on the top-k eigenvector embedding.
///
/// The spectral route matters: Louvain on W chases individual noise spikes
/// at the singleton level (noise enters each modularity gain un-averaged),
/// while eigenvectors aggregate every entry, so the planted structure
/// survives noise that is several times the per-entry signal. The dense
/// eigensolve is O(n³) — community mechanisms target the modest graph sizes
/// of the evaluation grid, not million-node releases.
Partition noisy_partition(const graph::Graph& g, double sensitivity,
                          const dp::PrivacyParams& budget,
                          const MechanismOptions& options) {
  const std::size_t n = g.num_nodes();
  Partition result;
  result.labels.assign(n, 0);
  result.num_communities = n == 0 ? 0 : 1;
  if (n < 4) return result;

  const double scale = dp::laplace_scale(sensitivity, budget.epsilon);
  const random::CounterRng noise(options.seed, kPartitionStream);
  linalg::DenseMatrix w(n, n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double x =
          (g.has_edge(static_cast<std::uint32_t>(u),
                      static_cast<std::uint32_t>(v))
               ? 1.0
               : 0.0) +
          dp::laplace_noise_at(noise, static_cast<std::uint64_t>(u) * n + v,
                               scale);
      w(u, v) = x;
      w(v, u) = x;
    }
  }

  const linalg::EigenResult eig = linalg::jacobi_eigen(w);

  // Largest gap between consecutive top eigenvalues picks k: signal
  // eigenvalues sit above the noise bulk, and the drop into the bulk is the
  // widest gap. Candidates are capped so a gapless spectrum (no recoverable
  // structure) degrades to a coarse 2-way split instead of shattering.
  const std::size_t kmax = std::min<std::size_t>(kMaxCommunities, n - 1);
  std::size_t k = 2;
  double best_gap = -1.0;
  for (std::size_t i = 2; i <= kmax; ++i) {
    const double gap = eig.values[i - 1] - eig.values[i];
    if (gap > best_gap) {
      best_gap = gap;
      k = i;
    }
  }

  linalg::DenseMatrix embedding(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) embedding(i, j) = eig.vectors(i, j);
  }
  cluster::KMeansOptions kopt;
  kopt.k = k;
  kopt.seed = options.seed;
  const cluster::KMeansResult km = cluster::kmeans(embedding, kopt);
  result.labels = km.assignments;
  result.num_communities = compact_partition(result.labels);
  return result;
}

/// Shared build path of the two community mechanisms: grouped noisy-
/// supergraph partition → Laplace-noised block counts → resample. `source`
/// is the (possibly degree-capped) graph whose structure is released;
/// `sensitivity` the per-count ℓ1-sensitivity; `partition_budget` the ε₁
/// slice funding the partition phase; `count_scale` the Laplace scale of
/// the counts phase.
MechanismRelease build_community_release(
    const graph::Graph& source, double sensitivity,
    const dp::PrivacyParams& partition_budget, double count_scale,
    const MechanismOptions& options) {
  Partition partition;
  {
    obs::ScopedTimer timer(obs::names::kMechanismPartition);
    partition = noisy_partition(source, sensitivity, partition_budget, options);
  }
  const std::size_t k = partition.num_communities;
  const auto members = community_members(partition.labels, k);

  std::vector<double> counts;
  {
    obs::ScopedTimer timer(obs::names::kMechanismPerturb);
    counts = block_edge_counts(source, partition.labels, k);
    const random::CounterRng noise(options.seed, kCountsStream);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t d = c; d < k; ++d) {
        counts[c * k + d] +=
            dp::laplace_noise_at(noise, c * k + d, count_scale);
      }
    }
  }

  MechanismRelease release;
  release.num_nodes = source.num_nodes();
  release.num_communities = k;
  {
    obs::ScopedTimer timer(obs::names::kMechanismResample);
    release.synthetic = resample_from_profile(source.num_nodes(), members,
                                              counts, options.seed);
  }
  obs::gauge(obs::names::kMechanismCommunities).set(static_cast<double>(k));
  obs::counter(obs::names::kMechanismSyntheticEdges)
      .add(release.synthetic->num_edges());
  return release;
}

/// Shared RDP accounting of the community mechanisms: two Laplace releases —
/// the partition's noisy adjacency at λ/Δ = 1/ε₁, the block-count profile at
/// σ/Δ = 1/ε₂. The pure-DP bound of the composition is exactly ε₁ + ε₂ = ε.
void account_community(const MechanismOptions& options, double sensitivity,
                       double counts_sigma, dp::RdpAccountant& accountant) {
  const dp::BudgetSplit split =
      dp::split_budget(options.params, options.partition_share);
  accountant.record_laplace(
      dp::laplace_scale(sensitivity, split.partition.epsilon) / sensitivity);
  accountant.record_laplace(counts_sigma / sensitivity);
}

class ProjectionMechanism final : public Mechanism {
 public:
  [[nodiscard]] MechanismKind kind() const override {
    return MechanismKind::kProjection;
  }

 protected:
  [[nodiscard]] BudgetLedger::Record charge(
      const MechanismOptions& options) const override {
    const NoiseCalibration calibration =
        calibrate_noise(options.projection_dim, options.params);
    BudgetLedger::Record record;
    record.epsilon = options.params.epsilon;
    record.delta = options.params.delta;
    record.sigma = calibration.sigma;
    record.sensitivity = calibration.sensitivity;
    return record;
  }

  void account(const MechanismOptions& options,
               dp::RdpAccountant& accountant) const override {
    const BudgetLedger::Record record = charge(options);
    accountant.record_gaussian(record.sigma / record.sensitivity);
  }

  [[nodiscard]] MechanismRelease build(
      const graph::Graph& g, const MechanismOptions& options) const override {
    RandomProjectionPublisher::Options popt;
    popt.projection_dim = options.projection_dim;
    popt.params = options.params;
    popt.seed = options.seed;
    const RandomProjectionPublisher publisher(popt);
    MechanismRelease release;
    release.num_nodes = g.num_nodes();
    release.matrix = publisher.publish(g);
    return release;
  }
};

class PrivGraphMechanism final : public Mechanism {
 public:
  [[nodiscard]] MechanismKind kind() const override {
    return MechanismKind::kPrivGraph;
  }

 protected:
  [[nodiscard]] BudgetLedger::Record charge(
      const MechanismOptions& options) const override {
    const dp::BudgetSplit split =
        dp::split_budget(options.params, options.partition_share);
    BudgetLedger::Record record;
    record.epsilon = options.params.epsilon;
    record.delta = options.params.delta;
    // One edge moves exactly one block count by 1: ℓ1-sensitivity 1.
    record.sensitivity = 1.0;
    record.sigma = dp::laplace_scale(record.sensitivity, split.counts.epsilon);
    return record;
  }

  void account(const MechanismOptions& options,
               dp::RdpAccountant& accountant) const override {
    const BudgetLedger::Record record = charge(options);
    account_community(options, record.sensitivity, record.sigma, accountant);
  }

  [[nodiscard]] MechanismRelease build(
      const graph::Graph& g, const MechanismOptions& options) const override {
    const dp::BudgetSplit split =
        dp::split_budget(options.params, options.partition_share);
    const BudgetLedger::Record record = charge(options);
    return build_community_release(g, record.sensitivity, split.partition,
                                   record.sigma, options);
  }
};

class NodeCommunityMechanism final : public Mechanism {
 public:
  [[nodiscard]] MechanismKind kind() const override {
    return MechanismKind::kNodeCommunity;
  }

 protected:
  [[nodiscard]] BudgetLedger::Record charge(
      const MechanismOptions& options) const override {
    util::require(options.max_degree > 0,
                  "node-community: max_degree must be > 0");
    const dp::BudgetSplit split =
        dp::split_budget(options.params, options.partition_share);
    BudgetLedger::Record record;
    record.epsilon = options.params.epsilon;
    record.delta = options.params.delta;
    // Adding or removing one node rewrites at most max_degree edges of the
    // capped graph, each moving one block count by 1: ℓ1-sensitivity D.
    record.sensitivity = static_cast<double>(options.max_degree);
    record.sigma = dp::laplace_scale(record.sensitivity, split.counts.epsilon);
    return record;
  }

  void account(const MechanismOptions& options,
               dp::RdpAccountant& accountant) const override {
    const BudgetLedger::Record record = charge(options);
    account_community(options, record.sensitivity, record.sigma, accountant);
  }

  [[nodiscard]] MechanismRelease build(
      const graph::Graph& g, const MechanismOptions& options) const override {
    const dp::BudgetSplit split =
        dp::split_budget(options.params, options.partition_share);
    const BudgetLedger::Record record = charge(options);
    // On the D-capped graph one node rewrites at most max_degree edges, so
    // every released count carries the full ℓ1-sensitivity D.
    const graph::Graph capped = clamp_degrees(g, options.max_degree);
    MechanismRelease release = build_community_release(
        capped, record.sensitivity, split.partition, record.sigma, options);
    release.num_nodes = g.num_nodes();
    return release;
  }
};

}  // namespace

std::string to_string(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kProjection:
      return "projection";
    case MechanismKind::kPrivGraph:
      return "privgraph";
    case MechanismKind::kNodeCommunity:
      return "node-community";
  }
  util::require(false, "to_string: invalid MechanismKind");
  return {};
}

const std::vector<std::string>& known_mechanism_names() {
  static const std::vector<std::string> names{
      to_string(MechanismKind::kProjection),
      to_string(MechanismKind::kPrivGraph),
      to_string(MechanismKind::kNodeCommunity)};
  return names;
}

MechanismKind parse_mechanism(const std::string& name) {
  if (name == "projection") return MechanismKind::kProjection;
  if (name == "privgraph") return MechanismKind::kPrivGraph;
  if (name == "node-community") return MechanismKind::kNodeCommunity;
  std::string valid;
  for (const auto& n : known_mechanism_names()) {
    if (!valid.empty()) valid += "|";
    valid += n;
  }
  util::require(false, "unknown mechanism '" + name + "' (valid: " + valid +
                           ")");
  return MechanismKind::kProjection;
}

bool MechanismRelease::validate() const {
  if (matrix.has_value() == synthetic.has_value()) return false;
  if (charged.epsilon <= 0.0 || charged.delta < 0.0 || charged.delta >= 1.0) {
    return false;
  }
  if (matrix.has_value()) {
    if (matrix->num_nodes != num_nodes) return false;
    if (matrix->data.rows() != num_nodes) return false;
  }
  if (synthetic.has_value()) {
    if (synthetic->num_nodes() != num_nodes) return false;
    if (num_communities == 0) return false;
  }
  return true;
}

MechanismRelease Mechanism::publish(const graph::Graph& g,
                                    const MechanismOptions& options) const {
  options.params.validate();
  obs::ScopedTimer timer(obs::names::kMechanismPublish);

  // Write-ahead: the budget is durably recorded before any artifact exists,
  // the same discipline as the session layer (docs/robustness.md).
  BudgetLedger::Record record = charge(options);
  if (options.ledger != nullptr) {
    record.index = options.ledger->size() + 1;
    options.ledger->append(record);
  }
  if (options.accountant != nullptr) {
    account(options, *options.accountant);
  }

  MechanismRelease release = build(g, options);
  release.kind = kind();
  release.charged = options.params;
  obs::counter(obs::names::kMechanismReleases).add();
  return release;
}

std::unique_ptr<Mechanism> make_mechanism(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kProjection:
      return std::make_unique<ProjectionMechanism>();
    case MechanismKind::kPrivGraph:
      return std::make_unique<PrivGraphMechanism>();
    case MechanismKind::kNodeCommunity:
      return std::make_unique<NodeCommunityMechanism>();
  }
  util::require(false, "make_mechanism: invalid MechanismKind");
  return nullptr;
}

std::unique_ptr<Mechanism> make_mechanism(const std::string& name) {
  return make_mechanism(parse_mechanism(name));
}

}  // namespace sgp::core
