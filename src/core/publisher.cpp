#include "core/publisher.hpp"

#include "cluster/spectral.hpp"
#include "dp/mechanisms.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "random/rng.hpp"
#include "ranking/centrality.hpp"
#include "util/check.hpp"

namespace sgp::core {

RandomProjectionPublisher::RandomProjectionPublisher(Options options)
    : options_(std::move(options)) {
  util::require(options_.projection_dim >= 1,
                "publisher: projection_dim must be >= 1");
  options_.params.validate();
}

PublishedGraph RandomProjectionPublisher::publish(const graph::Graph& g) const {
  util::require(g.num_nodes() >= 1, "publish: graph must have nodes");
  return publish_matrix(g.adjacency_matrix(), 1.0);
}

PublishedGraph RandomProjectionPublisher::publish_matrix(
    const linalg::CsrMatrix& matrix, double max_entry_change) const {
  const std::size_t n = matrix.rows();
  const std::size_t m = options_.projection_dim;
  util::require(n >= 1, "publish: matrix must be non-empty");
  util::require(matrix.cols() == n, "publish: matrix must be square");
  util::require(max_entry_change > 0.0,
                "publish: max_entry_change must be > 0");
  util::require(m <= n, "publish: projection_dim must be <= num_nodes");

  random::Rng rng(options_.seed);

  obs::Span publish_span("publish");
  publish_span.attr("n", n);
  publish_span.attr("m", m);

  // Step 1: project. A is sparse CSR, so A·P costs O(nnz·m).
  obs::ScopedTimer project_timer("publish.project");
  project_timer.attr("nnz", matrix.nnz());
  const linalg::DenseMatrix p = make_projection(n, m, options_.projection, rng);
  linalg::DenseMatrix y = matrix.multiply_dense(p);
  project_timer.stop();

  // Step 2: perturb with σ calibrated to the projected-row sensitivity
  // (scaled by the per-entry change bound — the row change is
  // ±max_entry_change·P_j).
  obs::ScopedTimer perturb_timer("publish.perturb");
  PublishedGraph out;
  out.calibration =
      calibrate_noise(m, options_.params, options_.analytic_calibration,
                      options_.delta_split);
  out.calibration.sensitivity *= max_entry_change;
  out.calibration.sigma *= max_entry_change;
  // Independent noise stream: jump past the projection stream so changing m
  // does not correlate noise across runs.
  random::Rng noise_rng = rng.split(1);
  dp::add_gaussian_noise(y.data(), out.calibration.sigma, noise_rng);
  perturb_timer.attr("sigma", out.calibration.sigma);
  perturb_timer.stop();

  static obs::Counter& releases = obs::counter("publish.releases");
  static obs::Counter& cells = obs::counter("publish.cells");
  releases.add();
  cells.add(static_cast<std::uint64_t>(n) * m);

  // Step 3: assemble the release.
  out.data = std::move(y);
  out.num_nodes = n;
  out.projection_dim = m;
  out.params = options_.params;
  out.projection = options_.projection;
  return out;
}

linalg::DenseMatrix spectral_embedding(const PublishedGraph& published,
                                       std::size_t k) {
  util::require(k >= 1 && k <= published.projection_dim,
                "spectral_embedding: k must be in [1, m]");
  obs::ScopedTimer embed_timer("publish.embed");
  embed_timer.attr("k", k);
  static obs::Counter& embeds = obs::counter("publish.embeds");
  embeds.add();
  const linalg::SvdResult svd = linalg::svd_gram(published.data, k);
  return svd.u;
}

std::vector<double> centrality_scores(const PublishedGraph& published) {
  const linalg::DenseMatrix u = spectral_embedding(published, 1);
  return ranking::centrality_from_embedding(u);
}

std::vector<double> degree_scores(const PublishedGraph& published) {
  const double bias = static_cast<double>(published.projection_dim) *
                      published.calibration.sigma * published.calibration.sigma;
  std::vector<double> scores(published.data.rows());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = linalg::norm2_squared(published.data.row(i)) - bias;
  }
  return scores;
}

cluster::KMeansResult cluster_published(const PublishedGraph& published,
                                        std::size_t k, std::uint64_t seed) {
  const linalg::DenseMatrix embedding = spectral_embedding(published, k);
  cluster::SpectralOptions opt;
  opt.num_clusters = k;
  opt.seed = seed;
  return cluster::cluster_embedding(embedding, opt);
}

}  // namespace sgp::core
