#include "core/publisher.hpp"

#include <new>

#include "cluster/spectral.hpp"
#include "dp/mechanisms.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "random/counter_rng.hpp"
#include "random/counter_rng_simd.hpp"
#include "random/rng.hpp"
#include "ranking/centrality.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"
#include "util/thread_pool.hpp"

namespace sgp::core {

std::string to_string(ProjectionRngKind kind) {
  switch (kind) {
    case ProjectionRngKind::kSequentialLegacy:
      return "sequential-v0";
    case ProjectionRngKind::kCounterV1:
      return "counter-v1";
    case ProjectionRngKind::kCounterV1Simd:
      return "counter-v1-simd";
  }
  return "unknown";
}

ProjectionRngKind parse_projection_rng(const std::string& s) {
  if (s == "sequential-v0") return ProjectionRngKind::kSequentialLegacy;
  if (s == "counter-v1") return ProjectionRngKind::kCounterV1;
  if (s == "counter-v1-simd") return ProjectionRngKind::kCounterV1Simd;
  throw util::ParseError("unknown projection_rng: " + s);
}

ProjectionRngKind projection_rng_for(ProjectionKind projection,
                                     random::KernelVariant resolved_kernel) {
  // Only gaussian releases depend on the normal mapping; achlioptas draws
  // are uniform-exact under every variant and keep the scalar tag.
  if (projection == ProjectionKind::kGaussian &&
      random::uses_polynomial_normals(resolved_kernel)) {
    return ProjectionRngKind::kCounterV1Simd;
  }
  return ProjectionRngKind::kCounterV1;
}

RandomProjectionPublisher::RandomProjectionPublisher(Options options)
    : options_(std::move(options)) {
  util::require(options_.projection_dim >= 1,
                "publisher: projection_dim must be >= 1");
  options_.params.validate();
}

PublishedGraph RandomProjectionPublisher::publish(const graph::Graph& g) const {
  util::require(g.num_nodes() >= 1, "publish: graph must have nodes");
  return publish_matrix(g.adjacency_matrix(), 1.0);
}

PublishedGraph RandomProjectionPublisher::publish_matrix(
    const linalg::CsrMatrix& matrix, double max_entry_change) const {
  const std::size_t n = matrix.rows();
  const std::size_t m = options_.projection_dim;
  util::require(n >= 1, "publish: matrix must be non-empty");
  util::require(matrix.cols() == n, "publish: matrix must be square");
  util::require(max_entry_change > 0.0,
                "publish: max_entry_change must be > 0");
  util::require(m <= n, "publish: projection_dim must be <= num_nodes");

  obs::Span publish_span(obs::names::kPublish);
  publish_span.attr("n", n);
  publish_span.attr("m", m);

  // Resolve the kernel once per publish: the resolved variant decides the
  // release tag, the observability gauge, and the noise path, and passing it
  // explicitly below keeps every tile of this release on one code path even
  // if the environment changes mid-run.
  const random::KernelVariant kernel =
      random::resolve_normal_kernel(options_.kernel);
  publish_span.attr("kernel", std::string(random::to_string(kernel)));

  // Step 1: project, fused. P is never materialized: the kernel generates
  // counter-based tiles of it on demand (P[i][j] = f(seed, i·m+j), see
  // core/projection.hpp) and accumulates Y = A·P directly, so peak memory is
  // Y plus one tile per pool thread and the generation parallelizes over
  // column blocks of Y. The fault point stands in for the Y allocation — the
  // largest of a publish now that P is virtual — and both it and a genuine
  // failure surface as the typed ResourceError.
  obs::ScopedTimer project_timer(obs::names::kPublishProject);
  project_timer.attr("nnz", matrix.nnz());
  linalg::DenseMatrix y;
  try {
    util::fault_point(util::fault_points::kAlloc);
    const random::CounterRng p_rng = projection_counter_rng(options_.seed);
    const ProjectionKind kind = options_.projection;
    y = matrix.multiply_generated(
        m,
        [&p_rng, m, kind, kernel](std::size_t r0, std::size_t r1,
                                  std::size_t c0, std::size_t c1,
                                  double* out_tile) {
          fill_projection_tile(p_rng, m, kind, r0, r1, c0, c1, out_tile,
                               kernel);
        });
  } catch (const std::bad_alloc&) {
    throw util::ResourceError("publish: out of memory allocating " +
                              std::to_string(n) + "x" + std::to_string(m) +
                              " release");
  }
  project_timer.stop();

  // Step 2: perturb with σ calibrated to the projected-row sensitivity
  // (scaled by the per-entry change bound — the row change is
  // ±max_entry_change·P_j).
  obs::ScopedTimer perturb_timer(obs::names::kPublishPerturb);
  PublishedGraph out;
  out.calibration =
      calibrate_noise(m, options_.params, options_.analytic_calibration,
                      options_.delta_split);
  out.calibration.sensitivity *= max_entry_change;
  out.calibration.sigma *= max_entry_change;
  // Independent noise stream: a separate counter stream id, so the noise is
  // uncorrelated with P for the same seed and — being counter-based — the
  // perturbation parallelizes with bit-identical results per thread count.
  {
    const random::CounterRng noise = noise_counter_rng(options_.seed);
    const double sigma = out.calibration.sigma;
    util::parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
      // One reusable batch buffer per work chunk: the kernel fills a row of
      // draws at a time, then the (exactly-ordered) axpy keeps the update
      // bit-identical to the per-entry formulation.
      std::vector<double> draws(m);
      for (std::size_t r = lo; r < hi; ++r) {
        auto row = y.row(r);
        const std::uint64_t base = static_cast<std::uint64_t>(r) * m;
        random::normal_batch(noise, base, m, draws.data(), kernel);
        for (std::size_t c = 0; c < m; ++c) {
          row[c] += sigma * draws[c];
        }
      }
    });
  }
  perturb_timer.attr("sigma", out.calibration.sigma);
  perturb_timer.stop();

  static obs::Counter& releases = obs::counter(obs::names::kPublishReleases);
  static obs::Counter& cells = obs::counter(obs::names::kPublishCells);
  releases.add();
  cells.add(static_cast<std::uint64_t>(n) * m);
  // Headline config gauges (docs/observability.md): the σ actually used
  // and the input size, so a report is interpretable on its own.
  obs::gauge(obs::names::kPublishSigma).set(out.calibration.sigma);
  obs::gauge(obs::names::kGraphNodes).set(static_cast<double>(n));
  // Resolved kernel as an enum ordinal (1 scalar, 2 generic, 3 avx2,
  // 4 avx512 — kAuto never survives resolution); the mapping is documented
  // in docs/observability.md.
  obs::gauge(obs::names::kPublishKernelVariant)
      .set(static_cast<double>(kernel));

  // Step 3: assemble the release.
  out.data = std::move(y);
  out.num_nodes = n;
  out.projection_dim = m;
  out.params = options_.params;
  out.projection = options_.projection;
  out.projection_rng = projection_rng_for(options_.projection, kernel);
  return out;
}

linalg::DenseMatrix spectral_embedding(const PublishedGraph& published,
                                       std::size_t k) {
  util::require(k >= 1 && k <= published.projection_dim,
                "spectral_embedding: k must be in [1, m]");
  obs::ScopedTimer embed_timer(obs::names::kPublishEmbed);
  embed_timer.attr("k", k);
  static obs::Counter& embeds = obs::counter(obs::names::kPublishEmbeds);
  embeds.add();
  const linalg::SvdResult svd = linalg::svd_gram(published.data, k);
  return svd.u;
}

std::vector<double> centrality_scores(const PublishedGraph& published) {
  const linalg::DenseMatrix u = spectral_embedding(published, 1);
  return ranking::centrality_from_embedding(u);
}

std::vector<double> degree_scores(const PublishedGraph& published) {
  const double bias = static_cast<double>(published.projection_dim) *
                      published.calibration.sigma * published.calibration.sigma;
  std::vector<double> scores(published.data.rows());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = linalg::norm2_squared(published.data.row(i)) - bias;
  }
  return scores;
}

cluster::KMeansResult cluster_published(const PublishedGraph& published,
                                        std::size_t k, std::uint64_t seed) {
  const linalg::DenseMatrix embedding = spectral_embedding(published, k);
  cluster::SpectralOptions opt;
  opt.num_clusters = k;
  opt.seed = seed;
  return cluster::cluster_embedding(embedding, opt);
}

}  // namespace sgp::core
