#include "linalg/vector_ops.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sgp::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  util::require(x.size() == y.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(norm2_squared(x)); }

double norm2_squared(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  util::require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

double normalize(std::span<double> x) {
  const double n = norm2(x);
  util::ensure(n > 0.0 && std::isfinite(n), "normalize: zero or invalid vector");
  scale(x, 1.0 / n);
  return n;
}

double distance2(std::span<const double> x, std::span<const double> y) {
  util::require(x.size() == y.size(), "distance2: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void subtract(std::span<const double> x, std::span<const double> y,
              std::span<double> out) {
  util::require(x.size() == y.size() && x.size() == out.size(),
                "subtract: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

void fill(std::span<double> x, double value) {
  for (double& v : x) v = value;
}

}  // namespace sgp::linalg
