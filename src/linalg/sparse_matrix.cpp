#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace sgp::linalg {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    util::require(t.row < rows && t.col < cols,
                  "from_triplets: entry outside matrix bounds");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      const std::uint32_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;  // merge duplicates
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = m.col_idx_.size();
  }
  return m;
}

std::span<const std::uint32_t> CsrMatrix::row_indices(std::size_t r) const {
  util::require(r < rows(), "row_indices: row out of range");
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::row_values(std::size_t r) const {
  util::require(r < rows(), "row_values: row out of range");
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::vector<double> CsrMatrix::multiply_vector(
    std::span<const double> x) const {
  util::require(x.size() == cols_, "multiply_vector: size mismatch");
  std::vector<double> y(rows(), 0.0);
  util::parallel_for(
      0, rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double acc = 0.0;
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            acc += values_[k] * x[col_idx_[k]];
          }
          y[r] = acc;
        }
      },
      4096);
  return y;
}

std::vector<double> CsrMatrix::transpose_multiply_vector(
    std::span<const double> x) const {
  util::require(x.size() == rows(), "transpose_multiply_vector: size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    const double xv = x[r];
    if (xv == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xv;
    }
  }
  return y;
}

DenseMatrix CsrMatrix::multiply_dense(const DenseMatrix& b) const {
  util::require(cols_ == b.rows(), "multiply_dense: inner dimension mismatch");
  DenseMatrix out(rows(), b.cols());
  util::parallel_for(
      0, rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          auto orow = out.row(r);
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            const double v = values_[k];
            const auto brow = b.row(col_idx_[k]);
            for (std::size_t c = 0; c < brow.size(); ++c) orow[c] += v * brow[c];
          }
        }
      },
      512);
  return out;
}

DenseMatrix CsrMatrix::multiply_generated(
    std::size_t b_cols, const TileFiller& fill_tile,
    const GeneratedTileOptions& opts) const {
  util::require(rows() == cols_, "multiply_generated: matrix must be square");
  util::require(static_cast<bool>(fill_tile),
                "multiply_generated: fill_tile must be callable");
  const std::size_t n = rows();
  DenseMatrix out(n, b_cols);
  if (n == 0 || b_cols == 0) return out;

  util::ThreadPool& pool = opts.pool ? *opts.pool : util::global_pool();
  // Clamp to n before sizing scratch: an adversarial tile_rows (say
  // SIZE_MAX) would otherwise overflow the tile_rows·tile_cols product and
  // allocate a scratch buffer smaller than one tile. After the clamp the
  // product is bounded by n·b_cols, which the `out` allocation above has
  // already proven representable.
  const std::size_t tile_rows =
      std::min(std::max<std::size_t>(1, opts.tile_rows), n);
  std::size_t tile_cols = opts.tile_cols;
  if (tile_cols == 0) {
    // Narrow auto blocks: at least two blocks per thread so the pool stays
    // busy even for the paper's small m (~100), floor 8 to keep the inner
    // FMA loop vectorizable, cap 64 so a tile row stays within one page.
    tile_cols = std::clamp<std::size_t>(
        (b_cols + 2 * pool.size() - 1) / (2 * pool.size()), 8, 64);
  }
  tile_cols = std::min(tile_cols, b_cols);

  static obs::Counter& tiles = obs::counter(obs::names::kLinalgFusedTiles);

  // Each chunk of columns is owned by exactly one task, so the scatter
  // Y[r, c0..c1) += v · tile[j, c0..c1) never races: tasks write disjoint
  // column slabs of `out`. Per output cell (r, c) the contributions arrive
  // in ascending j (outer row-block loop, then rows within the tile), which
  // matches the ascending-column accumulation of multiply_dense on a
  // symmetric matrix — hence bit-identical results for any tiling/threads.
  util::parallel_for(
      pool, 0, b_cols,
      [&](std::size_t col_lo, std::size_t col_hi) {
        std::vector<double> scratch(tile_rows * tile_cols);
        double* const out_data = out.row(0).data();
        for (std::size_t c0 = col_lo; c0 < col_hi; c0 += tile_cols) {
          const std::size_t c1 = std::min(col_hi, c0 + tile_cols);
          const std::size_t width = c1 - c0;
          for (std::size_t j0 = 0; j0 < n; j0 += tile_rows) {
            const std::size_t j1 = std::min(n, j0 + tile_rows);
            fill_tile(j0, j1, c0, c1, scratch.data());
            tiles.add();
            for (std::size_t j = j0; j < j1; ++j) {
              const double* tile_row = scratch.data() + (j - j0) * width;
              const std::size_t k_end = row_ptr_[j + 1];
              for (std::size_t k = row_ptr_[j]; k < k_end; ++k) {
                // The scatter destination row is data-dependent through
                // col_idx_, so the hardware prefetcher can't see it coming;
                // hint the next entry's line while this one's FMAs run.
                if (k + 1 < k_end) {
                  __builtin_prefetch(
                      out_data +
                          static_cast<std::size_t>(col_idx_[k + 1]) * b_cols +
                          c0,
                      /*rw=*/1, /*locality=*/1);
                }
                const double v = values_[k];
                double* orow =
                    out_data + static_cast<std::size_t>(col_idx_[k]) * b_cols +
                    c0;
                for (std::size_t c = 0; c < width; ++c) {
                  orow[c] += v * tile_row[c];
                }
              }
            }
          }
        }
      },
      tile_cols);
  return out;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix out(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  util::require(r < rows() && c < cols_, "at: index out of range");
  const auto idx = row_indices(r);
  const auto it = std::lower_bound(idx.begin(), idx.end(),
                                   static_cast<std::uint32_t>(c));
  if (it == idx.end() || *it != c) return 0.0;
  return row_values(r)[static_cast<std::size_t>(it - idx.begin())];
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows() != cols_) return false;
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto idx = row_indices(r);
    const auto val = row_values(r);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      if (std::fabs(at(idx[k], r) - val[k]) > tol) return false;
    }
  }
  return true;
}

double CsrMatrix::sum() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

}  // namespace sgp::linalg
