// Row-major dense matrix of doubles.
//
// Sized for the *published* artifacts of the mechanism: an n×m projected
// matrix with m ≪ n (hundreds), and small m×m Gram/rotation matrices. It is
// deliberately a plain value type (Core Guidelines C.10): copyable, movable,
// no hidden sharing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sgp::linalg {

class DenseMatrix {
 public:
  /// Empty 0x0 matrix.
  DenseMatrix() = default;

  /// rows × cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols);

  /// Builds from row-major data; data.size() must equal rows*cols.
  DenseMatrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// k × k identity.
  static DenseMatrix identity(std::size_t k);

  /// Matrix product this(r×k) * other(k×c). Parallelized over rows.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  /// thisᵀ * other, where this is r×k and other is r×c — i.e. a (k×c) product
  /// of two tall matrices without materializing the transpose.
  [[nodiscard]] DenseMatrix transpose_multiply(const DenseMatrix& other) const;

  /// Gram matrix thisᵀ * this (cols × cols), exploiting symmetry.
  [[nodiscard]] DenseMatrix gram() const;

  /// Matrix-vector product (rows-sized output).
  [[nodiscard]] std::vector<double> multiply_vector(
      std::span<const double> x) const;

  /// Transposed matrix-vector product thisᵀ x (cols-sized output).
  [[nodiscard]] std::vector<double> transpose_multiply_vector(
      std::span<const double> x) const;

  /// Explicit transpose (cols × rows).
  [[nodiscard]] DenseMatrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// this += alpha * other (same shape).
  void add_scaled(const DenseMatrix& other, double alpha);

  /// Extracts the leading `k` columns as a rows×k matrix. k <= cols().
  [[nodiscard]] DenseMatrix first_columns(std::size_t k) const;

  /// Extracts column c as a vector.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  bool operator==(const DenseMatrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sgp::linalg
