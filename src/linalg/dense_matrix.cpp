#include "linalg/dense_matrix.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace sgp::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols,
                         std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  util::require(data_.size() == rows * cols,
                "dense matrix: data size must equal rows*cols");
}

DenseMatrix DenseMatrix::identity(std::size_t k) {
  DenseMatrix eye(k, k);
  for (std::size_t i = 0; i < k; ++i) eye(i, i) = 1.0;
  return eye;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  util::require(cols_ == other.rows_, "multiply: inner dimensions mismatch");
  DenseMatrix out(rows_, other.cols_);
  util::parallel_for(
      0, rows_,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            const auto brow = other.row(k);
            auto orow = out.row(r);
            for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
          }
        }
      },
      64);
  return out;
}

DenseMatrix DenseMatrix::transpose_multiply(const DenseMatrix& other) const {
  util::require(rows_ == other.rows_,
                "transpose_multiply: row counts must match");
  DenseMatrix out(cols_, other.cols_);
  // Accumulate rank-1 updates row by row: out += a_rᵀ b_r.
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto arow = row(r);
    const auto brow = other.row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      auto orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::gram() const {
  DenseMatrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto arow = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      auto grow = g.row(i);
      for (std::size_t j = i; j < cols_; ++j) grow[j] += a * arow[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

std::vector<double> DenseMatrix::multiply_vector(
    std::span<const double> x) const {
  util::require(x.size() == cols_, "multiply_vector: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto arow = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += arow[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::transpose_multiply_vector(
    std::span<const double> x) const {
  util::require(x.size() == rows_, "transpose_multiply_vector: size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xv = x[r];
    if (xv == 0.0) continue;
    const auto arow = row(r);
    for (std::size_t c = 0; c < cols_; ++c) y[c] += arow[c] * xv;
  }
  return y;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double DenseMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
  util::require(rows_ == other.rows_ && cols_ == other.cols_,
                "add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

DenseMatrix DenseMatrix::first_columns(std::size_t k) const {
  util::require(k <= cols_, "first_columns: k must be <= cols");
  DenseMatrix out(rows_, k);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto src = row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < k; ++c) dst[c] = src[c];
  }
  return out;
}

std::vector<double> DenseMatrix::column(std::size_t c) const {
  util::require(c < cols_, "column: index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

}  // namespace sgp::linalg
