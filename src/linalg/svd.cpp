#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::linalg {

SvdResult svd_gram(const DenseMatrix& a, std::size_t k) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  util::require(k >= 1 && k <= m, "svd_gram: k must be in [1, cols]");
  util::require(n >= 1, "svd_gram: matrix must be non-empty");

  const DenseMatrix g = a.gram();  // m×m
  const EigenResult eig = jacobi_eigen(g, EigenOrder::kDescending);

  SvdResult out;
  out.singular_values.resize(k);
  out.v = DenseMatrix(m, k);
  out.u = DenseMatrix(n, k);

  for (std::size_t j = 0; j < k; ++j) {
    const double lambda = std::max(eig.values[j], 0.0);
    const double singular_value = std::sqrt(lambda);
    out.singular_values[j] = singular_value;
    std::vector<double> vj(m);
    for (std::size_t i = 0; i < m; ++i) {
      vj[i] = eig.vectors(i, j);
      out.v(i, j) = vj[i];
    }
    if (singular_value > 1e-12 * (out.singular_values[0] + 1e-300)) {
      const std::vector<double> uj = a.multiply_vector(vj);
      const double inv = 1.0 / singular_value;
      for (std::size_t i = 0; i < n; ++i) out.u(i, j) = uj[i] * inv;
    }
    // else: leave U column zero (null-space direction).
  }
  return out;
}

SvdResult randomized_svd(const DenseMatrix& a, std::size_t k,
                         std::size_t oversample, std::size_t power_iters,
                         std::uint64_t seed) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  util::require(k >= 1 && k <= std::min(n, m),
                "randomized_svd: k must be in [1, min(rows, cols)]");
  const std::size_t sketch = std::min(m, k + oversample);

  random::Rng rng(seed);
  DenseMatrix omega(m, sketch);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < sketch; ++j) {
      omega(i, j) = random::normal(rng);
    }
  }

  // Range finder: Q spans the dominant column space of A.
  DenseMatrix y = a.multiply(omega);  // n×sketch
  DenseMatrix q = orthonormalize_columns(y);
  for (std::size_t it = 0; it < power_iters; ++it) {
    // Subspace iteration with re-orthonormalization each half-step.
    DenseMatrix z = a.transpose_multiply(q);  // m×sketch = Aᵀ Q
    z = orthonormalize_columns(z);
    y = a.multiply(z);  // n×sketch
    q = orthonormalize_columns(y);
  }

  // Project: B = Qᵀ A (sketch×m), then exact small SVD of B.
  const DenseMatrix b = q.transpose_multiply(a);
  const SvdResult small = svd_gram(b, k);

  SvdResult out;
  out.singular_values = small.singular_values;
  out.v = small.v;
  out.u = q.multiply(small.u);  // n×k
  return out;
}

}  // namespace sgp::linalg
