#include "linalg/power_iteration.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::linalg {

PowerIterationResult power_iteration_topk(
    const SymmetricOperator& op, const PowerIterationOptions& options) {
  const std::size_t n = op.dim;
  const std::size_t k = options.k;
  util::require(n > 0 && static_cast<bool>(op.apply),
                "power iteration: operator must have positive dim");
  util::require(k >= 1 && k <= n, "power iteration: k must be in [1, dim]");

  random::Rng rng(options.seed);
  PowerIterationResult result;
  result.vectors = DenseMatrix(n, k);
  result.values.resize(k);
  result.converged = true;

  std::vector<std::vector<double>> found;  // previously found eigenvectors
  std::vector<double> x(n), next(n);

  for (std::size_t j = 0; j < k; ++j) {
    for (double& v : x) v = random::normal(rng);
    // Deflate the start against found vectors.
    for (const auto& u : found) axpy(-dot(x, u), u, x);
    double nrm = norm2(x);
    util::ensure(nrm > 0.0, "power iteration: degenerate start vector");
    scale(x, 1.0 / nrm);

    double lambda = 0.0;
    bool pair_converged = false;
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
      util::fault_point(util::fault_points::kSolverIteration);
      op.apply(x, next);
      // Implicit deflation: remove components along found eigenvectors.
      for (std::size_t f = 0; f < found.size(); ++f) {
        axpy(-result.values[f] * dot(x, found[f]), found[f], next);
      }
      lambda = dot(next, x);  // Rayleigh quotient estimate
      nrm = norm2(next);
      if (nrm <= 1e-300) {
        // Null direction: eigenvalue 0, keep the current basis vector.
        lambda = 0.0;
        pair_converged = true;
        break;
      }
      scale(next, 1.0 / nrm);
      // Convergence on direction change (sign-insensitive).
      double diff_plus = 0.0, diff_minus = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        diff_plus += (next[i] - x[i]) * (next[i] - x[i]);
        diff_minus += (next[i] + x[i]) * (next[i] + x[i]);
      }
      std::swap(x, next);
      if (std::min(diff_plus, diff_minus) < options.tolerance * options.tolerance) {
        pair_converged = true;
        break;
      }
    }
    // Re-orthogonalize the converged vector for numerical hygiene.
    for (const auto& u : found) axpy(-dot(x, u), u, x);
    const double final_norm = norm2(x);
    if (final_norm > 0.0) scale(x, 1.0 / final_norm);

    result.values[j] = lambda;
    for (std::size_t i = 0; i < n; ++i) result.vectors(i, j) = x[i];
    found.push_back(x);
    result.converged = result.converged && pair_converged;
  }
  return result;
}

}  // namespace sgp::linalg
