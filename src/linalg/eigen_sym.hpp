// Dense symmetric eigensolvers:
//  - cyclic Jacobi for general small symmetric matrices (Gram matrices,
//    projected covariance), and
//  - implicit-shift QL for symmetric tridiagonal matrices (the Rayleigh
//    quotient matrices produced by Lanczos).
//
// Both return the full spectrum; callers truncate to top-k.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::linalg {

/// Full eigendecomposition A = V diag(values) Vᵀ.
/// `vectors` stores eigenvectors as COLUMNS, aligned with `values`.
struct EigenResult {
  std::vector<double> values;
  DenseMatrix vectors;
};

/// How to order the returned eigenpairs.
enum class EigenOrder {
  kDescending,          // algebraically largest first (spectral clustering)
  kDescendingMagnitude  // |λ| largest first (spectra distortion metrics)
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Input must be
/// square and symmetric (validated up to `sym_tol`). Converges to machine
/// precision in a handful of sweeps for the small (k ≤ ~1000) matrices sgp
/// uses. Throws std::runtime_error if `max_sweeps` is exceeded.
EigenResult jacobi_eigen(const DenseMatrix& a,
                         EigenOrder order = EigenOrder::kDescending,
                         int max_sweeps = 64, double sym_tol = 1e-9);

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// `diag` (size n) and off-diagonal `offdiag` (size n-1), via the implicit
/// QL algorithm with Wilkinson shifts. Returns eigenpairs in the requested
/// order; eigenvectors are the columns of `vectors`.
EigenResult tridiagonal_eigen(std::vector<double> diag,
                              std::vector<double> offdiag,
                              EigenOrder order = EigenOrder::kDescending);

}  // namespace sgp::linalg
