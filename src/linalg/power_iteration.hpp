// Power iteration with deflation — the simplest top-k eigensolver for
// symmetric operators. Slower than Lanczos on clustered spectra but with
// completely independent failure modes, so it doubles as a cross-check
// oracle in the test suite (and as the textbook baseline the paper's readers
// would reach for first).
#pragma once

#include <cstdint>

#include "linalg/lanczos.hpp"  // SymmetricOperator

namespace sgp::linalg {

struct PowerIterationOptions {
  std::size_t k = 1;                ///< number of eigenpairs (by |λ|)
  std::size_t max_iterations = 1000;  ///< per eigenpair
  double tolerance = 1e-10;         ///< eigenvector change (L2) to stop
  std::uint64_t seed = 7;
};

struct PowerIterationResult {
  std::vector<double> values;  ///< eigenvalues, |λ| descending
  DenseMatrix vectors;         ///< n×k eigenvectors (columns)
  bool converged = false;      ///< all k pairs met the tolerance
};

/// Computes the k largest-|λ| eigenpairs by repeated power iteration with
/// explicit deflation (A ← A − λ v vᵀ applied implicitly). Requires
/// 1 <= k <= dim. Degenerate/tied eigenvalues converge to an arbitrary
/// basis of the eigenspace, like any power method.
PowerIterationResult power_iteration_topk(const SymmetricOperator& op,
                                          const PowerIterationOptions& options);

}  // namespace sgp::linalg
