// Lanczos iteration with full reorthogonalization for the top-k eigenpairs of
// a large symmetric linear operator — used to obtain ground-truth spectra of
// sparse adjacency matrices (matrix-free: only matvec access is needed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/eigen_sym.hpp"

namespace sgp::linalg {

/// A symmetric operator y = A x exposed as a callback; `dim` is n.
struct SymmetricOperator {
  std::size_t dim = 0;
  std::function<void(std::span<const double>, std::span<double>)> apply;
};

struct LanczosOptions {
  std::size_t k = 1;             ///< number of eigenpairs wanted
  std::size_t max_iterations = 0;  ///< 0 → min(dim, max(6k, 100))
  double tolerance = 1e-8;       ///< residual bound relative to |λ_max|
  std::uint64_t seed = 7;        ///< starting-vector seed
  EigenOrder order = EigenOrder::kDescending;
};

struct LanczosResult {
  std::vector<double> values;  ///< k Ritz values in the requested order
  DenseMatrix vectors;         ///< n×k Ritz vectors (columns)
  std::size_t iterations = 0;  ///< Krylov dimension actually built
  bool converged = false;      ///< residual bound met for all k pairs
};

/// Computes the top-k eigenpairs of `op`. Uses full reorthogonalization
/// (numerically robust for the clustered spectra of social graphs) and
/// random restarts when the Krylov space exhausts an invariant subspace.
/// Throws std::invalid_argument if k is 0 or exceeds op.dim.
///
/// Known limitation (inherent to single-vector Lanczos): an *exactly*
/// repeated eigenvalue is reported once per invariant-subspace exhaustion —
/// residual bounds cannot reveal missing multiplicities, so with a small
/// iteration budget the k-th value may skip to the next distinct
/// eigenvalue. Adjacency spectra of random graphs are simple almost surely,
/// so the pipelines here are unaffected; for exactly degenerate operators
/// give the solver max_iterations ≈ dim (the restart logic then recovers
/// every copy, see LanczosTest.IdentityOperatorDegenerateSpectrum).
LanczosResult lanczos_topk(const SymmetricOperator& op,
                           const LanczosOptions& options);

}  // namespace sgp::linalg
