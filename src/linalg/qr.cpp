#include "linalg/qr.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace sgp::linalg {

QrResult qr_decompose(const DenseMatrix& a) {
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  util::require(n >= k, "qr: matrix must be tall (rows >= cols)");
  util::require(k > 0, "qr: matrix must be non-empty");

  // Work in a copy; reflectors are stored below the diagonal, R on and above.
  DenseMatrix work = a;
  std::vector<double> tau(k, 0.0);

  for (std::size_t j = 0; j < k; ++j) {
    // Householder vector for column j, rows j..n-1.
    double norm_x = 0.0;
    for (std::size_t i = j; i < n; ++i) norm_x += work(i, j) * work(i, j);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) {
      tau[j] = 0.0;  // column already zero below (and at) the diagonal
      continue;
    }
    const double alpha = work(j, j) >= 0.0 ? -norm_x : norm_x;
    const double v0 = work(j, j) - alpha;
    // v = (v0, work(j+1..n-1, j)); normalize so v[0] = 1 implicitly.
    double v_norm2 = v0 * v0;
    for (std::size_t i = j + 1; i < n; ++i) v_norm2 += work(i, j) * work(i, j);
    if (v_norm2 == 0.0) {
      tau[j] = 0.0;
      work(j, j) = alpha;
      continue;
    }
    tau[j] = 2.0 * v0 * v0 / v_norm2;
    // Store normalized reflector: work(j,j) holds alpha (R diagonal); the
    // sub-diagonal part holds v_i / v0 so the reflector can be re-applied.
    for (std::size_t i = j + 1; i < n; ++i) work(i, j) /= v0;
    work(j, j) = alpha;

    // Apply reflector to remaining columns: A_c -= tau * v (vᵀ A_c).
    for (std::size_t c = j + 1; c < k; ++c) {
      double s = work(j, c);  // v[0] = 1
      for (std::size_t i = j + 1; i < n; ++i) s += work(i, j) * work(i, c);
      s *= tau[j];
      work(j, c) -= s;
      for (std::size_t i = j + 1; i < n; ++i) work(i, c) -= s * work(i, j);
    }
  }

  QrResult out;
  out.r = DenseMatrix(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) out.r(i, j) = work(i, j);
  }

  // Form thin Q by applying reflectors (last to first) to the first k columns
  // of the identity.
  out.q = DenseMatrix(n, k);
  for (std::size_t j = 0; j < k; ++j) out.q(j, j) = 1.0;
  for (std::size_t j = k; j-- > 0;) {
    if (tau[j] == 0.0) continue;
    for (std::size_t c = 0; c < k; ++c) {
      double s = out.q(j, c);
      for (std::size_t i = j + 1; i < n; ++i) s += work(i, j) * out.q(i, c);
      s *= tau[j];
      out.q(j, c) -= s;
      for (std::size_t i = j + 1; i < n; ++i) {
        out.q(i, c) -= s * work(i, j);
      }
    }
  }
  return out;
}

DenseMatrix orthonormalize_columns(const DenseMatrix& a) {
  return qr_decompose(a).q;
}

}  // namespace sgp::linalg
