#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::linalg {
namespace {

/// Sorts (values, column-vectors) in the requested order.
void sort_pairs(EigenResult& res, EigenOrder order) {
  const std::size_t n = res.values.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (order == EigenOrder::kDescending) {
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return res.values[a] > res.values[b];
    });
  } else {
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return std::fabs(res.values[a]) > std::fabs(res.values[b]);
    });
  }
  std::vector<double> sorted_values(n);
  DenseMatrix sorted_vectors(res.vectors.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = res.values[perm[j]];
    for (std::size_t i = 0; i < res.vectors.rows(); ++i) {
      sorted_vectors(i, j) = res.vectors(i, perm[j]);
    }
  }
  res.values = std::move(sorted_values);
  res.vectors = std::move(sorted_vectors);
}

double offdiagonal_norm(const DenseMatrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) acc += a(i, j) * a(i, j);
  }
  return std::sqrt(2.0 * acc);
}

}  // namespace

EigenResult jacobi_eigen(const DenseMatrix& a, EigenOrder order,
                         int max_sweeps, double sym_tol) {
  const std::size_t n = a.rows();
  util::require(n == a.cols(), "jacobi_eigen: matrix must be square");
  util::require(n > 0, "jacobi_eigen: matrix must be non-empty");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      util::require(std::fabs(a(i, j) - a(j, i)) <=
                        sym_tol * (1.0 + std::fabs(a(i, j))),
                    "jacobi_eigen: matrix is not symmetric");
    }
  }

  DenseMatrix work = a;
  DenseMatrix v = DenseMatrix::identity(n);
  const double frob = std::max(work.frobenius_norm(), 1e-300);
  const double tol = 1e-14 * frob;

  static obs::Counter& solves = obs::counter(obs::names::kJacobiSolves);
  static obs::Counter& sweeps = obs::counter(obs::names::kJacobiSweeps);
  solves.add();

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    sweeps.add();
    if (offdiagonal_norm(work) <= tol) {
      EigenResult res;
      res.values.resize(n);
      for (std::size_t i = 0; i < n; ++i) res.values[i] = work(i, i);
      res.vectors = std::move(v);
      sort_pairs(res, order);
      return res;
    }
    for (std::size_t p = 0; p < n - 1; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::fabs(apq) <= tol / static_cast<double>(n)) continue;
        const double app = work(p, p);
        const double aqq = work(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // tan of the rotation angle, the smaller root for stability.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation J(p, q, θ)ᵀ A J(p, q, θ).
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = work(i, p);
          const double aiq = work(i, q);
          work(i, p) = c * aip - s * aiq;
          work(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = work(p, i);
          const double aqi = work(q, i);
          work(p, i) = c * api - s * aqi;
          work(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  throw util::ConvergenceError("jacobi_eigen: did not converge within " +
                               std::to_string(max_sweeps) + " sweeps");
}

EigenResult tridiagonal_eigen(std::vector<double> diag,
                              std::vector<double> offdiag, EigenOrder order) {
  const std::size_t n = diag.size();
  util::require(n > 0, "tridiagonal_eigen: empty matrix");
  util::require(offdiag.size() == n - 1 || (n == 1 && offdiag.empty()),
                "tridiagonal_eigen: offdiag must have size n-1");

  // Convention: e[i] couples d[i] and d[i+1]; e[n-1] is a zero sentinel.
  std::vector<double> d = std::move(diag);
  std::vector<double> e(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) e[i] = offdiag[i];

  DenseMatrix z = DenseMatrix::identity(n);

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m;
    do {
      // Find the first negligible coupling at or after l (splits the block).
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iterations > 50) {
          throw util::ConvergenceError(
              "tridiagonal_eigen: QL failed to converge");
        }
        // Wilkinson shift from the 2x2 block at l.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        const double denom = g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r));
        g = d[m] - d[l] + e[l] / denom;
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Rotation annihilated prematurely; deflate and retry the block.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          // Accumulate the rotation into the eigenvector matrix.
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  EigenResult res;
  res.values = std::move(d);
  res.vectors = std::move(z);
  sort_pairs(res, order);
  return res;
}

}  // namespace sgp::linalg
