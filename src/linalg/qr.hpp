// Thin QR factorization of tall matrices (n×k, k ≪ n) via Householder
// reflections. Used by the randomized range finder and to orthonormalize
// Krylov bases.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace sgp::linalg {

/// Result of a thin QR factorization A = Q·R with Q n×k orthonormal columns
/// and R k×k upper triangular.
struct QrResult {
  DenseMatrix q;
  DenseMatrix r;
};

/// Computes the thin QR factorization of `a` (rows >= cols required).
/// Householder-based: numerically stable even for nearly dependent columns
/// (a rank-deficient column yields a zero diagonal in R, not a crash).
QrResult qr_decompose(const DenseMatrix& a);

/// Orthonormalizes the columns of `a` in place (returns Q of the thin QR).
DenseMatrix orthonormalize_columns(const DenseMatrix& a);

}  // namespace sgp::linalg
