// Free functions on contiguous double sequences (std::span) — the building
// blocks every higher-level kernel (Lanczos, QR, k-means) is written against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sgp::linalg {

/// Inner product <x, y>. Sizes must match.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm ‖x‖₂.
double norm2(std::span<const double> x);

/// Squared Euclidean norm ‖x‖₂².
double norm2_squared(std::span<const double> x);

/// y += alpha * x. Sizes must match.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Normalizes x in place to unit 2-norm and returns the original norm.
/// Throws std::runtime_error if x is (numerically) zero.
double normalize(std::span<double> x);

/// ‖x - y‖₂. Sizes must match.
double distance2(std::span<const double> x, std::span<const double> y);

/// Elementwise x - y into out. Sizes must match.
void subtract(std::span<const double> x, std::span<const double> y,
              std::span<double> out);

/// Fills x with a constant.
void fill(std::span<double> x, double value);

}  // namespace sgp::linalg
