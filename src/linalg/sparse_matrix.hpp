// Compressed-sparse-row matrix.
//
// This is the in-memory form of an OSN adjacency matrix: n up to millions,
// average degree tens. All heavy kernels of the mechanism (A·P projection,
// Lanczos ground-truth spectra) run over this structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::linalg {

/// One (row, col, value) entry used to assemble a CSR matrix.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Assembles from unordered triplets. Duplicate (row, col) entries are
  /// summed. Entries must lie inside rows × cols.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// Column indices of row r (sorted ascending).
  [[nodiscard]] std::span<const std::uint32_t> row_indices(std::size_t r) const;
  /// Values of row r, aligned with row_indices(r).
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  /// y = A x.
  [[nodiscard]] std::vector<double> multiply_vector(
      std::span<const double> x) const;

  /// y = Aᵀ x.
  [[nodiscard]] std::vector<double> transpose_multiply_vector(
      std::span<const double> x) const;

  /// Dense product A (rows×cols) * B (cols×k) → rows×k. Parallelized over
  /// rows; this is the O(nnz · k) projection kernel of the mechanism.
  [[nodiscard]] DenseMatrix multiply_dense(const DenseMatrix& b) const;

  /// Materializes the dense equivalent (small matrices / tests only).
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Value at (r, c); zero if not stored. O(log degree(r)).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// True if the matrix equals its transpose (pattern and values).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Sum of all stored values.
  [[nodiscard]] double sum() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace sgp::linalg
