// Compressed-sparse-row matrix.
//
// This is the in-memory form of an OSN adjacency matrix: n up to millions,
// average degree tens. All heavy kernels of the mechanism (A·P projection,
// Lanczos ground-truth spectra) run over this structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::util {
class ThreadPool;
}  // namespace sgp::util

namespace sgp::linalg {

/// Fills `out` (row-major, stride col_end - col_begin) with the tile
/// B[row_begin..row_end) × [col_begin..col_end) of a virtual dense operand.
/// Must be a pure function of its arguments (no mutable state): the fused
/// kernel calls it from multiple threads, in tile order it chooses.
using TileFiller = std::function<void(std::size_t row_begin,
                                      std::size_t row_end,
                                      std::size_t col_begin,
                                      std::size_t col_end, double* out)>;

/// Tuning knobs for CsrMatrix::multiply_generated.
struct GeneratedTileOptions {
  /// Rows of B generated per tile.
  std::size_t tile_rows = 512;
  /// Columns per tile; 0 = auto (narrow blocks sized so every pool thread
  /// gets work even for small m — generation cost dominates the FMAs, so
  /// narrow blocks cost little).
  std::size_t tile_cols = 0;
  /// Pool to run on; nullptr = util::global_pool().
  util::ThreadPool* pool = nullptr;
};

/// One (row, col, value) entry used to assemble a CSR matrix.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Assembles from unordered triplets. Duplicate (row, col) entries are
  /// summed. Entries must lie inside rows × cols.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// Column indices of row r (sorted ascending).
  [[nodiscard]] std::span<const std::uint32_t> row_indices(std::size_t r) const;
  /// Values of row r, aligned with row_indices(r).
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  /// y = A x.
  [[nodiscard]] std::vector<double> multiply_vector(
      std::span<const double> x) const;

  /// y = Aᵀ x.
  [[nodiscard]] std::vector<double> transpose_multiply_vector(
      std::span<const double> x) const;

  /// Dense product A (rows×cols) * B (cols×k) → rows×k. Parallelized over
  /// rows; this is the O(nnz · k) projection kernel of the mechanism.
  [[nodiscard]] DenseMatrix multiply_dense(const DenseMatrix& b) const;

  /// Fused product A (n×n, must be symmetric) * B (n×b_cols) → n×b_cols,
  /// where B is never materialized: `fill_tile` generates each needed tile
  /// into a per-thread scratch buffer on demand (total generation work is
  /// n·b_cols, each tile exactly once). Work is partitioned over *column*
  /// blocks of the output, so each thread owns its slab of Y and no write
  /// races exist; within a (row, col) cell, contributions accumulate in
  /// ascending source-row order — the same order as multiply_dense, so for a
  /// symmetric A the result is bit-identical to
  /// multiply_dense(materialized B), for every tiling and thread count.
  ///
  /// Symmetry is required because the kernel scatters through row j of A to
  /// reach column j of A (Y[r] += A[j][r]·B[j]). Squareness is checked;
  /// symmetry is the caller's contract (checking it would cost a full
  /// O(nnz·log d) pass per multiply — publish_matrix already documents it).
  [[nodiscard]] DenseMatrix multiply_generated(
      std::size_t b_cols, const TileFiller& fill_tile,
      const GeneratedTileOptions& opts = {}) const;

  /// Materializes the dense equivalent (small matrices / tests only).
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Value at (r, c); zero if not stored. O(log degree(r)).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// True if the matrix equals its transpose (pattern and values).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Sum of all stored values.
  [[nodiscard]] double sum() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace sgp::linalg
