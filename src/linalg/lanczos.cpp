#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::linalg {
namespace {

/// Removes from w its components along the first `count` basis vectors.
void orthogonalize_against(std::span<double> w,
                           const std::vector<std::vector<double>>& basis,
                           std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const double coeff = dot(w, basis[i]);
    axpy(-coeff, basis[i], w);
  }
}

/// Draws a random unit vector orthogonal to the current basis.
std::vector<double> fresh_direction(std::size_t n,
                                    const std::vector<std::vector<double>>& basis,
                                    std::size_t count, random::Rng& rng) {
  std::vector<double> v(n);
  for (int attempt = 0; attempt < 16; ++attempt) {
    for (double& x : v) x = random::normal(rng);
    orthogonalize_against(v, basis, count);
    orthogonalize_against(v, basis, count);  // second pass for safety
    const double nrm = norm2(v);
    if (nrm > 1e-8) {
      scale(v, 1.0 / nrm);
      return v;
    }
  }
  throw util::ConvergenceError(
      "lanczos: could not generate a fresh direction");
}

}  // namespace

LanczosResult lanczos_topk(const SymmetricOperator& op,
                           const LanczosOptions& options) {
  const std::size_t n = op.dim;
  const std::size_t k = options.k;
  util::require(n > 0 && static_cast<bool>(op.apply),
                "lanczos: operator must have positive dim and a callback");
  util::require(k >= 1 && k <= n, "lanczos: k must be in [1, dim]");

  std::size_t max_iter = options.max_iterations;
  if (max_iter == 0) max_iter = std::min(n, std::max<std::size_t>(6 * k, 100));
  max_iter = std::min(max_iter, n);
  util::require(max_iter >= k, "lanczos: max_iterations must be >= k");

  random::Rng rng(options.seed);

  obs::Span span("lanczos");
  span.attr("n", n);
  span.attr("k", k);
  static obs::Counter& solves = obs::counter(obs::names::kLanczosSolves);
  static obs::Counter& iterations = obs::counter(obs::names::kLanczosIterations);
  static obs::Counter& restarts = obs::counter(obs::names::kLanczosRestarts);
  static obs::Counter& failures = obs::counter(obs::names::kLanczosFailures);
  solves.add();

  std::vector<std::vector<double>> basis;  // v_0 .. v_{j}
  basis.reserve(max_iter + 1);
  std::vector<double> alpha;  // T diagonal
  std::vector<double> beta;   // T off-diagonal (beta[j] couples j, j+1)

  basis.push_back(fresh_direction(n, basis, 0, rng));

  std::vector<double> w(n, 0.0);
  LanczosResult result;

  for (std::size_t j = 0; j < max_iter; ++j) {
    util::fault_point(util::fault_points::kSolverIteration);
    iterations.add();
    op.apply(basis[j], w);
    const double a = dot(w, basis[j]);
    alpha.push_back(a);
    axpy(-a, basis[j], w);
    if (j > 0) axpy(-beta[j - 1], basis[j - 1], w);
    // Full reorthogonalization, two passes (twice is enough — Parlett).
    orthogonalize_against(w, basis, basis.size());
    orthogonalize_against(w, basis, basis.size());

    const double b = norm2(w);
    const std::size_t built = alpha.size();

    // Convergence test on the current tridiagonal Rayleigh quotient.
    if (built >= k) {
      std::vector<double> off(beta.begin(), beta.end());
      EigenResult tri = tridiagonal_eigen(std::vector<double>(alpha), off,
                                          options.order);
      const double lam_scale =
          std::max(std::fabs(tri.values.front()), 1e-300);
      bool all_converged = true;
      for (std::size_t i = 0; i < k; ++i) {
        // Residual bound ‖A x - λ x‖ = |β_m| * |last component of T-eigvec|.
        const double resid =
            b * std::fabs(tri.vectors(built - 1, i));
        if (resid > options.tolerance * lam_scale) {
          all_converged = false;
          break;
        }
      }
      // An exhausted Krylov space (b ≈ 0) yields exact Ritz pairs with zero
      // residuals, but can silently miss *multiplicities* of degenerate
      // eigenvalues (the space from one start vector sees each eigenspace
      // once). Do not stop on the trivial-residual signal alone — restart
      // with a fresh direction below and keep enlarging the space.
      if ((all_converged && b > 1e-12) || built == max_iter) {
        // Assemble Ritz vectors X = V Z_k.
        result.values.assign(tri.values.begin(), tri.values.begin() + k);
        result.vectors = DenseMatrix(n, k);
        for (std::size_t row = 0; row < n; ++row) {
          for (std::size_t col = 0; col < k; ++col) {
            double acc = 0.0;
            for (std::size_t row_i = 0; row_i < built; ++row_i) {
              acc += basis[row_i][row] * tri.vectors(row_i, col);
            }
            result.vectors(row, col) = acc;
          }
        }
        result.iterations = built;
        result.converged = all_converged;
        span.attr("iterations", built);
        span.attr("converged", result.converged ? "true" : "false");
        return result;
      }
    }

    if (b <= 1e-12) {
      // Invariant subspace exhausted before convergence: restart with a fresh
      // orthogonal direction (beta = 0 keeps T block-diagonal and valid).
      restarts.add();
      beta.push_back(0.0);
      basis.push_back(fresh_direction(n, basis, basis.size(), rng));
    } else {
      beta.push_back(b);
      scale(w, 1.0 / b);
      basis.push_back(w);
    }
  }

  failures.add();
  throw util::ConvergenceError(
      "lanczos: iteration limit reached unexpectedly");
}

}  // namespace sgp::linalg
