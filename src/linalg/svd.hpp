// Singular value decompositions of tall dense matrices.
//
// The published matrix Ỹ is n×m with m ≪ n (m is the projection dimension,
// typically 100–500). Analysts recover spectral structure from its top-k
// left singular vectors, so we provide:
//  - svd_gram: exact thin SVD via the m×m Gram matrix (cheap when m small);
//  - randomized_svd: Halko–Martinsson–Tropp sketch, for the ablation where
//    m is large or only a few factors are needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::linalg {

/// Thin truncated SVD A ≈ U diag(σ) Vᵀ with k factors.
/// `u` is rows×k, `v` is cols×k, σ descending.
struct SvdResult {
  DenseMatrix u;
  std::vector<double> singular_values;
  DenseMatrix v;
};

/// Exact top-k SVD of `a` computed from the Gram matrix AᵀA (cost
/// O(rows·cols² + cols³)). Requires 1 <= k <= cols. Singular vectors for
/// numerically zero singular values are returned as zero columns of U.
SvdResult svd_gram(const DenseMatrix& a, std::size_t k);

/// Randomized top-k SVD (Halko et al. 2011): Gaussian sketch of size
/// k+oversample, `power_iters` subspace iterations for spectral decay.
/// Accurate to the k-th spectral gap with overwhelming probability.
SvdResult randomized_svd(const DenseMatrix& a, std::size_t k,
                         std::size_t oversample = 10,
                         std::size_t power_iters = 2, std::uint64_t seed = 7);

}  // namespace sgp::linalg
