// Durable append: records a crash-resume path may later trust must reach
// the disk, not just the stream buffer.
//
// A flush() moves bytes from the process into the kernel page cache — it
// survives a process crash but not a machine crash. The checkpoint and
// lease logs (core/sharded_publish.cpp, core/distributed_publish.cpp)
// vouch for payload bytes in *other* files, so a record that outlives a
// power loss while the payload did not would resume into garbage.
// DurableAppender therefore fsyncs after every append: on POSIX each
// append() is write(2)-to-completion followed by fsync(2); elsewhere it
// degrades to buffered stdio with fflush (no stronger primitive exists
// portably, and the gate keeps the build working).
#pragma once

#include <string>
#include <string_view>

namespace sgp::util {

/// Append-only file handle whose append() does not return until the bytes
/// are synced. One fd held open across appends — per-record open/close
/// would double the syscall cost of every checkpoint. Not thread-safe;
/// each log has exactly one writer by design.
class DurableAppender {
 public:
  DurableAppender() = default;
  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;
  /// Closes silently (errors already surfaced by append / explicit close).
  ~DurableAppender();

  /// Opens `path` for appending, creating it if absent; `truncate` discards
  /// existing content first. Throws util::IoError.
  void open(const std::string& path, bool truncate);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Writes all of `data` and fsyncs. Throws util::IoError on either
  /// failure — after which the tail of the file must be treated as torn.
  void append(std::string_view data);

  /// append() with a trailing newline (record logs are line-oriented).
  void append_line(std::string_view line);

  /// Closes the fd, reporting a failed close as util::IoError (a delayed
  /// write error on some filesystems). Idempotent.
  void close();

 private:
  int fd_ = -1;           ///< POSIX fd; -1 when closed
  void* stream_ = nullptr;  ///< non-POSIX fallback: a buffered FILE*
  std::string path_;
};

/// One-shot convenience: open-append-fsync-close in a single call, for
/// callers without a long-lived log (throws util::IoError).
void durable_append(const std::string& path, std::string_view data);

}  // namespace sgp::util
