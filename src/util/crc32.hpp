// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte strings.
//
// Shared by the durable on-disk logs — the budget ledger (core/ledger.cpp)
// and the shard checkpoint log (core/sharded_publish.cpp) — whose text
// records each carry a per-record checksum so a torn or bit-flipped line is
// detected on load instead of silently corrupting recovery.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sgp::util {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `bytes`, standard init/final xor (matches zlib's crc32).
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = detail::crc32_table()[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sgp::util
