#include "util/cli.hpp"

#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::util {
namespace {

bool parse_bool(const std::string& text) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  throw PreconditionError("not a boolean: '" + text + "'");
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  require(argc >= 1, "argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string CliArgs::get_string(const std::string& key,
                                const std::string& def) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  try {
    return parse_bool(it->second);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + key + " expects a boolean, got '" +
                                it->second + "'");
  }
}

}  // namespace sgp::util
