// Tiny command-line flag parser used by the examples and bench harnesses.
//
// Accepts `--key=value`, `--key value`, and bare `--flag` (boolean true).
// Unknown positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgp::util {

/// Parsed command line. Typed getters fall back to the supplied default when
/// the flag is absent and throw std::invalid_argument on a malformed value.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sgp::util
