#include "util/periodic.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace sgp::util {

struct PeriodicTask::Impl {
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  std::function<void()> tick;
};

PeriodicTask::PeriodicTask() = default;

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(std::uint64_t interval_ms,
                         std::function<void()> tick) {
  if (impl_ != nullptr) return;
  impl_ = std::make_unique<Impl>();
  impl_->tick = std::move(tick);
  impl_->thread = std::thread([impl = impl_.get(), interval_ms] {
    std::unique_lock<std::mutex> lock(impl->mutex);
    while (!impl->stopping) {
      impl->cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                        [impl] { return impl->stopping; });
      if (impl->stopping) break;
      // The callback runs unlocked so stop() can always make progress;
      // `tick` stays valid because stop() joins before clearing impl_.
      lock.unlock();
      impl->tick();
      lock.lock();
    }
  });
}

void PeriodicTask::stop() {
  if (impl_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  impl_.reset();
}

}  // namespace sgp::util
