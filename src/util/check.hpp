// Lightweight precondition / invariant checking used at sgp API boundaries.
//
// Per C++ Core Guidelines I.6 / E.2 we surface contract violations as
// exceptions so callers of the public API get a diagnosable error instead of
// undefined behaviour. Hot inner loops use plain assert() instead.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace sgp::util {

/// Throws std::invalid_argument with `msg` if `cond` is false.
/// Use for caller-supplied argument validation.
inline void require(bool cond, std::string_view msg) {
  if (!cond) throw std::invalid_argument(std::string(msg));
}

/// Throws std::runtime_error with `msg` if `cond` is false.
/// Use for internal invariants and environmental failures (IO, convergence).
inline void ensure(bool cond, std::string_view msg) {
  if (!cond) throw std::runtime_error(std::string(msg));
}

}  // namespace sgp::util
