// Lightweight precondition / invariant checking used at sgp API boundaries.
//
// Per C++ Core Guidelines I.6 / E.2 we surface contract violations as
// exceptions so callers of the public API get a diagnosable error instead of
// undefined behaviour. Hot inner loops use plain assert() instead.
//
// Both forms throw into the typed taxonomy (util/errors.hpp), so the CLI
// exit-code contract holds without string matching:
//
//   require / SGP_REQUIRE -> PreconditionError  (caller bug, usage exit 2)
//   ensure  / SGP_CHECK   -> InternalError      (library bug, exit 5)
//
// The macro forms additionally prefix the failing file:line, which is what
// you want for invariants that can only trip on a code bug. Environmental
// failures (IO, parse, convergence, budget) should throw their specific
// taxonomy type directly rather than funnel through ensure.
#pragma once

#include <string>
#include <string_view>

#include "util/errors.hpp"

namespace sgp::util {

/// Throws PreconditionError (a std::invalid_argument) with `msg` if `cond`
/// is false. Use for caller-supplied argument validation.
inline void require(bool cond, std::string_view msg) {
  if (!cond) throw PreconditionError(std::string(msg));
}

/// Throws InternalError (an SgpError, kind kInternal) with `msg` if `cond`
/// is false. Use for internal invariants.
inline void ensure(bool cond, std::string_view msg) {
  if (!cond) throw InternalError(std::string(msg));
}

namespace detail {
[[noreturn]] inline void throw_require(const char* file, int line,
                                       std::string_view msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": " + std::string(msg));
}
[[noreturn]] inline void throw_check(const char* file, int line,
                                     std::string_view msg) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) + ": " +
                      std::string(msg));
}
}  // namespace detail

}  // namespace sgp::util

/// Caller-contract check with file:line context; throws PreconditionError.
#define SGP_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sgp::util::detail::throw_require(__FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)

/// Library-invariant check with file:line context; throws InternalError.
#define SGP_CHECK(cond, msg)                                        \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sgp::util::detail::throw_check(__FILE__, __LINE__, (msg));  \
    }                                                               \
  } while (false)
