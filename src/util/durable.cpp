#include "util/durable.hpp"

#include <cerrno>
#include <cstring>

#include "util/errors.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SGP_DURABLE_POSIX 1
#else
#include <cstdio>
#endif

namespace sgp::util {

#ifdef SGP_DURABLE_POSIX

DurableAppender::~DurableAppender() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableAppender::open(const std::string& path, bool truncate) {
  close();
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw IoError("durable append: cannot open " + path + ": " +
                  std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
}

void DurableAppender::append(std::string_view data) {
  if (fd_ < 0) throw IoError("durable append: file not open");
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("durable append: write to " + path_ + " failed: " +
                    std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw IoError("durable append: fsync of " + path_ + " failed: " +
                  std::strerror(errno));
  }
}

void DurableAppender::close() {
  if (fd_ < 0) return;
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    throw IoError("durable append: close of " + path_ + " failed: " +
                  std::strerror(errno));
  }
}

#else  // !SGP_DURABLE_POSIX — buffered fallback, flush but no fsync.

DurableAppender::~DurableAppender() {
  if (stream_ != nullptr) std::fclose(static_cast<std::FILE*>(stream_));
}

void DurableAppender::open(const std::string& path, bool truncate) {
  close();
  stream_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (stream_ == nullptr) {
    throw IoError("durable append: cannot open " + path);
  }
  fd_ = 0;
  path_ = path;
}

void DurableAppender::append(std::string_view data) {
  if (stream_ == nullptr) throw IoError("durable append: file not open");
  std::FILE* f = static_cast<std::FILE*>(stream_);
  const bool ok =
      std::fwrite(data.data(), 1, data.size(), f) == data.size() &&
      std::fflush(f) == 0;
  if (!ok) throw IoError("durable append: write to " + path_ + " failed");
}

void DurableAppender::close() {
  if (stream_ == nullptr) return;
  std::FILE* f = static_cast<std::FILE*>(stream_);
  stream_ = nullptr;
  fd_ = -1;
  if (std::fclose(f) != 0) {
    throw IoError("durable append: close of " + path_ + " failed");
  }
}

#endif  // SGP_DURABLE_POSIX

void DurableAppender::append_line(std::string_view line) {
  std::string with_newline;
  with_newline.reserve(line.size() + 1);
  with_newline.assign(line);
  with_newline.push_back('\n');
  append(with_newline);
}

void durable_append(const std::string& path, std::string_view data) {
  DurableAppender appender;
  appender.open(path, /*truncate=*/false);
  appender.append(data);
  appender.close();
}

}  // namespace sgp::util
