#include "util/subprocess.hpp"

#include <cerrno>
#include <cstring>

#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define SGP_SUBPROCESS_POSIX 1

extern char** environ;
#endif

namespace sgp::util {

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), status_(other.status_) {
  other.pid_ = -1;
  other.status_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    reap_on_teardown();
    pid_ = other.pid_;
    status_ = other.status_;
    other.pid_ = -1;
    other.status_.reset();
  }
  return *this;
}

Subprocess::~Subprocess() { reap_on_teardown(); }

void Subprocess::reap_on_teardown() noexcept {
  if (pid_ < 0 || status_.has_value()) return;
  kill_hard();
  try {
    wait();
  } catch (const IoError&) {
    // Teardown must not throw; the child is already signaled.
  }
}

#ifdef SGP_SUBPROCESS_POSIX

namespace {

Subprocess::ExitStatus decode_status(int raw) {
  Subprocess::ExitStatus status;
  if (WIFSIGNALED(raw)) {
    status.signaled = true;
    status.code = WTERMSIG(raw);
  } else {
    status.signaled = false;
    status.code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  }
  return status;
}

}  // namespace

Subprocess Subprocess::spawn(const Options& options) {
  require(!options.argv.empty() && !options.argv[0].empty(),
          "subprocess: argv[0] (program path) required");
  fault_point(fault_points::kProcSpawn);

  // Build argv / envp before forking — allocation in the child between
  // fork and exec is what we are avoiding.
  std::vector<char*> argv;
  argv.reserve(options.argv.size() + 1);
  for (const std::string& a : options.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  std::vector<char*> envp;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* eq = std::strchr(*e, '=');
    const std::size_t name_len =
        eq != nullptr ? static_cast<std::size_t>(eq - *e) : std::strlen(*e);
    const bool overridden = [&] {
      for (const auto& [name, value] : options.env) {
        if (name.size() == name_len &&
            std::memcmp(name.data(), *e, name_len) == 0) {
          return true;
        }
      }
      return false;
    }();
    if (!overridden) envp.push_back(*e);
  }
  for (const auto& [name, value] : options.env) {
    env_storage.push_back(name + "=" + value);
  }
  for (std::string& entry : env_storage) {
    envp.push_back(entry.data());
  }
  envp.push_back(nullptr);

  const ::pid_t child = ::fork();
  if (child < 0) {
    throw IoError("subprocess: fork failed: " +
                  std::string(std::strerror(errno)));
  }
  if (child == 0) {
    ::execve(options.argv[0].c_str(), argv.data(), envp.data());
    // Exec failed; 127 is the shell convention for "command not found /
    // not executable", which try_wait surfaces to the coordinator.
    ::_exit(127);
  }

  Subprocess proc;
  proc.pid_ = child;
  return proc;
}

std::optional<Subprocess::ExitStatus> Subprocess::try_wait() {
  if (status_.has_value()) return status_;
  if (pid_ < 0) return std::nullopt;
  int raw = 0;
  const ::pid_t r = ::waitpid(static_cast<::pid_t>(pid_), &raw, WNOHANG);
  if (r == 0) return std::nullopt;
  if (r < 0) {
    throw IoError("subprocess: waitpid failed: " +
                  std::string(std::strerror(errno)));
  }
  status_ = decode_status(raw);
  return status_;
}

Subprocess::ExitStatus Subprocess::wait() {
  if (status_.has_value()) return *status_;
  if (pid_ < 0) throw IoError("subprocess: no child attached");
  int raw = 0;
  ::pid_t r;
  do {
    r = ::waitpid(static_cast<::pid_t>(pid_), &raw, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    throw IoError("subprocess: waitpid failed: " +
                  std::string(std::strerror(errno)));
  }
  status_ = decode_status(raw);
  return *status_;
}

void Subprocess::kill_hard() {
  if (pid_ < 0 || status_.has_value()) return;
  ::kill(static_cast<::pid_t>(pid_), SIGKILL);
}

#else  // !SGP_SUBPROCESS_POSIX

Subprocess Subprocess::spawn(const Options& options) {
  require(!options.argv.empty() && !options.argv[0].empty(),
          "subprocess: argv[0] (program path) required");
  fault_point(fault_points::kProcSpawn);
  throw IoError("subprocess: not supported on this platform");
}

std::optional<Subprocess::ExitStatus> Subprocess::try_wait() {
  return std::nullopt;
}

Subprocess::ExitStatus Subprocess::wait() {
  throw IoError("subprocess: not supported on this platform");
}

void Subprocess::kill_hard() {}

#endif  // SGP_SUBPROCESS_POSIX

bool Subprocess::running() {
  if (pid_ < 0 || status_.has_value()) return false;
  return !try_wait().has_value();
}

}  // namespace sgp::util
