// Aligned text tables for bench/example output. The bench harnesses print the
// same rows/series the paper's tables and figures report, so output needs to
// be human-readable and easy to diff/plot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sgp::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule, e.g.:
///
///   epsilon  nmi_rp  nmi_lnpp
///   -------  ------  --------
///   0.10     0.4312  0.0712
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls append cells to it.
  TextTable& new_row();
  TextTable& add(std::string cell);
  TextTable& add(double value, int precision = 4);
  TextTable& add(std::int64_t value);
  TextTable& add(std::size_t value);

  /// Renders the table (header, rule, rows) with two-space column gaps.
  [[nodiscard]] std::string to_string() const;

  /// Renders rows as comma-separated values (header first) for plotting.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgp::util
