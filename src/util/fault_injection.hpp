// Deterministic fault injection for robustness testing.
//
// Production code declares *named fault points* at failure-prone sites
// (IO, ledger appends, solver iterations, large allocations) by calling
// `fault_point("name")`. In normal operation that is a single relaxed
// atomic load — effectively free, even inside solver loops. A test (or an
// operator, via the SGP_FAULT_SPEC environment variable) can *arm* a point
// so that the call throws the error the real failure would produce:
//
//   point prefix      effect when fired
//   io.*, ledger.*    throws util::IoError
//   lease.*           throws util::IoError
//   solver.*          throws util::ConvergenceError
//   alloc*            throws std::bad_alloc
//   proc.worker.exit  terminates the process immediately (std::_Exit 137,
//                     the shell code for SIGKILL) — the "worker died
//                     mid-shard" chaos primitive; no destructors, flushes,
//                     or checkpoint records run
//   proc.* (other)    throws util::IoError
//
// Failures are seed-driven and replay exactly: the n-th hit of a point
// fires (or not) as a pure function of the armed config, never of wall
// clock, thread timing, or global RNG state.
//
// The standard points threaded through the library:
//   io.read           graph/io.cpp read paths, core/serialization.cpp load
//   io.write          graph/io.cpp write paths, core/serialization.cpp save
//   io.shard.read     graph/shard_loader.cpp streaming shard passes
//   io.shard.write    core/sharded_publish.cpp shard payload append,
//                     core/distributed_publish.cpp shard concatenation
//   io.shard.checkpoint  core/sharded_publish.cpp checkpoint record append
//   ledger.append     core/ledger.cpp durable append
//   lease.acquire     core/distributed_publish.cpp coordinator lease-record
//                     append (retried under util/retry.hpp)
//   lease.heartbeat   core/distributed_publish.cpp worker heartbeat append
//   proc.spawn        util/subprocess.cpp process creation
//   proc.worker.exit  core/distributed_publish.cpp worker shard loop (hard
//                     process exit — see the effect table above)
//   solver.iteration  linalg/lanczos.cpp and linalg/power_iteration.cpp loops
//   alloc             core/projection.cpp projection-matrix allocation
//
// SGP_FAULT_SPEC grammar (documented in docs/robustness.md):
//   spec    := entry (',' entry)*
//   entry   := point (':' key '=' value)*
//   key     := 'after' | 'prob' | 'seed' | 'count'
// e.g.  SGP_FAULT_SPEC="ledger.append:after=2:count=1,io.read:prob=0.01:seed=9"
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sgp::util {

/// When and how often an armed fault point fires.
struct FaultConfig {
  /// Skip this many hits before the point becomes eligible to fire.
  std::uint64_t after = 0;
  /// Chance that an eligible hit fires, drawn deterministically from `seed`
  /// and the per-point hit counter. 1.0 = every eligible hit.
  double probability = 1.0;
  /// Seed for the probability draws; same seed + same hit sequence ⇒ same
  /// failure sequence.
  std::uint64_t seed = 0x5eedfa17ULL;
  /// Fire at most this many times; -1 = unlimited.
  std::int64_t max_fires = -1;
};

/// Arms `point` with `config`, resetting its hit/fire counters.
void arm_fault(std::string_view point, FaultConfig config = {});

/// Disarms `point` (no-op if unknown). Counters remain readable.
void disarm_fault(std::string_view point);

/// Disarms every point. Counters remain readable.
void disarm_all_faults();

/// Hits observed while `point` was armed (0 if never armed).
[[nodiscard]] std::uint64_t fault_hits(std::string_view point);

/// Times `point` actually fired (threw) since it was last armed.
[[nodiscard]] std::uint64_t fault_fires(std::string_view point);

/// Declares a fault point. No-op unless `point` is armed; throws the
/// mapped error type (see header comment) when the armed config says the
/// current hit fires. Thread-safe.
void fault_point(std::string_view point);

/// Parses a fault spec string (grammar above) and arms every entry.
/// Returns the number of points armed. Throws ParseError on bad grammar.
std::size_t arm_faults_from_spec(std::string_view spec);

/// Arms faults from the SGP_FAULT_SPEC environment variable, if set.
/// Called automatically (once) by the first fault_point() evaluation, so
/// binaries need no explicit setup. Safe to call repeatedly.
void arm_faults_from_env();

}  // namespace sgp::util
