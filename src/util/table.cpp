#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace sgp::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  ensure(!rows_.empty(), "call new_row() before add()");
  ensure(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

TextTable& TextTable::add(std::int64_t value) {
  return add(std::to_string(value));
}

TextTable& TextTable::add(std::size_t value) {
  return add(std::to_string(value));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size(), ' ');
      out << (c + 1 < headers_.size() ? "  " : "");
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-') << (c + 1 < headers_.size() ? "  " : "");
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 < row.size() ? "," : "");
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace sgp::util
