// Minimal POSIX subprocess handle for the coordinator/worker publish mode
// (core/distributed_publish.hpp).
//
// Spawns a child via fork+execve with an optionally amended environment,
// then supports exactly the lifecycle a lease coordinator needs: poll for
// exit without blocking, wait, and SIGKILL a worker whose lease expired.
// Nothing else — no pipes, no ptys; workers communicate through files,
// which keeps the coordinator loop free of pipe-buffer deadlocks.
//
// Spawning declares the `proc.spawn` fault point, so chaos tests can make
// process creation fail deterministically (it surfaces as util::IoError,
// the same error a real fork/exec failure produces).
//
// On non-POSIX platforms every operation throws util::IoError — the
// distributed mode degrades to in-process execution there (the coordinator
// treats an unspawnable worker as a permanently lost one).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sgp::util {

class Subprocess {
 public:
  struct Options {
    /// argv[0] is the program path (also what is executed — no PATH
    /// search). Must be non-empty.
    std::vector<std::string> argv;
    /// Environment variables set (or overridden) in the child on top of
    /// the parent environment. A variable set to "" is still set — an
    /// empty SGP_FAULT_SPEC, for example, disarms an inherited spec.
    std::vector<std::pair<std::string, std::string>> env;
  };

  /// How a finished child ended. When `signaled`, `code` is the signal
  /// number (e.g. 9 for SIGKILL); otherwise the exit code.
  struct ExitStatus {
    bool signaled = false;
    int code = 0;
    [[nodiscard]] bool clean() const { return !signaled && code == 0; }
  };

  Subprocess() = default;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  /// A still-running child is SIGKILLed and reaped: a dropped handle must
  /// never leak an orphan worker holding a lease.
  ~Subprocess();

  /// Forks and execs. Throws util::IoError if the fork fails (or the
  /// `proc.spawn` fault point fires). An exec failure inside the child
  /// surfaces as exit code 127 through try_wait()/wait().
  static Subprocess spawn(const Options& options);

  /// True while a child is attached and not yet reaped.
  [[nodiscard]] bool running();

  [[nodiscard]] std::int64_t pid() const { return pid_; }

  /// Non-blocking reap: the exit status if the child has finished (cached
  /// thereafter), std::nullopt while it is still running.
  std::optional<ExitStatus> try_wait();

  /// Blocking reap. Throws util::IoError if no child is attached.
  ExitStatus wait();

  /// SIGKILL — the "machine crashed under the worker" primitive. No-op
  /// once the child is reaped. The caller still try_wait()s/wait()s.
  void kill_hard();

 private:
  void reap_on_teardown() noexcept;

  std::int64_t pid_ = -1;
  std::optional<ExitStatus> status_;
};

}  // namespace sgp::util
