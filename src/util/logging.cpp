#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace sgp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, std::string_view msg) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&tt, &tm);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %02d:%02d:%02d.%03d] %.*s\n", level_name(level),
               tm.tm_hour, tm.tm_min, tm.tm_sec, static_cast<int>(ms),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace sgp::util
