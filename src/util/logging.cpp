#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace sgp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

char ascii_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Applies SGP_LOG_LEVEL once, lazily, before the first threshold read. An
/// explicit set_log_level() also marks initialization done, so the explicit
/// call always wins regardless of ordering.
std::once_flag g_env_once;

void init_level_from_env() {
  const char* env = std::getenv("SGP_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  LogLevel parsed;
  if (parse_log_level(env, parsed)) {
    g_level.store(parsed);
  } else {
    // Mis-set environment should be loud, not silent: one warning line.
    std::fprintf(stderr,
                 "[WARN ] SGP_LOG_LEVEL='%s' is not "
                 "debug|info|warn|error|off; keeping default\n",
                 env);
  }
}

void ensure_env_applied() {
  std::call_once(g_env_once, init_level_from_env);
}

}  // namespace

bool parse_log_level(std::string_view text, LogLevel& out) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) lower.push_back(ascii_lower(c));
  if (lower == "debug") {
    out = LogLevel::kDebug;
  } else if (lower == "info") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = LogLevel::kWarn;
  } else if (lower == "error") {
    out = LogLevel::kError;
  } else if (lower == "off") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void set_log_level(LogLevel level) {
  // Claim the env slot first so a concurrent first log() cannot overwrite
  // the explicit choice with the environment value.
  std::call_once(g_env_once, [] {});
  g_level.store(level);
}

LogLevel log_level() {
  ensure_env_applied();
  return g_level.load();
}

void log(LogLevel level, std::string_view msg) {
  ensure_env_applied();
  if (level < g_level.load() || level == LogLevel::kOff) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&tt, &tm);

  // One line, one buffer, one write: fwrite locks the stream internally, so
  // concurrent workers cannot interleave within a line.
  char prefix[40];
  const int prefix_len =
      std::snprintf(prefix, sizeof(prefix), "[%s %02d:%02d:%02d.%03d] ",
                    level_name(level), tm.tm_hour, tm.tm_min, tm.tm_sec,
                    static_cast<int>(ms));
  std::string line;
  line.reserve(static_cast<std::size_t>(prefix_len) + msg.size() + 1);
  line.append(prefix, static_cast<std::size_t>(prefix_len));
  line.append(msg);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace sgp::util
