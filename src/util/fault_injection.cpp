#include "util/fault_injection.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::util {
namespace {

struct PointState {
  FaultConfig config;
  bool armed = false;
  std::uint64_t hits = 0;   // hits observed while armed
  std::uint64_t fires = 0;  // times the point threw
};

// Fast-path gate. kUninit forces a one-time SGP_FAULT_SPEC check; after
// that fault_point() is a single relaxed load while nothing is armed.
enum Mode : int { kUninit = 0, kIdle = 1, kArmed = 2 };

std::atomic<int> g_mode{kUninit};
std::mutex g_mutex;

std::map<std::string, PointState, std::less<>>& points() {
  static std::map<std::string, PointState, std::less<>> instance;
  return instance;
}

void refresh_mode_locked() {
  for (const auto& [name, state] : points()) {
    if (state.armed) {
      g_mode.store(kArmed, std::memory_order_relaxed);
      return;
    }
  }
  g_mode.store(kIdle, std::memory_order_relaxed);
}

// SplitMix64 (inlined here: util must not depend on random/). Drives the
// probability draws so a fired/skipped sequence is a pure function of
// (seed, hit index).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

[[noreturn]] void throw_for_point(const std::string& point) {
  if (point.rfind("alloc", 0) == 0) throw std::bad_alloc();
  if (point.rfind("solver", 0) == 0) {
    throw ConvergenceError("fault injected: " + point);
  }
  if (point.rfind("proc.worker.exit", 0) == 0) {
    // The chaos primitive for "a worker process was SIGKILLed mid-shard":
    // no exception, no unwinding, no flushes — the process is simply gone,
    // exactly as the coordinator would observe a real kill (137 is the
    // shell's 128+SIGKILL convention).
    std::_Exit(137);
  }
  throw IoError("fault injected: " + point);
}

}  // namespace

void arm_fault(std::string_view point, FaultConfig config) {
  require(!point.empty(), "fault injection: point name must be non-empty");
  require(config.probability >= 0.0 && config.probability <= 1.0,
          "fault injection: probability must be in [0, 1]");
  const std::lock_guard<std::mutex> lock(g_mutex);
  PointState& state = points()[std::string(point)];
  state.config = config;
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
  g_mode.store(kArmed, std::memory_order_relaxed);
}

void disarm_fault(std::string_view point) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = points().find(point);
  if (it != points().end()) it->second.armed = false;
  refresh_mode_locked();
}

void disarm_all_faults() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  for (auto& [name, state] : points()) state.armed = false;
  g_mode.store(kIdle, std::memory_order_relaxed);
}

std::uint64_t fault_hits(std::string_view point) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = points().find(point);
  return it == points().end() ? 0 : it->second.hits;
}

std::uint64_t fault_fires(std::string_view point) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = points().find(point);
  return it == points().end() ? 0 : it->second.fires;
}

void fault_point(std::string_view point) {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode == kIdle) return;
  if (mode == kUninit) {
    arm_faults_from_env();
    mode = g_mode.load(std::memory_order_relaxed);
    if (mode == kIdle) return;
  }

  std::string name;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = points().find(point);
    if (it == points().end() || !it->second.armed) return;
    PointState& state = it->second;
    const std::uint64_t hit = state.hits++;
    const FaultConfig& cfg = state.config;
    if (hit < cfg.after) return;
    if (cfg.max_fires >= 0 &&
        state.fires >= static_cast<std::uint64_t>(cfg.max_fires)) {
      return;
    }
    if (cfg.probability < 1.0 &&
        uniform01(splitmix64(cfg.seed ^ hit)) >= cfg.probability) {
      return;
    }
    ++state.fires;
    name = it->first;
  }
  obs::counter(obs::names::kFaultTrips).add();
  throw_for_point(name);  // outside the lock: what() construction can throw
}

std::size_t arm_faults_from_spec(std::string_view spec) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    std::size_t colon = std::min(entry.find(':'), entry.size());
    const std::string_view point = entry.substr(0, colon);
    if (point.empty()) {
      throw ParseError("fault spec: empty point name in '" +
                       std::string(entry) + "'");
    }
    FaultConfig cfg;
    std::size_t opt_pos = colon;
    while (opt_pos < entry.size()) {
      ++opt_pos;  // skip ':'
      const std::size_t next =
          std::min(entry.find(':', opt_pos), entry.size());
      const std::string_view kv = entry.substr(opt_pos, next - opt_pos);
      opt_pos = next;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == kv.size()) {
        throw ParseError("fault spec: expected key=value, got '" +
                         std::string(kv) + "'");
      }
      const std::string_view key = kv.substr(0, eq);
      const std::string value(kv.substr(eq + 1));
      try {
        std::size_t used = 0;
        if (key == "after") {
          cfg.after = std::stoull(value, &used);
        } else if (key == "prob") {
          cfg.probability = std::stod(value, &used);
        } else if (key == "seed") {
          cfg.seed = std::stoull(value, &used);
        } else if (key == "count") {
          cfg.max_fires = std::stoll(value, &used);
        } else {
          throw ParseError("fault spec: unknown key '" + std::string(key) +
                           "'");
        }
        if (used != value.size()) {
          throw ParseError("fault spec: trailing garbage in value '" + value +
                           "'");
        }
      } catch (const ParseError&) {
        throw;
      } catch (const std::exception&) {
        throw ParseError("fault spec: bad value '" + value + "' for key '" +
                         std::string(key) + "'");
      }
    }
    if (cfg.probability < 0.0 || cfg.probability > 1.0) {
      throw ParseError("fault spec: prob must be in [0, 1]");
    }
    arm_fault(point, cfg);
    ++armed;
  }
  return armed;
}

void arm_faults_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("SGP_FAULT_SPEC");
    if (spec != nullptr && *spec != '\0') {
      arm_faults_from_spec(spec);
    } else {
      const std::lock_guard<std::mutex> lock(g_mutex);
      refresh_mode_locked();
    }
  });
  // A later call with nothing armed must still settle the gate out of
  // kUninit so fault_point() stays on its fast path.
  if (g_mode.load(std::memory_order_relaxed) == kUninit) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    refresh_mode_locked();
  }
}

}  // namespace sgp::util
