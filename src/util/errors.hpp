// Typed error taxonomy for sgp API boundaries.
//
// Every failure the library can surface falls into one of a small set of
// categories so that callers (and the CLI tools, which map these onto
// documented exit codes — see docs/robustness.md) can react without string
// matching on what(). All types derive from SgpError, which itself derives
// from std::runtime_error, so pre-taxonomy callers that catch
// std::runtime_error keep working unchanged.
//
// Caller mistakes (bad arguments to a function) are PreconditionError,
// thrown via util::require / SGP_REQUIRE. It derives from
// std::invalid_argument rather than SgpError — they are bugs in the
// calling code, not environmental failures, so the CLI maps them to the
// usage exit code and pre-taxonomy callers that catch
// std::invalid_argument keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace sgp::util {

/// Coarse category of an SgpError, usable for switch-style dispatch
/// (e.g. the CLI exit-code mapping).
enum class ErrorKind {
  kParse,            ///< malformed input data (edge lists, release headers)
  kIo,               ///< environmental IO failure (open/read/write/rename)
  kConvergence,      ///< an iterative solver exhausted its budget
  kBudgetExhausted,  ///< a release would exceed the session privacy cap
  kLedgerCorrupt,    ///< budget ledger failed validation on load
  kResource,         ///< the host ran out of a resource (memory, …)
  kInternal,         ///< a library invariant broke — a bug, not the caller
};

/// Root of the sgp error taxonomy.
class SgpError : public std::runtime_error {
 public:
  SgpError(ErrorKind kind, const std::string& msg)
      : std::runtime_error(msg), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Input data did not conform to its format (recoverable: fix the input).
class ParseError : public SgpError {
 public:
  explicit ParseError(const std::string& msg)
      : SgpError(ErrorKind::kParse, msg) {}
};

/// The environment failed us: cannot open/read/write/rename a file.
class IoError : public SgpError {
 public:
  explicit IoError(const std::string& msg) : SgpError(ErrorKind::kIo, msg) {}
};

/// An iterative solver (Lanczos, power iteration, Jacobi) did not converge
/// within its budget. Callers may retry with a larger budget or fall back
/// to a direct method (see cluster/spectral.cpp).
class ConvergenceError : public SgpError {
 public:
  explicit ConvergenceError(const std::string& msg)
      : SgpError(ErrorKind::kConvergence, msg) {}
};

/// Publishing was refused because it would push the session past its
/// total (ε, δ) cap. Nothing was released and no budget was charged.
class BudgetExhaustedError : public SgpError {
 public:
  explicit BudgetExhaustedError(const std::string& msg)
      : SgpError(ErrorKind::kBudgetExhausted, msg) {}
};

/// A budget ledger failed validation (bad magic/version, checksum mismatch,
/// truncation, out-of-order records, or configuration mismatch). The ledger
/// is never partially loaded: the session refuses to start.
class LedgerCorruptError : public SgpError {
 public:
  explicit LedgerCorruptError(const std::string& msg)
      : SgpError(ErrorKind::kLedgerCorrupt, msg) {}
};

/// The host denied a resource the operation needs — today always memory
/// (std::bad_alloc surfaced from a sized allocation such as the n×m release
/// or a materialized projection), typed so CLI callers get the documented
/// internal-error exit instead of an anonymous terminate.
class ResourceError : public SgpError {
 public:
  explicit ResourceError(const std::string& msg)
      : SgpError(ErrorKind::kResource, msg) {}
};

/// A library invariant failed (e.g. an enum value outside its domain
/// reached a dispatch). Always a bug in sgp or memory corruption — callers
/// cannot fix it by changing inputs.
class InternalError : public SgpError {
 public:
  explicit InternalError(const std::string& msg)
      : SgpError(ErrorKind::kInternal, msg) {}
};

/// A caller violated a documented precondition (util::require /
/// SGP_REQUIRE). Deliberately outside the SgpError hierarchy: deriving
/// from std::invalid_argument keeps the CLI usage-error exit code (2) and
/// every pre-taxonomy `catch (std::invalid_argument)` working.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& msg)
      : std::invalid_argument(msg) {}
};

}  // namespace sgp::util
