#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/errors.hpp"

namespace sgp::util {
namespace {

[[noreturn]] void wrong_kind(const char* wanted) {
  // Calling the wrong typed accessor is a caller bug, not bad input data.
  throw InternalError(std::string("json: value is not a ") + wanted);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw ParseError("json: offset " + std::to_string(pos_) +
                       ": unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      JsonValue value = parse_value();
      if (!members.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            ++pos_;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Encode as UTF-8. Surrogate pairs are not needed by any producer
          // in this repo; reject them rather than emit broken UTF-8.
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected a digit");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) fail("malformed number '" + token + "'");
      return JsonValue::make_number(value);
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) wrong_kind("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) wrong_kind("object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_number(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace sgp::util
