// Fixed-size worker pool with a blocking task queue, plus a parallel_for
// helper used by the linear-algebra kernels (SpMM, projection) so that
// publishing large graphs scales with available cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sgp::util {

/// A simple RAII thread pool. Tasks are `std::function<void()>`; submit()
/// returns a future for completion/exception propagation. Destruction joins
/// all workers after draining the queue.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1). Defaults to hardware
  /// concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the returned future resolves when it has run (or rethrows
  /// the exception it raised).
  std::future<void> submit(std::function<void()> fn);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool, lazily constructed; used by parallel_for below.
ThreadPool& global_pool();

/// True when called from inside a ThreadPool worker thread (any pool).
/// parallel_for uses this to run nested bodies inline instead of blocking a
/// worker on futures only the already-occupied workers could execute.
[[nodiscard]] bool in_pool_worker() noexcept;

/// Splits [begin, end) into contiguous chunks and runs `body(lo, hi)` on
/// `pool`, blocking until all chunks finish. Falls back to a direct call when
/// the range is small (< grain), the pool has one thread, or the caller is
/// itself a pool worker (nested parallelism would deadlock — see
/// in_pool_worker). Exceptions from any chunk are rethrown on the calling
/// thread.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1024);

/// Same, on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1024);

}  // namespace sgp::util
