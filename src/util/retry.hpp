// Generic bounded-retry policy: exponential backoff with deterministic
// jitter, shared by every site that wants to ride out transient
// environmental failures (shard IO, worker spawns, lease appends).
//
// Only util::IoError is retried — it is the one taxonomy kind that models
// a transient environment (util/errors.hpp); everything else (parse,
// precondition, budget, internal) is deterministic and retrying it would
// just repeat the failure. The jitter is a pure function of
// (policy.seed, attempt index) — the same splitmix64 finalizer the fault
// framework uses (inlined here: util must not depend on random/) — so a
// retried schedule replays exactly and never couples to wall clock or
// global RNG state.
//
// Every retry (attempt 2..N) increments the canonical `retry.attempts`
// counter. Sleeping is injectable so tests (and single-shot callers) never
// block: pass a RetrySleeper that records instead of sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::util {

/// How often and how patiently an operation is retried. max_attempts == 1
/// means "no retries" — the call behaves exactly like the bare operation.
struct RetryPolicy {
  /// Total tries including the first; must be >= 1.
  std::size_t max_attempts = 3;
  /// Backoff before the second attempt.
  double initial_backoff_seconds = 0.01;
  /// Multiplier applied per subsequent attempt.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff.
  double max_backoff_seconds = 1.0;
  /// Fraction of the backoff that is jittered away deterministically, in
  /// [0, 1]: sleep = backoff · (1 − jitter·u), u = u(seed, attempt).
  double jitter = 0.5;
  /// Seed for the jitter draws; same seed ⇒ same schedule.
  std::uint64_t seed = 0x7e772a17ULL;
};

namespace detail {

// SplitMix64 finalizer (duplicated from util/fault_injection.cpp for the
// same reason: util must not depend on random/).
inline std::uint64_t retry_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline double retry_uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace detail

/// Backoff (seconds) to sleep after failed attempt `attempt` (1-based).
/// Pure: capped exponential, jittered by u(policy.seed, attempt).
[[nodiscard]] inline double retry_backoff_seconds(const RetryPolicy& policy,
                                                  std::size_t attempt) {
  require(attempt >= 1, "retry_backoff_seconds: attempt is 1-based");
  double backoff = policy.initial_backoff_seconds;
  for (std::size_t i = 1; i < attempt; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= policy.max_backoff_seconds) break;
  }
  backoff = std::min(backoff, policy.max_backoff_seconds);
  const double u = detail::retry_uniform01(
      detail::retry_mix(policy.seed ^ static_cast<std::uint64_t>(attempt)));
  return backoff * (1.0 - policy.jitter * u);
}

/// Injectable sleep hook: called with the backoff in seconds between
/// attempts. Tests pass a recorder; production callers usually leave the
/// default (a real sleep).
using RetrySleeper = std::function<void(double seconds)>;

inline void sleep_for_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Runs `fn` up to policy.max_attempts times, backing off between attempts,
/// and returns its result. Retries only util::IoError; the final failure is
/// rethrown unchanged. `what` names the operation in logs/diagnostics via
/// the retried exception (left intact) — it exists so call sites document
/// themselves.
template <typename Fn>
auto retry_with_backoff(const RetryPolicy& policy, std::string_view what,
                        Fn&& fn, const RetrySleeper& sleeper = {})
    -> decltype(fn()) {
  require(policy.max_attempts >= 1, "retry: max_attempts must be >= 1");
  require(policy.jitter >= 0.0 && policy.jitter <= 1.0,
          "retry: jitter must be in [0, 1]");
  (void)what;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const IoError&) {
      if (attempt >= policy.max_attempts) throw;
      obs::counter(obs::names::kRetryAttempts).add();
      const double backoff = retry_backoff_seconds(policy, attempt);
      if (sleeper) {
        sleeper(backoff);
      } else {
        sleep_for_seconds(backoff);
      }
    }
  }
}

}  // namespace sgp::util
