// A background thread that runs one callback on a fixed interval.
//
// This is the only sanctioned way to own a raw std::thread outside
// src/util/ (sgp-lint R7 concurrency-discipline): subsystems that need a
// ticker — the obs resource sampler, heartbeat writers — hold a
// PeriodicTask instead of hand-rolling the thread + mutex + condition
// variable stop dance, so the join-on-stop and spurious-wakeup handling
// live in exactly one place.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace sgp::util {

/// Runs `tick` every `interval_ms` milliseconds on a dedicated thread until
/// stop() (or destruction). The first tick fires after one full interval —
/// callers that want an immediate reading take it before start(). stop()
/// wakes the thread immediately and joins it; a tick already in flight
/// completes first.
class PeriodicTask {
 public:
  // Both defined in periodic.cpp where Impl is complete (the defaulted
  // constructor's cleanup path needs ~unique_ptr<Impl>).
  PeriodicTask();
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Starts the ticker. No-op if already running; `tick` must not throw
  /// (an escaping exception would terminate the process).
  void start(std::uint64_t interval_ms, std::function<void()> tick);

  /// Signals the thread, joins it, and clears the callback. Safe to call
  /// when not running.
  void stop();

  [[nodiscard]] bool running() const noexcept { return impl_ != nullptr; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sgp::util
