// Minimal JSON support: an escaping writer for the obs exporters and a
// strict recursive-descent parser used by the BENCH_*.json schema checker
// and the exporter tests. No external dependencies; numbers are doubles
// (sufficient for metric snapshots — exact 64-bit ids do not travel
// through JSON in this codebase).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::util {

/// Parsed JSON value. Objects preserve no duplicate keys (last wins is NOT
/// accepted — duplicates are a parse error, which keeps schema checks honest).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one throws util::InternalError.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document (trailing garbage is an error). Throws
/// util::ParseError with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void append_json_string(std::string& out, std::string_view s);

/// Formats a double the way the exporters write numbers: integral values
/// without a fraction part, everything else with max_digits10 precision so
/// values survive a parse round trip.
std::string json_number(double value);
std::string json_number(std::uint64_t value);

}  // namespace sgp::util
