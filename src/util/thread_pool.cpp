#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace sgp::util {
namespace {

// Set (permanently) by worker_loop on each pool thread. parallel_for checks
// it to run nested bodies inline: a body submitted to the pool that itself
// calls parallel_for would otherwise block on futures that only the already-
// occupied workers could run — with every worker nested, a deadlock.
thread_local bool tls_in_pool_worker = false;

}  // namespace

bool in_pool_worker() noexcept { return tls_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  static obs::Counter& tasks = obs::counter(obs::names::kThreadpoolTasks);
  tasks.add();
  std::packaged_task<void()> task(std::move(fn));
  auto future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the associated future
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  // The gauge is a configuration value that never changes after the pool
  // exists, so record it exactly once — not on every call, which would put
  // an avoidable store on the hot path of each parallel_for.
  static const bool gauge_recorded = [] {
    obs::gauge(obs::names::kThreadpoolThreads).set(static_cast<double>(pool.size()));
    return true;
  }();
  (void)gauge_recorded;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Run inline when the range is small, the pool cannot parallelize, or we
  // are already on a pool worker (nested call — see tls_in_pool_worker).
  if (n < grain || pool.size() <= 1 || in_pool_worker()) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(pool.size() * 4, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& f : futures) f.get();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  parallel_for(global_pool(), begin, end, body, grain);
}

}  // namespace sgp::util
