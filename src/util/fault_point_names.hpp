// Canonical registry of every fault-point name the sgp library declares —
// the single source of truth referenced by fault_point()/arm_fault() call
// sites, the docs/robustness.md drift test, and the sgp-lint R9
// fault-point-registry rule (a string literal passed to util::fault_point
// or util::arm_fault inside src/ or tools/ must appear here, so a typo can
// no longer create a point that a chaos test arms but production never
// hits).
//
// Adding a point: add a constant AND a kAllFaultPoints entry, use the
// constant at the call site, document the row in docs/robustness.md, and
// keep the prefix consistent with the error mapping in
// util/fault_injection.hpp (io.* / ledger.* / lease.* -> IoError, solver.*
// -> ConvergenceError, alloc* -> bad_alloc, proc.worker.exit -> _Exit).
#pragma once

#include <string_view>

namespace sgp::util::fault_points {

inline constexpr std::string_view kAlloc = "alloc";
inline constexpr std::string_view kIoRead = "io.read";
inline constexpr std::string_view kIoShardCheckpoint = "io.shard.checkpoint";
inline constexpr std::string_view kIoShardRead = "io.shard.read";
inline constexpr std::string_view kIoShardWrite = "io.shard.write";
inline constexpr std::string_view kIoWrite = "io.write";
inline constexpr std::string_view kLeaseAcquire = "lease.acquire";
inline constexpr std::string_view kLeaseHeartbeat = "lease.heartbeat";
inline constexpr std::string_view kLedgerAppend = "ledger.append";
inline constexpr std::string_view kProcSpawn = "proc.spawn";
inline constexpr std::string_view kProcWorkerExit = "proc.worker.exit";
inline constexpr std::string_view kSolverIteration = "solver.iteration";

/// Every canonical point, strictly sorted (asserted by
/// tests/analysis/fault_point_names_test.cpp, mirroring the R3 metric
/// registry invariants).
inline constexpr std::string_view kAllFaultPoints[] = {
    kAlloc,
    kIoRead,
    kIoShardCheckpoint,
    kIoShardRead,
    kIoShardWrite,
    kIoWrite,
    kLeaseAcquire,
    kLeaseHeartbeat,
    kLedgerAppend,
    kProcSpawn,
    kProcWorkerExit,
    kSolverIteration,
};

/// True when `name` is in kAllFaultPoints.
[[nodiscard]] constexpr bool is_canonical_fault_point(std::string_view name) {
  for (std::string_view p : kAllFaultPoints) {
    if (p == name) return true;
  }
  return false;
}

}  // namespace sgp::util::fault_points
