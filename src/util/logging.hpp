// Minimal leveled logger writing to stderr.
//
// The library itself logs sparingly (convergence warnings, IO progress);
// benches and examples use Info level for human-readable narration.
//
// Thread safety: each line is formatted into one buffer and emitted with a
// single write, so lines from concurrent thread_pool workers never
// interleave mid-line.
//
// Structured fields: LogStream carries optional key=value pairs appended
// after the message ("[INFO 12:00:00.000] loaded graph nodes=500 edges=1k"):
//
//   LogStream(LogLevel::kInfo).with("nodes", n).with("edges", m)
//       << "loaded graph";
//
// The SGP_LOG_LEVEL environment variable (debug|info|warn|error|off,
// case-insensitive) overrides the default threshold at first use; an
// explicit set_log_level() call wins over the environment.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sgp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kInfo
/// unless SGP_LOG_LEVEL is set.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (any case). Returns false and
/// leaves `out` untouched on anything else.
bool parse_log_level(std::string_view text, LogLevel& out);

/// Writes one formatted line ("[LEVEL ts] msg") to stderr if enabled, via a
/// single write.
void log(LogLevel level, std::string_view msg);

inline void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
inline void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
inline void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

/// Stream-style building of a log message:
///   LogStream(LogLevel::kInfo) << "lanczos converged in " << it << " iters";
/// Optional structured fields are rendered as trailing key=value pairs in
/// insertion order.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    fields_.flush();
    log(level_, stream_.str() + fields_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Appends a structured " key=value" field after the message.
  template <typename T>
  LogStream& with(std::string_view key, const T& value) {
    fields_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  std::ostringstream fields_;
};

}  // namespace sgp::util
