// Minimal leveled logger writing to stderr.
//
// The library itself logs sparingly (convergence warnings, IO progress);
// benches and examples use Info level for human-readable narration.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sgp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Writes one formatted line ("[LEVEL ts] msg") to stderr if enabled.
void log(LogLevel level, std::string_view msg);

inline void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
inline void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
inline void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

/// Stream-style building of a log message:
///   LogStream(LogLevel::kInfo) << "lanczos converged in " << it << " iters";
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace sgp::util
