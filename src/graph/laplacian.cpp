#include "graph/laplacian.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lanczos.hpp"
#include "util/check.hpp"

namespace sgp::graph {

linalg::CsrMatrix laplacian_matrix(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * g.num_edges() + n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto d = static_cast<double>(g.degree(u));
    if (d > 0.0) {
      trips.push_back({static_cast<std::uint32_t>(u),
                       static_cast<std::uint32_t>(u), d});
    }
    for (std::uint32_t v : g.neighbors(u)) {
      trips.push_back({static_cast<std::uint32_t>(u), v, -1.0});
    }
  }
  return linalg::CsrMatrix::from_triplets(n, n, std::move(trips));
}

linalg::CsrMatrix normalized_adjacency_matrix(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    const auto d = static_cast<double>(g.degree(u));
    if (d > 0.0) inv_sqrt_degree[u] = 1.0 / std::sqrt(d);
  }
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * g.num_edges());
  for (std::size_t u = 0; u < n; ++u) {
    for (std::uint32_t v : g.neighbors(u)) {
      trips.push_back({static_cast<std::uint32_t>(u), v,
                       inv_sqrt_degree[u] * inv_sqrt_degree[v]});
    }
  }
  return linalg::CsrMatrix::from_triplets(n, n, std::move(trips));
}

double algebraic_connectivity(const Graph& g, std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  util::require(n >= 2, "algebraic connectivity: need at least two nodes");
  const linalg::CsrMatrix lap = laplacian_matrix(g);
  std::size_t max_degree = 0;
  for (std::size_t u = 0; u < n; ++u) {
    max_degree = std::max(max_degree, g.degree(u));
  }
  // Flip the spectrum: top-2 of (c·I − L) are c − {λ1(L)=0? no: λ_min ...}.
  // L's smallest two eigenvalues become the largest two of the shifted op.
  const double shift = 2.0 * static_cast<double>(std::max<std::size_t>(
                                 max_degree, 1));
  linalg::SymmetricOperator op{
      n, [&lap, shift](std::span<const double> x, std::span<double> y) {
        const auto lx = lap.multiply_vector(x);
        for (std::size_t i = 0; i < x.size(); ++i) {
          y[i] = shift * x[i] - lx[i];
        }
      }};
  linalg::LanczosOptions opt;
  opt.k = 2;
  opt.seed = seed;
  opt.max_iterations = std::min(n, std::max<std::size_t>(200, 12 * 2));
  const auto res = linalg::lanczos_topk(op, opt);
  return std::max(0.0, shift - res.values[1]);
}

}  // namespace sgp::graph
