// Structural graph statistics — used for the dataset table (E1) and for
// validating that synthetic stand-ins match the qualitative shape of the
// OSN graphs the paper evaluates on.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace sgp::graph {

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

DegreeStats degree_stats(const Graph& g);

/// Histogram of degrees: result[d] = #nodes with degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Number of triangles (each counted once). O(Σ deg²) with sorted merges.
std::size_t triangle_count(const Graph& g);

/// Global clustering coefficient 3·triangles / #wedges (0 if no wedges).
double global_clustering_coefficient(const Graph& g);

/// Average of per-node local clustering coefficients (nodes with degree < 2
/// contribute 0).
double average_local_clustering(const Graph& g);

/// Edge density 2|E| / (n(n-1)).
double density(const Graph& g);

/// Conductance of the cut (S, V\S): cut edges / min(vol(S), vol(V\S)).
/// `in_set[u]` marks membership of u in S. Returns 1 for empty/zero-volume
/// sides. Lower is a better community.
double conductance(const Graph& g, const std::vector<bool>& in_set);

/// Newman modularity Q of a node partition (labels per node):
///   Q = Σ_c [ e_c/|E| − (vol_c / 2|E|)² ],
/// where e_c is the number of intra-community edges and vol_c the total
/// degree of community c. In [-1/2, 1); higher means stronger communities.
/// Returns 0 for edgeless graphs. Useful for scoring clusterings recovered
/// from a *published* graph, where no ground-truth labels exist.
double modularity(const Graph& g, const std::vector<std::uint32_t>& labels);

}  // namespace sgp::graph
