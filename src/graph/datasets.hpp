// Synthetic stand-ins for the paper's evaluation datasets.
//
// The paper uses SNAP's Facebook (4,039 nodes / 88,234 edges), Pokec
// (1.6M nodes) and LiveJournal (4M nodes) graphs, which cannot be downloaded
// in this offline environment. Each stand-in below reproduces the properties
// the mechanism's utility depends on — community structure and heavy-tailed
// degree — at a scale that runs on a single machine. See DESIGN.md
// ("Substitutions") for the full rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace sgp::graph {

/// A benchmark dataset: graph, planted community labels, and provenance.
struct Dataset {
  std::string name;
  PlantedGraph planted;
  std::size_t num_communities = 0;
};

/// facebook-sim: SBM, 4,000 nodes in 8 communities — matches ego-Facebook's
/// node count; communities strong enough that the mechanism's utility
/// transition falls inside the benchmark ε sweep (see datasets.cpp note).
Dataset facebook_sim(std::uint64_t seed = 1);

/// pokec-sim: SBM + BA hub overlay, 40,000 nodes in 16 communities — the
/// medium tier with Pokec-style heavy-tailed degrees.
Dataset pokec_sim(std::uint64_t seed = 2);

/// livejournal-sim: SBM, ~50,000 nodes in 32 communities — the largest tier,
/// exercising the mechanism's storage/computation efficiency claims.
Dataset livejournal_sim(std::uint64_t seed = 3);

/// All three stand-ins, smallest first.
std::vector<Dataset> standard_datasets();

/// Reduced-size variants (≈1/10 nodes) used by integration tests and quick
/// example runs, preserving each dataset's structural shape.
Dataset facebook_sim_small(std::uint64_t seed = 1);
Dataset pokec_sim_small(std::uint64_t seed = 2);
Dataset livejournal_sim_small(std::uint64_t seed = 3);

}  // namespace sgp::graph
