// Graph down-sampling — standard tooling when full-scale graphs are too
// large for an analysis or must be scaled to a simulator budget (how the
// paper's million-node datasets would be brought to laptop scale).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace sgp::graph {

/// The induced subgraph on `nodes` (dense re-indexing in the given order).
/// `mapping_out`, if non-null, receives original-id per new index.
Graph induced_subgraph(const Graph& g, const std::vector<std::uint32_t>& nodes,
                       std::vector<std::uint32_t>* mapping_out = nullptr);

/// Uniform node sample: induced subgraph on `target_nodes` uniformly chosen
/// nodes. Preserves density in expectation, dilutes communities.
Graph node_sample(const Graph& g, std::size_t target_nodes, random::Rng& rng,
                  std::vector<std::uint32_t>* mapping_out = nullptr);

/// Random-walk sample (with 15% restart, Leskovec–Faloutsos): collect nodes
/// visited by a restarting walk until `target_nodes` distinct nodes are
/// seen, then take the induced subgraph. Biased toward dense cores, which
/// preserves community/degree structure far better than uniform sampling.
Graph random_walk_sample(const Graph& g, std::size_t target_nodes,
                         random::Rng& rng,
                         std::vector<std::uint32_t>* mapping_out = nullptr);

/// Uniform edge sample: keeps each edge independently with probability
/// `keep_probability`; node set unchanged.
Graph edge_sample(const Graph& g, double keep_probability, random::Rng& rng);

}  // namespace sgp::graph
