// Random graph generators.
//
// The paper evaluates on SNAP's Facebook, Pokec, and LiveJournal graphs,
// which are not redistributable offline. These generators produce synthetic
// stand-ins with the two properties the mechanism's utility depends on:
// community structure (stochastic block model — drives clustering utility)
// and heavy-tailed degrees (Barabási–Albert — drives ranking utility).
// Erdős–Rényi, Watts–Strogatz and the configuration model round out the
// substrate for tests and ablations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace sgp::graph {

/// G(n, p): every pair independently an edge with probability p.
/// Sampled with geometric skipping — O(n + |E|), usable for large sparse n.
Graph erdos_renyi(std::size_t n, double p, random::Rng& rng);

/// A graph with known ground-truth community labels.
struct PlantedGraph {
  Graph graph;
  std::vector<std::uint32_t> labels;  ///< community id per node
};

/// Stochastic block model: `sizes[c]` nodes in community c; within-community
/// pairs connect with probability p_in, cross-community with p_out.
PlantedGraph stochastic_block_model(const std::vector<std::size_t>& sizes,
                                    double p_in, double p_out,
                                    random::Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` nodes, each new node attaches to `attach` existing nodes with
/// probability proportional to degree. Yields power-law degrees.
Graph barabasi_albert(std::size_t n, std::size_t attach, random::Rng& rng);

/// Watts–Strogatz small world: ring of n nodes each linked to `k` nearest
/// neighbors (k even), each edge rewired with probability beta.
Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     random::Rng& rng);

/// Configuration model for a given degree sequence; multi-edges and self
/// loops arising from stub matching are dropped, so realized degrees can be
/// slightly below the request.
Graph configuration_model(const std::vector<std::size_t>& degrees,
                          random::Rng& rng);

/// Union of an SBM and a BA overlay on the same node set: community structure
/// plus heavy-tailed hubs — the closest synthetic analogue of an OSN graph.
PlantedGraph social_network_model(const std::vector<std::size_t>& sizes,
                                  double p_in, double p_out,
                                  std::size_t hub_attach, random::Rng& rng);

}  // namespace sgp::graph
