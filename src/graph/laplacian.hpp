// Graph Laplacians and spectral-structure helpers.
//
// The combinatorial Laplacian L = D − A and the normalized adjacency
// N = D^{-1/2} A D^{-1/2} (whose top eigenvectors are the standard
// Ng–Jordan–Weiss spectral-clustering embedding; its spectrum is 1 − spec
// of the normalized Laplacian). Algebraic connectivity diagnoses how
// separable a graph's communities are before spending privacy budget.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "linalg/sparse_matrix.hpp"

namespace sgp::graph {

/// Combinatorial Laplacian L = D − A as CSR.
linalg::CsrMatrix laplacian_matrix(const Graph& g);

/// Normalized adjacency N = D^{-1/2} A D^{-1/2} as CSR; isolated nodes
/// contribute zero rows. Symmetric, spectrum in [−1, 1].
linalg::CsrMatrix normalized_adjacency_matrix(const Graph& g);

/// Algebraic connectivity λ₂(L) — the Fiedler value: 0 iff the graph is
/// disconnected; larger means better-knit. Computed by Lanczos on
/// (c·I − L) with c = 2·max_degree (spectrum flip), taking the second
/// eigenvalue. O(|E|·iters).
double algebraic_connectivity(const Graph& g, std::uint64_t seed = 7);

}  // namespace sgp::graph
