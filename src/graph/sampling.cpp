#include "graph/sampling.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "random/distributions.hpp"
#include "util/check.hpp"

namespace sgp::graph {

Graph induced_subgraph(const Graph& g, const std::vector<std::uint32_t>& nodes,
                       std::vector<std::uint32_t>* mapping_out) {
  std::unordered_map<std::uint32_t, std::uint32_t> index_of;
  index_of.reserve(nodes.size());
  for (std::uint32_t original : nodes) {
    util::require(original < g.num_nodes(),
                  "induced_subgraph: node out of range");
    const bool inserted =
        index_of.emplace(original, static_cast<std::uint32_t>(index_of.size()))
            .second;
    util::require(inserted, "induced_subgraph: duplicate node in selection");
  }
  std::vector<Edge> edges;
  for (std::uint32_t original : nodes) {
    const std::uint32_t u = index_of[original];
    for (std::uint32_t nbr : g.neighbors(original)) {
      const auto it = index_of.find(nbr);
      if (it != index_of.end() && original < nbr) {
        edges.push_back({u, it->second});
      }
    }
  }
  if (mapping_out != nullptr) *mapping_out = nodes;
  return Graph::from_edges(nodes.size(), edges);
}

Graph node_sample(const Graph& g, std::size_t target_nodes, random::Rng& rng,
                  std::vector<std::uint32_t>* mapping_out) {
  util::require(target_nodes >= 1 && target_nodes <= g.num_nodes(),
                "node_sample: target must be in [1, n]");
  const auto chosen =
      random::sample_without_replacement(rng, g.num_nodes(), target_nodes);
  std::vector<std::uint32_t> nodes(chosen.begin(), chosen.end());
  return induced_subgraph(g, nodes, mapping_out);
}

Graph random_walk_sample(const Graph& g, std::size_t target_nodes,
                         random::Rng& rng,
                         std::vector<std::uint32_t>* mapping_out) {
  const std::size_t n = g.num_nodes();
  util::require(target_nodes >= 1 && target_nodes <= n,
                "random_walk_sample: target must be in [1, n]");

  std::unordered_set<std::uint32_t> visited;
  std::vector<std::uint32_t> order;
  std::uint32_t start = static_cast<std::uint32_t>(rng.next_below(n));
  std::uint32_t current = start;
  // Bail out of dead components by teleporting after too many stuck steps.
  std::size_t stuck_steps = 0;
  const std::size_t stuck_limit = 100 * target_nodes + 1000;

  while (order.size() < target_nodes) {
    if (visited.insert(current).second) {
      order.push_back(current);
      stuck_steps = 0;
    } else if (++stuck_steps > stuck_limit) {
      // Teleport to an unvisited node (uniform restart over the full set).
      do {
        current = static_cast<std::uint32_t>(rng.next_below(n));
      } while (visited.count(current) > 0);
      continue;
    }
    const auto nbrs = g.neighbors(current);
    if (nbrs.empty() || random::bernoulli(rng, 0.15)) {
      current = start;  // restart
      if (nbrs.empty()) {
        // Start node itself may be isolated; re-seed the walk.
        start = static_cast<std::uint32_t>(rng.next_below(n));
        current = start;
      }
      continue;
    }
    current = nbrs[rng.next_below(nbrs.size())];
  }
  return induced_subgraph(g, order, mapping_out);
}

Graph edge_sample(const Graph& g, double keep_probability, random::Rng& rng) {
  util::require(keep_probability >= 0.0 && keep_probability <= 1.0,
                "edge_sample: probability must be in [0,1]");
  std::vector<Edge> kept;
  for (const Edge& e : g.edges()) {
    if (random::bernoulli(rng, keep_probability)) kept.push_back(e);
  }
  return Graph::from_edges(g.num_nodes(), kept);
}

}  // namespace sgp::graph
