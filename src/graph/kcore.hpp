// k-core decomposition (Matula–Beck peeling, O(n + m)).
//
// Core numbers summarize engagement structure in OSN analysis (spam/bot
// rings sit in shallow cores, tight communities in deep ones) and give the
// dataset table another comparable statistic.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sgp::graph {

/// Core number of every node: the largest k such that the node belongs to a
/// subgraph where every node has degree >= k.
std::vector<std::uint32_t> core_numbers(const Graph& g);

/// Degeneracy of the graph = max core number (0 for edgeless graphs).
std::uint32_t degeneracy(const Graph& g);

/// Membership mask of the k-core subgraph (nodes with core number >= k).
std::vector<bool> k_core_membership(const Graph& g, std::uint32_t k);

}  // namespace sgp::graph
