// Out-of-core row-shard access to an on-disk edge list.
//
// The publishing mechanism is row-separable (core/sharded_publish.hpp), so a
// publisher never needs the whole graph in memory — only the CSR rows of the
// shard it is currently emitting. EdgeListShardReader provides exactly that:
// an initial streaming pass establishes the node count (and, under
// IdPolicy::kCompact, the first-appearance id remap — the one O(n) structure
// this loader keeps, a few dozen bytes per node versus the O(n·m) doubles of
// a materialized release), after which load_shard() re-streams the file and
// keeps only the edges incident to the requested row range.
//
// Semantics match the in-memory path bit for bit: both run on
// scan_edge_list (graph/io.hpp), so parsing, header handling, id caps and
// self-loop dropping are shared code, and each shard row's neighbor list is
// sorted and deduplicated exactly as Graph::from_edges would produce it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/io.hpp"

namespace sgp::graph {

/// CSR rows [row_begin, row_end) of the full graph's adjacency structure.
/// Neighbor ids are global node ids; per-row lists are sorted ascending with
/// duplicates merged — identical to Graph::neighbors() for the same rows.
struct ShardRows {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::vector<std::size_t> offsets;       ///< size (row_end - row_begin) + 1
  std::vector<std::uint32_t> adjacency;   ///< concatenated neighbor lists

  [[nodiscard]] std::size_t num_rows() const { return row_end - row_begin; }

  /// Neighbors of global row `u` (must lie in [row_begin, row_end)).
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t u) const {
    const std::size_t local = u - row_begin;
    return {adjacency.data() + offsets[local],
            offsets[local + 1] - offsets[local]};
  }
};

/// Streams row shards of an edge-list file without materializing the graph.
/// Construction performs one full scan (node count, edge count, id remap);
/// each load_shard() performs another. Working memory per load_shard() is
/// O(|E_shard|) plus the persistent remap.
class EdgeListShardReader {
 public:
  /// Opens and scans `path`. Throws util::IoError if unreadable and
  /// util::ParseError on malformed content (same grammar as read_edge_list).
  explicit EdgeListShardReader(
      std::string path, IdPolicy policy = IdPolicy::kCompact,
      std::uint64_t max_preserved_id = kDefaultMaxPreservedNodeId);

  /// Node count of the full graph — equals read_edge_list(...).num_nodes().
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

  /// Edge records accepted by the scan (before undirected deduplication).
  [[nodiscard]] std::size_t edge_records() const { return edge_records_; }

  /// Loads CSR rows [row_begin, row_end). Requires row_begin <= row_end and
  /// row_end <= num_nodes(). Re-reads the file; throws util::IoError if it
  /// changed shape since construction (defensive — the scan counts must
  /// still match).
  [[nodiscard]] ShardRows load_shard(std::size_t row_begin,
                                     std::size_t row_end) const;

 private:
  std::string path_;
  IdPolicy policy_;
  std::uint64_t max_preserved_id_;
  std::size_t num_nodes_ = 0;
  std::size_t edge_records_ = 0;
  /// kCompact only: raw file id -> dense node index, first-appearance order.
  std::unordered_map<std::uint64_t, std::uint32_t> remap_;
};

}  // namespace sgp::graph
