#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sgp::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const std::size_t n = g.num_nodes();
  if (n == 0) return stats;
  stats.min = g.degree(0);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t d = g.degree(u);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += static_cast<double>(d);
    sum2 += static_cast<double>(d) * static_cast<double>(d);
  }
  stats.mean = sum / static_cast<double>(n);
  const double var = sum2 / static_cast<double>(n) - stats.mean * stats.mean;
  stats.stddev = std::sqrt(std::max(var, 0.0));
  return stats;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const std::size_t d = g.degree(u);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

std::size_t triangle_count(const Graph& g) {
  // For each edge (u, v) with u < v, count common neighbors w > v: each
  // triangle {u, v, w} is counted exactly once at its smallest edge.
  std::size_t triangles = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const auto nu = g.neighbors(u);
    for (std::uint32_t v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      // Merge-intersect the suffixes beyond v.
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++triangles;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return triangles;
}

double global_clustering_coefficient(const Graph& g) {
  double wedges = 0.0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const double d = static_cast<double>(g.degree(u));
    wedges += d * (d - 1.0) / 2.0;
  }
  if (wedges == 0.0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) / wedges;
}

double average_local_clustering(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const std::size_t d = nbrs.size();
    if (d < 2) continue;
    std::size_t links = 0;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (g.has_edge(nbrs[i], nbrs[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return total / static_cast<double>(n);
}

double density(const Graph& g) {
  const double n = static_cast<double>(g.num_nodes());
  if (n < 2.0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) / (n * (n - 1.0));
}

double modularity(const Graph& g, const std::vector<std::uint32_t>& labels) {
  util::require(labels.size() == g.num_nodes(),
                "modularity: labels size must equal node count");
  const double total_edges = static_cast<double>(g.num_edges());
  if (total_edges == 0.0) return 0.0;

  std::uint32_t max_label = 0;
  for (std::uint32_t l : labels) max_label = std::max(max_label, l);
  std::vector<double> intra(max_label + 1, 0.0);
  std::vector<double> volume(max_label + 1, 0.0);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    volume[labels[u]] += static_cast<double>(g.degree(u));
    for (std::uint32_t v : g.neighbors(u)) {
      if (u < v && labels[u] == labels[v]) intra[labels[u]] += 1.0;
    }
  }
  double q = 0.0;
  for (std::size_t c = 0; c < intra.size(); ++c) {
    const double frac_vol = volume[c] / (2.0 * total_edges);
    q += intra[c] / total_edges - frac_vol * frac_vol;
  }
  return q;
}

double conductance(const Graph& g, const std::vector<bool>& in_set) {
  util::require(in_set.size() == g.num_nodes(),
                "conductance: membership size must equal node count");
  std::size_t cut = 0, vol_in = 0, vol_out = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const std::size_t d = g.degree(u);
    (in_set[u] ? vol_in : vol_out) += d;
    if (!in_set[u]) continue;
    for (std::uint32_t v : g.neighbors(u)) {
      if (!in_set[v]) ++cut;
    }
  }
  const std::size_t denom = std::min(vol_in, vol_out);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

}  // namespace sgp::graph
