#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace sgp::graph {

Graph read_edge_list(std::istream& in, IdPolicy policy) {
  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  std::vector<Edge> edges;
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t max_raw_id = 0;
  bool any_edge = false;
  std::size_t declared_nodes = 0;

  auto intern = [&](std::uint64_t raw) -> std::uint32_t {
    if (policy == IdPolicy::kPreserve) {
      util::ensure(raw <= 0xFFFFFFFFULL,
                   "edge list: node id too large for preserve policy");
      max_raw_id = std::max(max_raw_id, raw);
      return static_cast<std::uint32_t>(raw);
    }
    return remap.emplace(raw, static_cast<std::uint32_t>(remap.size()))
        .first->second;
  };

  while (std::getline(in, line)) {
    ++line_no;
    // Our own writer declares the node count in a comment; honor it under
    // kPreserve so trailing isolated nodes survive a round trip.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      if (policy == IdPolicy::kPreserve) {
        std::istringstream header(line.substr(hash + 1));
        std::string word;
        std::size_t count = 0;
        // Matches "... : <N> nodes ..." from write_edge_list.
        while (header >> word) {
          if (word == "nodes" || word == "nodes,") break;
          std::istringstream num(word);
          std::size_t candidate = 0;
          if (num >> candidate && num.eof()) count = candidate;
        }
        if (word == "nodes" || word == "nodes,") {
          declared_nodes = std::max(declared_nodes, count);
        }
      }
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::uint64_t u_raw, v_raw;
    if (!(fields >> u_raw)) continue;  // blank or comment-only line
    util::ensure(static_cast<bool>(fields >> v_raw),
                 "edge list parse error at line " + std::to_string(line_no));
    std::uint64_t extra;
    util::ensure(!(fields >> extra),
                 "edge list: more than two fields at line " +
                     std::to_string(line_no));
    if (u_raw == v_raw) continue;  // drop self loop
    edges.push_back({intern(u_raw), intern(v_raw)});
    any_edge = true;
  }

  std::size_t num_nodes = remap.size();
  if (policy == IdPolicy::kPreserve) {
    num_nodes = any_edge ? static_cast<std::size_t>(max_raw_id) + 1 : 0;
    num_nodes = std::max(num_nodes, declared_nodes);
  }
  return Graph::from_edges(num_nodes, edges);
}

Graph read_edge_list_file(const std::string& path, IdPolicy policy) {
  std::ifstream in(path);
  util::ensure(in.good(), "cannot open edge list file: " + path);
  return read_edge_list(in, policy);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# sgp edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  util::ensure(out.good(), "cannot open output file: " + path);
  write_edge_list(g, out);
  out.flush();
  util::ensure(out.good(), "failed writing edge list to: " + path);
}

}  // namespace sgp::graph
