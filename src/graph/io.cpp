#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::graph {
namespace {

constexpr const char* kLineWhitespace = " \t\r";

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
  throw util::ParseError("edge list: line " + std::to_string(line_no) + ": " +
                         why);
}

}  // namespace

EdgeScanStats scan_edge_list(
    std::istream& in, IdPolicy policy, std::uint64_t max_preserved_id,
    const std::function<void(std::uint64_t, std::uint64_t)>& on_edge) {
  // The id type caps preserved ids at 2^32 - 1 regardless of the caller's
  // configured limit.
  const std::uint64_t id_cap =
      std::min<std::uint64_t>(max_preserved_id, 0xFFFFFFFFULL);

  EdgeScanStats stats;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    // Our own writer declares the node count in a comment; honor it under
    // kPreserve so trailing isolated nodes survive a round trip.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      if (policy == IdPolicy::kPreserve) {
        std::istringstream header(line.substr(hash + 1));
        std::string word;
        std::size_t count = 0;
        // Matches "... : <N> nodes ..." from write_edge_list.
        while (header >> word) {
          if (word == "nodes" || word == "nodes,") break;
          std::istringstream num(word);
          std::size_t candidate = 0;
          if (num >> candidate && num.eof()) count = candidate;
        }
        if (word == "nodes" || word == "nodes,") {
          // A lying header is as dangerous as a hostile id: it sizes the
          // node arrays directly.
          if (count > id_cap + 1) {
            parse_fail(line_no,
                       "header declares " + std::to_string(count) +
                           " nodes, above the preserve-policy cap of " +
                           std::to_string(id_cap + 1));
          }
          stats.declared_nodes = std::max(stats.declared_nodes, count);
        }
      }
      line.erase(hash);
    }
    if (line.find_first_not_of(kLineWhitespace) == std::string::npos) {
      continue;  // blank or comment-only line
    }
    std::istringstream fields(line);
    std::uint64_t u_raw, v_raw;
    if (!(fields >> u_raw)) {
      parse_fail(line_no, "expected a numeric node id");
    }
    if (!(fields >> v_raw)) {
      parse_fail(line_no, "expected two node ids, got one");
    }
    // Reject anything after the second id that is not whitespace — a third
    // field, stray NUL bytes, or binary garbage all indicate a format the
    // caller did not intend to feed us.
    fields.clear();
    std::string trailing;
    std::getline(fields, trailing);
    if (trailing.find_first_not_of(kLineWhitespace) != std::string::npos) {
      parse_fail(line_no, "unexpected trailing content after the two ids");
    }
    if (u_raw == v_raw) continue;  // drop self loop
    if (policy == IdPolicy::kPreserve) {
      const std::uint64_t hi = std::max(u_raw, v_raw);
      if (hi > id_cap) {
        parse_fail(line_no, "node id " + std::to_string(hi) +
                                " exceeds the preserve-policy cap of " +
                                std::to_string(id_cap));
      }
      stats.max_raw_id = std::max(stats.max_raw_id, hi);
    }
    ++stats.edge_records;
    on_edge(u_raw, v_raw);
  }
  if (in.bad()) {
    throw util::IoError("edge list: stream read error at line " +
                        std::to_string(line_no));
  }
  stats.lines = line_no;
  // One bulk add per pass, not one per line — keeps the loop clean.
  static obs::Counter& lines_read = obs::counter(obs::names::kIoLinesRead);
  static obs::Counter& edges_read = obs::counter(obs::names::kIoEdgesRead);
  lines_read.add(stats.lines);
  edges_read.add(stats.edge_records);
  return stats;
}

Graph read_edge_list(std::istream& in, IdPolicy policy,
                     std::uint64_t max_preserved_id) {
  util::fault_point(util::fault_points::kIoRead);
  obs::ScopedTimer timer(obs::names::kIoReadEdges);

  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  std::vector<Edge> edges;
  auto intern = [&](std::uint64_t raw) -> std::uint32_t {
    if (policy == IdPolicy::kPreserve) {
      return static_cast<std::uint32_t>(raw);  // cap enforced by the scan
    }
    return remap.emplace(raw, static_cast<std::uint32_t>(remap.size()))
        .first->second;
  };
  const EdgeScanStats stats = scan_edge_list(
      in, policy, max_preserved_id,
      [&](std::uint64_t u_raw, std::uint64_t v_raw) {
        edges.push_back({intern(u_raw), intern(v_raw)});
      });

  std::size_t num_nodes = remap.size();
  if (policy == IdPolicy::kPreserve) {
    num_nodes = stats.edge_records > 0
                    ? static_cast<std::size_t>(stats.max_raw_id) + 1
                    : 0;
    num_nodes = std::max(num_nodes, stats.declared_nodes);
  }
  timer.attr("nodes", num_nodes).attr("edges", edges.size());
  return Graph::from_edges(num_nodes, edges);
}

Graph read_edge_list_file(const std::string& path, IdPolicy policy,
                          std::uint64_t max_preserved_id) {
  std::ifstream in(path);
  if (!in.good()) {
    throw util::IoError("cannot open edge list file: " + path);
  }
  return read_edge_list(in, policy, max_preserved_id);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  util::fault_point(util::fault_points::kIoWrite);
  obs::ScopedTimer timer(obs::names::kIoWriteEdges);
  timer.attr("nodes", g.num_nodes()).attr("edges", g.num_edges());
  out << "# sgp edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
  static obs::Counter& edges_written = obs::counter(obs::names::kIoEdgesWritten);
  edges_written.add(g.num_edges());
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    throw util::IoError("cannot open output file: " + path);
  }
  write_edge_list(g, out);
  out.flush();
  if (!out.good()) {
    throw util::IoError("failed writing edge list to: " + path);
  }
}

}  // namespace sgp::graph
