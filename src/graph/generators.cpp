#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "random/distributions.hpp"
#include "util/check.hpp"

namespace sgp::graph {
namespace {

/// Appends edges for all pairs (i, j) with i in [lo_i, hi_i), j in
/// [lo_j, hi_j), j > i, hit with probability p — via geometric skipping over
/// the linearized pair index, O(#hits).
void sample_block(std::vector<Edge>& out, std::size_t lo_i, std::size_t hi_i,
                  std::size_t lo_j, std::size_t hi_j, double p,
                  random::Rng& rng) {
  if (p <= 0.0) return;
  const std::size_t width = hi_j - lo_j;
  if (width == 0 || hi_i <= lo_i) return;
  const std::size_t total = (hi_i - lo_i) * width;
  std::size_t idx = 0;
  while (true) {
    // Skip ahead geometrically; p == 1 degenerates to every pair.
    const std::uint64_t skip = p >= 1.0 ? 0 : random::geometric(rng, p);
    if (skip >= total - idx) break;
    idx += skip;
    const std::size_t i = lo_i + idx / width;
    const std::size_t j = lo_j + idx % width;
    if (j > i) {  // keep upper triangle only (i < j)
      out.push_back(
          {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    }
    ++idx;
    if (idx >= total) break;
  }
}

}  // namespace

Graph erdos_renyi(std::size_t n, double p, random::Rng& rng) {
  util::require(p >= 0.0 && p <= 1.0, "erdos_renyi: p must be in [0,1]");
  std::vector<Edge> edges;
  if (n >= 2 && p > 0.0) {
    edges.reserve(static_cast<std::size_t>(
        p * 0.5 * static_cast<double>(n) * static_cast<double>(n - 1) * 1.1));
    sample_block(edges, 0, n, 0, n, p, rng);
  }
  return Graph::from_edges(n, edges);
}

PlantedGraph stochastic_block_model(const std::vector<std::size_t>& sizes,
                                    double p_in, double p_out,
                                    random::Rng& rng) {
  util::require(!sizes.empty(), "sbm: at least one community required");
  util::require(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0,
                "sbm: probabilities must be in [0,1]");
  std::vector<std::size_t> start(sizes.size() + 1, 0);
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    util::require(sizes[c] > 0, "sbm: community sizes must be positive");
    start[c + 1] = start[c] + sizes[c];
  }
  const std::size_t n = start.back();

  std::vector<Edge> edges;
  for (std::size_t a = 0; a < sizes.size(); ++a) {
    // Within-community block (upper triangle handled by sample_block).
    sample_block(edges, start[a], start[a + 1], start[a], start[a + 1], p_in,
                 rng);
    // Cross blocks a < b: full rectangle, all pairs have i < j.
    for (std::size_t b = a + 1; b < sizes.size(); ++b) {
      sample_block(edges, start[a], start[a + 1], start[b], start[b + 1],
                   p_out, rng);
    }
  }

  PlantedGraph out;
  out.graph = Graph::from_edges(n, edges);
  out.labels.resize(n);
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    for (std::size_t i = start[c]; i < start[c + 1]; ++i) {
      out.labels[i] = static_cast<std::uint32_t>(c);
    }
  }
  return out;
}

Graph barabasi_albert(std::size_t n, std::size_t attach, random::Rng& rng) {
  util::require(attach >= 1, "barabasi_albert: attach must be >= 1");
  util::require(n > attach, "barabasi_albert: n must exceed attach");

  std::vector<Edge> edges;
  // `targets` holds one entry per half-edge: sampling uniformly from it is
  // sampling proportional to degree.
  std::vector<std::uint32_t> endpoint_pool;

  // Seed clique on attach+1 nodes.
  const std::size_t seed_n = attach + 1;
  for (std::uint32_t i = 0; i < seed_n; ++i) {
    for (std::uint32_t j = i + 1; j < seed_n; ++j) {
      edges.push_back({i, j});
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }

  std::vector<std::uint32_t> chosen;
  for (std::size_t v = seed_n; v < n; ++v) {
    chosen.clear();
    // Rejection-sample `attach` distinct targets proportional to degree.
    while (chosen.size() < attach) {
      const std::uint32_t t =
          endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (std::uint32_t t : chosen) {
      edges.push_back({static_cast<std::uint32_t>(v), t});
      endpoint_pool.push_back(static_cast<std::uint32_t>(v));
      endpoint_pool.push_back(t);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     random::Rng& rng) {
  util::require(k >= 2 && k % 2 == 0, "watts_strogatz: k must be even >= 2");
  util::require(n > k, "watts_strogatz: n must exceed k");
  util::require(beta >= 0.0 && beta <= 1.0,
                "watts_strogatz: beta must be in [0,1]");

  std::vector<Edge> edges;
  edges.reserve(n * k / 2);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 1; d <= k / 2; ++d) {
      std::uint32_t v = static_cast<std::uint32_t>((u + d) % n);
      if (random::bernoulli(rng, beta)) {
        // Rewire the far endpoint to a uniform non-self target.
        std::uint32_t w;
        do {
          w = static_cast<std::uint32_t>(rng.next_below(n));
        } while (w == u);
        v = w;
      }
      edges.push_back({static_cast<std::uint32_t>(u), v});
    }
  }
  return Graph::from_edges(n, edges);  // duplicates merged by the builder
}

Graph configuration_model(const std::vector<std::size_t>& degrees,
                          random::Rng& rng) {
  util::require(!degrees.empty(), "configuration_model: empty degree sequence");
  std::vector<std::uint32_t> stubs;
  for (std::size_t u = 0; u < degrees.size(); ++u) {
    for (std::size_t d = 0; d < degrees[u]; ++d) {
      stubs.push_back(static_cast<std::uint32_t>(u));
    }
  }
  util::require(stubs.size() % 2 == 0,
                "configuration_model: degree sum must be even");
  random::shuffle(rng, stubs);
  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) continue;  // drop self loop
    edges.push_back({stubs[i], stubs[i + 1]});
  }
  return Graph::from_edges(degrees.size(), edges);  // multi-edges merged
}

PlantedGraph social_network_model(const std::vector<std::size_t>& sizes,
                                  double p_in, double p_out,
                                  std::size_t hub_attach, random::Rng& rng) {
  PlantedGraph base = stochastic_block_model(sizes, p_in, p_out, rng);
  const std::size_t n = base.graph.num_nodes();
  const Graph hubs = barabasi_albert(n, hub_attach, rng);

  std::vector<Edge> merged = base.graph.edges();
  const std::vector<Edge> overlay = hubs.edges();
  merged.insert(merged.end(), overlay.begin(), overlay.end());
  base.graph = Graph::from_edges(n, merged);
  return base;
}

}  // namespace sgp::graph
