// Edge-list IO in the SNAP text format the paper's datasets ship in:
// one "u v" pair per line, '#' comment lines ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace sgp::graph {

/// How raw node ids in the file map to graph indices.
enum class IdPolicy {
  /// Remap arbitrary (sparse) ids to dense [0, n) in first-appearance order —
  /// what SNAP downloads need. Isolated nodes are not representable.
  kCompact,
  /// Keep numeric ids as indices: node count = max id + 1 (or the count
  /// declared in an "# sgp edge list: N nodes..." header, if larger).
  /// Round-trips write_edge_list exactly, including isolated nodes.
  kPreserve,
};

/// Parses an edge list from a stream. Self loops are dropped; duplicate
/// edges merged. Throws std::runtime_error on parse errors.
Graph read_edge_list(std::istream& in, IdPolicy policy = IdPolicy::kCompact);

/// Loads from a file path. Throws std::runtime_error if unreadable.
Graph read_edge_list_file(const std::string& path,
                          IdPolicy policy = IdPolicy::kCompact);

/// Writes "u v" per undirected edge (u < v), preceded by a header comment
/// declaring the node count (understood by IdPolicy::kPreserve readers).
void write_edge_list(const Graph& g, std::ostream& out);

/// Saves to a file path. Throws std::runtime_error if unwritable.
void write_edge_list_file(const Graph& g, const std::string& path);

}  // namespace sgp::graph
