// Edge-list IO in the SNAP text format the paper's datasets ship in:
// one "u v" pair per line, '#' comment lines ignored.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace sgp::graph {

/// How raw node ids in the file map to graph indices.
enum class IdPolicy {
  /// Remap arbitrary (sparse) ids to dense [0, n) in first-appearance order —
  /// what SNAP downloads need. Isolated nodes are not representable.
  kCompact,
  /// Keep numeric ids as indices: node count = max id + 1 (or the count
  /// declared in an "# sgp edge list: N nodes..." header, if larger).
  /// Round-trips write_edge_list exactly, including isolated nodes.
  kPreserve,
};

/// Largest node id accepted under IdPolicy::kPreserve by default. One
/// hostile line ("4000000000 1") would otherwise make the reader attempt a
/// multi-gigabyte allocation; real inputs that legitimately need more can
/// raise the cap explicitly (hard limit: 2^32 - 1, the id type).
inline constexpr std::uint64_t kDefaultMaxPreservedNodeId = 1ULL << 31;

/// What one streaming pass over an edge-list stream saw. `max_raw_id` is
/// only meaningful when `edge_records > 0`; `declared_nodes` is the largest
/// node count declared by an "# sgp edge list: N nodes..." header (kPreserve
/// only — kCompact ignores headers, matching read_edge_list).
struct EdgeScanStats {
  std::size_t lines = 0;          ///< lines consumed, including comments
  std::size_t edge_records = 0;   ///< edge lines kept (self loops dropped)
  std::uint64_t max_raw_id = 0;   ///< largest raw endpoint id seen
  std::size_t declared_nodes = 0; ///< header-declared node count (kPreserve)
};

/// The streaming core under read_edge_list and the shard loader
/// (graph/shard_loader.hpp): one pass over `in`, invoking
/// `on_edge(u_raw, v_raw)` for every accepted edge line, with *identical*
/// validation and header semantics to read_edge_list — so an out-of-core
/// consumer sees exactly the edge sequence the in-memory reader would.
/// Throws util::ParseError on malformed lines and, under kPreserve, on ids
/// or header node counts above `max_preserved_id`; util::IoError on stream
/// read errors.
EdgeScanStats scan_edge_list(
    std::istream& in, IdPolicy policy, std::uint64_t max_preserved_id,
    const std::function<void(std::uint64_t, std::uint64_t)>& on_edge);

/// Parses an edge list from a stream. Self loops are dropped; duplicate
/// edges merged. Throws util::ParseError on malformed lines, and — under
/// kPreserve — on node ids or declared header node counts above
/// `max_preserved_id` (ignored under kCompact, which remaps ids).
Graph read_edge_list(std::istream& in, IdPolicy policy = IdPolicy::kCompact,
                     std::uint64_t max_preserved_id = kDefaultMaxPreservedNodeId);

/// Loads from a file path. Throws util::IoError if unreadable.
Graph read_edge_list_file(const std::string& path,
                          IdPolicy policy = IdPolicy::kCompact,
                          std::uint64_t max_preserved_id = kDefaultMaxPreservedNodeId);

/// Writes "u v" per undirected edge (u < v), preceded by a header comment
/// declaring the node count (understood by IdPolicy::kPreserve readers).
void write_edge_list(const Graph& g, std::ostream& out);

/// Saves to a file path. Throws util::IoError if unwritable.
void write_edge_list_file(const Graph& g, const std::string& path);

}  // namespace sgp::graph
