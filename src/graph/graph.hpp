// Undirected simple graph stored as a CSR adjacency structure.
//
// This is the "social network graph" object of the paper: nodes are users,
// edges friendships. The adjacency matrix view (0/1 symmetric CsrMatrix) is
// what the publishing mechanism consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/sparse_matrix.hpp"

namespace sgp::graph {

/// One undirected edge. Orientation is irrelevant; self loops are invalid.
struct Edge {
  std::uint32_t u;
  std::uint32_t v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  /// Empty graph with no nodes.
  Graph() = default;

  /// Builds from an edge list over nodes {0..n-1}. Self loops are rejected;
  /// duplicate edges (in either orientation) are merged.
  static Graph from_edges(std::size_t num_nodes, std::span<const Edge> edges);

  [[nodiscard]] std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const { return adjacency_.size() / 2; }

  /// Neighbors of `u`, sorted ascending.
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t u) const;

  [[nodiscard]] std::size_t degree(std::size_t u) const;

  /// O(log degree(u)) membership test.
  [[nodiscard]] bool has_edge(std::size_t u, std::size_t v) const;

  /// Each undirected edge once, with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// The symmetric 0/1 adjacency matrix A.
  [[nodiscard]] linalg::CsrMatrix adjacency_matrix() const;

  /// Average degree 2|E|/n (0 for the empty graph).
  [[nodiscard]] double average_degree() const;

 private:
  std::vector<std::size_t> offsets_;        // size n+1
  std::vector<std::uint32_t> adjacency_;    // concatenated sorted neighbor lists
};

/// Connected-component labels in [0, count); nodes in the same component share
/// a label. Labels are assigned in order of first discovery from node 0.
struct ComponentResult {
  std::vector<std::uint32_t> labels;
  std::size_t count = 0;
};
ComponentResult connected_components(const Graph& g);

/// BFS hop distances from `source`; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& g, std::size_t source);

}  // namespace sgp::graph
