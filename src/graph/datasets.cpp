#include "graph/datasets.hpp"

#include "random/rng.hpp"

namespace sgp::graph {
namespace {

Dataset make_sbm(std::string name, std::size_t communities,
                 std::size_t community_size, double p_in, double p_out,
                 std::uint64_t seed) {
  random::Rng rng(seed);
  Dataset d;
  d.name = std::move(name);
  d.num_communities = communities;
  d.planted = stochastic_block_model(
      std::vector<std::size_t>(communities, community_size), p_in, p_out, rng);
  return d;
}

Dataset make_social(std::string name, std::size_t communities,
                    std::size_t community_size, double p_in, double p_out,
                    std::size_t hub_attach, std::uint64_t seed) {
  random::Rng rng(seed);
  Dataset d;
  d.name = std::move(name);
  d.num_communities = communities;
  d.planted = social_network_model(
      std::vector<std::size_t>(communities, community_size), p_in, p_out,
      hub_attach, rng);
  return d;
}

}  // namespace

// Parameter note (see DESIGN.md "Substitutions"): utility of the mechanism
// transitions where the community singular values s·(p_in − p_out) cross the
// noise spectral norm σ(ε)·(√n + √m). The stand-ins below put that
// transition inside the swept range ε ∈ [0.5, 16] at m = 100, at the cost of
// denser graphs than their SNAP namesakes (whose full-scale spectra we
// cannot match at simulator scale). Node counts and community structure
// match the original tiers in spirit: small/strong, medium/hubby, large.

Dataset facebook_sim(std::uint64_t seed) {
  // 8 × 500 = 4,000 nodes (ego-Facebook's 4,039); community signal ≈ 98,
  // NMI transition ε ≈ 3–8 at m=100. ~230k edges.
  return make_sbm("facebook-sim", 8, 500, 0.2, 0.004, seed);
}

Dataset pokec_sim(std::uint64_t seed) {
  // 16 × 2,500 = 40,000 nodes with BA hub overlay for Pokec's heavy tail;
  // community signal ≈ 245, transition ε ≈ 6–12 at m=100. ~5.3M edges.
  return make_social("pokec-sim", 16, 2500, 0.1, 2e-4, 3, seed);
}

Dataset livejournal_sim(std::uint64_t seed) {
  // 32 × 1,562 ≈ 50,000 nodes — the scalability tier (single-core budget
  // caps n); community signal ≈ 312, transition ε ≈ 5–10. ~7.8M edges.
  return make_sbm("livejournal-sim", 32, 1562, 0.2, 5e-5, seed);
}

std::vector<Dataset> standard_datasets() {
  return {facebook_sim(), pokec_sim(), livejournal_sim()};
}

Dataset facebook_sim_small(std::uint64_t seed) {
  return make_sbm("facebook-sim-small", 8, 50, 0.5, 0.02, seed);
}

Dataset pokec_sim_small(std::uint64_t seed) {
  return make_social("pokec-sim-small", 16, 125, 0.3, 0.002, 3, seed);
}

Dataset livejournal_sim_small(std::uint64_t seed) {
  return make_sbm("livejournal-sim-small", 32, 156, 0.3, 5e-4, seed);
}

}  // namespace sgp::graph
