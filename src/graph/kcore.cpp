#include "graph/kcore.hpp"

#include <algorithm>

namespace sgp::graph {

std::vector<std::uint32_t> core_numbers(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> core(n, 0);
  if (n == 0) return core;

  // Bucket sort nodes by degree (Matula–Beck / Batagelj–Zaveršnik).
  std::size_t max_degree = 0;
  std::vector<std::uint32_t> degree(n);
  for (std::size_t u = 0; u < n; ++u) {
    degree[u] = static_cast<std::uint32_t>(g.degree(u));
    max_degree = std::max<std::size_t>(max_degree, degree[u]);
  }
  std::vector<std::size_t> bucket_start(max_degree + 2, 0);
  for (std::size_t u = 0; u < n; ++u) ++bucket_start[degree[u] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<std::uint32_t> order(n);     // nodes sorted by current degree
  std::vector<std::size_t> position(n);    // node -> index in `order`
  {
    std::vector<std::size_t> cursor(bucket_start.begin(),
                                    bucket_start.end() - 1);
    for (std::uint32_t u = 0; u < n; ++u) {
      position[u] = cursor[degree[u]];
      order[position[u]] = u;
      ++cursor[degree[u]];
    }
  }

  // Peel in degree order; when a node is removed, its neighbors' degrees
  // drop by one (swap them one bucket down in O(1)).
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t u = order[i];
    core[u] = degree[u];
    for (std::uint32_t v : g.neighbors(u)) {
      if (degree[v] <= degree[u]) continue;  // already peeled or tied
      const std::uint32_t dv = degree[v];
      // Swap v with the first node of its bucket, then shrink the bucket.
      const std::size_t first_pos = bucket_start[dv];
      const std::uint32_t first_node = order[first_pos];
      if (first_node != v) {
        std::swap(order[first_pos], order[position[v]]);
        std::swap(position[first_node], position[v]);
      }
      ++bucket_start[dv];
      --degree[v];
    }
  }
  return core;
}

std::uint32_t degeneracy(const Graph& g) {
  const auto cores = core_numbers(g);
  std::uint32_t best = 0;
  for (std::uint32_t c : cores) best = std::max(best, c);
  return best;
}

std::vector<bool> k_core_membership(const Graph& g, std::uint32_t k) {
  const auto cores = core_numbers(g);
  std::vector<bool> member(cores.size());
  for (std::size_t u = 0; u < cores.size(); ++u) member[u] = cores[u] >= k;
  return member;
}

}  // namespace sgp::graph
