#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace sgp::graph {

Graph Graph::from_edges(std::size_t num_nodes, std::span<const Edge> edges) {
  // Normalize to both directions, validate, sort, dedup.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> directed;
  directed.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    util::require(e.u < num_nodes && e.v < num_nodes,
                  "from_edges: endpoint out of range");
    util::require(e.u != e.v, "from_edges: self loops are not allowed");
    directed.emplace_back(e.u, e.v);
    directed.emplace_back(e.v, e.u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  Graph g;
  g.offsets_.assign(num_nodes + 1, 0);
  g.adjacency_.reserve(directed.size());
  std::size_t i = 0;
  for (std::size_t u = 0; u < num_nodes; ++u) {
    while (i < directed.size() && directed[i].first == u) {
      g.adjacency_.push_back(directed[i].second);
      ++i;
    }
    g.offsets_[u + 1] = g.adjacency_.size();
  }
  return g;
}

std::span<const std::uint32_t> Graph::neighbors(std::size_t u) const {
  util::require(u < num_nodes(), "neighbors: node out of range");
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t Graph::degree(std::size_t u) const {
  util::require(u < num_nodes(), "degree: node out of range");
  return offsets_[u + 1] - offsets_[u];
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  util::require(u < num_nodes() && v < num_nodes(),
                "has_edge: node out of range");
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(),
                            static_cast<std::uint32_t>(v));
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    for (std::uint32_t v : neighbors(u)) {
      if (u < v) out.push_back({static_cast<std::uint32_t>(u), v});
    }
  }
  return out;
}

linalg::CsrMatrix Graph::adjacency_matrix() const {
  std::vector<linalg::Triplet> trips;
  trips.reserve(adjacency_.size());
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    for (std::uint32_t v : neighbors(u)) {
      trips.push_back({static_cast<std::uint32_t>(u), v, 1.0});
    }
  }
  return linalg::CsrMatrix::from_triplets(num_nodes(), num_nodes(),
                                          std::move(trips));
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) /
         static_cast<double>(num_nodes());
}

ComponentResult connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
  ComponentResult result;
  result.labels.assign(n, kUnvisited);
  std::vector<std::uint32_t> stack;
  for (std::size_t start = 0; start < n; ++start) {
    if (result.labels[start] != kUnvisited) continue;
    const auto label = static_cast<std::uint32_t>(result.count++);
    stack.push_back(static_cast<std::uint32_t>(start));
    result.labels[start] = label;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (std::uint32_t v : g.neighbors(u)) {
        if (result.labels[v] == kUnvisited) {
          result.labels[v] = label;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

std::vector<std::size_t> bfs_distances(const Graph& g, std::size_t source) {
  util::require(source < g.num_nodes(), "bfs: source out of range");
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.num_nodes(), kInf);
  std::queue<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push(static_cast<std::uint32_t>(source));
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (std::uint32_t v : g.neighbors(u)) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace sgp::graph
