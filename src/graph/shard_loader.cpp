#include "graph/shard_loader.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/metric_names.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::graph {
namespace {

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw util::IoError("shard loader: cannot open edge list file: " + path);
  }
  return in;
}

}  // namespace

EdgeListShardReader::EdgeListShardReader(std::string path, IdPolicy policy,
                                         std::uint64_t max_preserved_id)
    : path_(std::move(path)),
      policy_(policy),
      max_preserved_id_(max_preserved_id) {
  util::fault_point(util::fault_points::kIoRead);
  obs::ScopedTimer timer(obs::names::kIoReadShard);
  std::ifstream in = open_or_throw(path_);
  const EdgeScanStats stats = scan_edge_list(
      in, policy_, max_preserved_id_,
      [&](std::uint64_t u_raw, std::uint64_t v_raw) {
        if (policy_ == IdPolicy::kCompact) {
          remap_.emplace(u_raw, static_cast<std::uint32_t>(remap_.size()));
          remap_.emplace(v_raw, static_cast<std::uint32_t>(remap_.size()));
        }
      });
  edge_records_ = stats.edge_records;
  // Mirrors read_edge_list's node-count rule exactly.
  num_nodes_ = remap_.size();
  if (policy_ == IdPolicy::kPreserve) {
    num_nodes_ = stats.edge_records > 0
                     ? static_cast<std::size_t>(stats.max_raw_id) + 1
                     : 0;
    num_nodes_ = std::max(num_nodes_, stats.declared_nodes);
  }
  timer.attr("nodes", num_nodes_).attr("edges", edge_records_);
}

ShardRows EdgeListShardReader::load_shard(std::size_t row_begin,
                                          std::size_t row_end) const {
  util::require(row_begin <= row_end && row_end <= num_nodes_,
                "shard loader: row range must lie within [0, num_nodes]");
  util::fault_point(util::fault_points::kIoShardRead);
  obs::ScopedTimer timer(obs::names::kIoReadShard);
  timer.attr("row_begin", row_begin).attr("row_end", row_end);

  const auto resolve = [this](std::uint64_t raw) -> std::uint32_t {
    if (policy_ == IdPolicy::kPreserve) return static_cast<std::uint32_t>(raw);
    const auto it = remap_.find(raw);
    // Every id was interned during the construction scan; a miss means the
    // file changed under us.
    if (it == remap_.end()) {
      throw util::IoError("shard loader: " + path_ +
                          " changed since construction (unknown node id)");
    }
    return it->second;
  };

  // One (row, neighbor) pair per direction that lands in the shard; sorting
  // the pair list then groups rows and orders each neighbor list, so the
  // per-row unique() below reproduces Graph::from_edges' merged duplicates.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> incident;
  std::ifstream in = open_or_throw(path_);
  const EdgeScanStats stats = scan_edge_list(
      in, policy_, max_preserved_id_,
      [&](std::uint64_t u_raw, std::uint64_t v_raw) {
        const std::uint32_t u = resolve(u_raw);
        const std::uint32_t v = resolve(v_raw);
        if (u >= row_begin && u < row_end) incident.emplace_back(u, v);
        if (v >= row_begin && v < row_end) incident.emplace_back(v, u);
      });
  if (stats.edge_records != edge_records_) {
    throw util::IoError("shard loader: " + path_ +
                        " changed since construction (edge count drifted)");
  }
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());

  ShardRows shard;
  shard.row_begin = row_begin;
  shard.row_end = row_end;
  shard.offsets.assign(row_end - row_begin + 1, 0);
  shard.adjacency.reserve(incident.size());
  for (const auto& [row, neighbor] : incident) {
    ++shard.offsets[row - row_begin + 1];
    shard.adjacency.push_back(neighbor);
  }
  for (std::size_t r = 1; r < shard.offsets.size(); ++r) {
    shard.offsets[r] += shard.offsets[r - 1];
  }
  return shard;
}

}  // namespace sgp::graph
