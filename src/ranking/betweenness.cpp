#include "ranking/betweenness.hpp"

#include <queue>
#include <stack>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::ranking {
namespace {

/// One Brandes source iteration: BFS from s, then back-propagate pair
/// dependencies along the shortest-path DAG.
void accumulate_from_source(const graph::Graph& g, std::size_t s,
                            std::vector<double>& centrality) {
  static obs::Counter& sources = obs::counter(obs::names::kBetweennessBfsSources);
  sources.add();
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<std::uint32_t>> predecessors(n);
  std::vector<double> sigma(n, 0.0);     // #shortest paths from s
  std::vector<std::int64_t> dist(n, -1);
  std::vector<double> delta(n, 0.0);     // dependency accumulator
  std::stack<std::uint32_t> order;       // nodes by non-increasing distance

  sigma[s] = 1.0;
  dist[s] = 0;
  std::queue<std::uint32_t> frontier;
  frontier.push(static_cast<std::uint32_t>(s));
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    order.push(v);
    for (std::uint32_t w : g.neighbors(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
      if (dist[w] == dist[v] + 1) {
        sigma[w] += sigma[v];
        predecessors[w].push_back(v);
      }
    }
  }
  while (!order.empty()) {
    const std::uint32_t w = order.top();
    order.pop();
    for (std::uint32_t v : predecessors[w]) {
      delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
    }
    if (w != s) centrality[w] += delta[w];
  }
}

}  // namespace

std::vector<double> betweenness_centrality(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "betweenness: empty graph");
  obs::ScopedTimer timer(obs::names::kBetweennessExact);
  timer.attr("n", n);
  std::vector<double> centrality(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    accumulate_from_source(g, s, centrality);
  }
  // Undirected: every pair was counted twice (once per endpoint as source).
  for (double& c : centrality) c *= 0.5;
  return centrality;
}

std::vector<double> approximate_betweenness(const graph::Graph& g,
                                            std::size_t num_sources,
                                            std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "betweenness: empty graph");
  util::require(num_sources >= 1, "betweenness: need at least one source");
  if (num_sources >= n) return betweenness_centrality(g);

  obs::ScopedTimer timer(obs::names::kBetweennessApprox);
  timer.attr("n", n).attr("sources", num_sources);
  random::Rng rng(seed);
  const auto sources = random::sample_without_replacement(rng, n, num_sources);
  std::vector<double> centrality(n, 0.0);
  for (std::size_t s : sources) {
    accumulate_from_source(g, s, centrality);
  }
  const double scale = static_cast<double>(n) /
                       (2.0 * static_cast<double>(num_sources));
  for (double& c : centrality) c *= scale;
  return centrality;
}

}  // namespace sgp::ranking
