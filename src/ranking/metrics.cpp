#include "ranking/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_set>

#include "util/check.hpp"

namespace sgp::ranking {
namespace {

void require_same_nonempty(const std::vector<double>& a,
                           const std::vector<double>& b) {
  util::require(a.size() == b.size(),
                "ranking metrics: score vectors must have equal size");
  util::require(!a.empty(), "ranking metrics: score vectors must be non-empty");
}

/// Counts strict inversions (i < j with v[i] > v[j]) by merge sort.
std::size_t count_inversions(std::vector<double>& v, std::vector<double>& tmp,
                             std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::size_t inversions = count_inversions(v, tmp, lo, mid) +
                           count_inversions(v, tmp, mid, hi);
  std::size_t i = lo, j = mid, out = lo;
  while (i < mid && j < hi) {
    if (v[i] <= v[j]) {
      tmp[out++] = v[i++];
    } else {
      inversions += mid - i;  // every remaining left element beats v[j]
      tmp[out++] = v[j++];
    }
  }
  while (i < mid) tmp[out++] = v[i++];
  while (j < hi) tmp[out++] = v[j++];
  std::copy(tmp.begin() + lo, tmp.begin() + hi, v.begin() + lo);
  return inversions;
}

/// Σ over equal-value groups of C(group, 2).
double tied_pairs(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  double ties = 0.0;
  std::size_t run = 1;
  for (std::size_t i = 1; i <= values.size(); ++i) {
    if (i < values.size() && values[i] == values[i - 1]) {
      ++run;
    } else {
      ties += 0.5 * static_cast<double>(run) * static_cast<double>(run - 1);
      run = 1;
    }
  }
  return ties;
}

/// Mid-ranks (average rank for ties), rank 1 = smallest score.
std::vector<double> mid_ranks(const std::vector<double>& scores) {
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return scores[x] < scores[y];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

std::unordered_set<std::size_t> top_k_set(const std::vector<double>& scores,
                                          std::size_t k) {
  const auto order = ranking_from_scores(scores);
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k)};
}

}  // namespace

std::vector<std::size_t> ranking_from_scores(
    const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  return order;
}

double top_k_overlap(const std::vector<double>& scores_a,
                     const std::vector<double>& scores_b, std::size_t k) {
  require_same_nonempty(scores_a, scores_b);
  util::require(k >= 1 && k <= scores_a.size(),
                "top_k_overlap: k must be in [1, n]");
  const auto set_a = top_k_set(scores_a, k);
  const auto set_b = top_k_set(scores_b, k);
  std::size_t common = 0;
  for (std::size_t idx : set_a) common += set_b.count(idx);
  return static_cast<double>(common) / static_cast<double>(k);
}

double top_k_jaccard(const std::vector<double>& scores_a,
                     const std::vector<double>& scores_b, std::size_t k) {
  require_same_nonempty(scores_a, scores_b);
  util::require(k >= 1 && k <= scores_a.size(),
                "top_k_jaccard: k must be in [1, n]");
  const auto set_a = top_k_set(scores_a, k);
  const auto set_b = top_k_set(scores_b, k);
  std::size_t common = 0;
  for (std::size_t idx : set_a) common += set_b.count(idx);
  const std::size_t uni = 2 * k - common;
  return static_cast<double>(common) / static_cast<double>(uni);
}

double kendall_tau(const std::vector<double>& scores_a,
                   const std::vector<double>& scores_b) {
  require_same_nonempty(scores_a, scores_b);
  const std::size_t n = scores_a.size();
  if (n == 1) return 1.0;

  // Sort indices by (a ascending, b ascending): pairs tied in `a` are then
  // b-ascending and contribute no strict inversion.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (scores_a[x] != scores_a[y]) return scores_a[x] < scores_a[y];
    return scores_b[x] < scores_b[y];
  });
  std::vector<double> b_seq(n);
  for (std::size_t i = 0; i < n; ++i) b_seq[i] = scores_b[order[i]];

  std::vector<double> tmp(n);
  const double discordant =
      static_cast<double>(count_inversions(b_seq, tmp, 0, n));

  const double total = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  const double ties_a = tied_pairs(scores_a);
  const double ties_b = tied_pairs(scores_b);
  // Pairs tied in both a and b.
  std::map<std::pair<double, double>, std::size_t> joint;
  for (std::size_t i = 0; i < n; ++i) ++joint[{scores_a[i], scores_b[i]}];
  double ties_ab = 0.0;
  for (const auto& [key, c] : joint) {
    ties_ab += 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
  }
  const double concordant = total - discordant - ties_a - ties_b + ties_ab;
  return (concordant - discordant) / total;  // τ-a
}

double spearman_rho(const std::vector<double>& scores_a,
                    const std::vector<double>& scores_b) {
  require_same_nonempty(scores_a, scores_b);
  const std::size_t n = scores_a.size();
  if (n == 1) return 1.0;
  const auto ra = mid_ranks(scores_a);
  const auto rb = mid_ranks(scores_b);
  double mean = 0.5 * static_cast<double>(n + 1);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;  // constant ranking(s)
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace sgp::ranking
