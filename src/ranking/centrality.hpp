// Node-importance scores. The paper's ranking-utility experiment asks: do
// the most central nodes of the published graph match those of the original?
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/dense_matrix.hpp"

namespace sgp::ranking {

/// Degree of every node (as doubles, for uniform ranking APIs).
std::vector<double> degree_centrality(const graph::Graph& g);

/// Principal-eigenvector centrality of the adjacency matrix via power
/// iteration. Scores are non-negative (Perron–Frobenius) and normalized to
/// unit 2-norm. Converges for connected non-bipartite graphs; the iteration
/// cap makes it robust elsewhere.
std::vector<double> eigenvector_centrality(const graph::Graph& g,
                                           std::size_t max_iterations = 200,
                                           double tolerance = 1e-10);

/// PageRank with damping factor `alpha`, uniform teleport. Dangling nodes
/// redistribute uniformly. Scores sum to 1.
std::vector<double> pagerank(const graph::Graph& g, double alpha = 0.85,
                             std::size_t max_iterations = 200,
                             double tolerance = 1e-12);

/// Centrality recovered from a published embedding: the magnitude of each
/// node's component along the top left-singular direction of the published
/// matrix approximates its eigenvector centrality in the original graph
/// (random projection preserves the dominant spectral structure).
std::vector<double> centrality_from_embedding(
    const linalg::DenseMatrix& top_left_singular);

/// Closeness centrality 1 / Σ_v d(u, v), estimated with BFS from
/// `num_sources` sampled pivots (exact when num_sources >= n): for each
/// sampled source s, every node accumulates d(s, u); scores are the inverse
/// of the scaled sums. Unreachable pairs contribute n hops (standard
/// harmonic-free convention for disconnected graphs).
std::vector<double> closeness_centrality(const graph::Graph& g,
                                         std::size_t num_sources,
                                         std::uint64_t seed = 7);

}  // namespace sgp::ranking
