// Betweenness centrality (Brandes 2001): the fraction of shortest paths
// passing through each node. Exact computation is one BFS + dependency
// accumulation per source, O(n·m) on unweighted graphs; the sampled variant
// (Brandes–Pich pivots) scales to the larger stand-ins.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sgp::ranking {

/// Exact betweenness of every node (undirected convention: each pair's
/// contribution counted once; endpoints excluded).
std::vector<double> betweenness_centrality(const graph::Graph& g);

/// Pivot-sampled approximation using `num_sources` BFS sources, rescaled to
/// the exact estimator's expectation. Exact when num_sources >= n.
std::vector<double> approximate_betweenness(const graph::Graph& g,
                                            std::size_t num_sources,
                                            std::uint64_t seed = 7);

}  // namespace sgp::ranking
