#include "ranking/centrality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::ranking {

std::vector<double> degree_centrality(const graph::Graph& g) {
  std::vector<double> scores(g.num_nodes());
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    scores[u] = static_cast<double>(g.degree(u));
  }
  return scores;
}

std::vector<double> eigenvector_centrality(const graph::Graph& g,
                                           std::size_t max_iterations,
                                           double tolerance) {
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "eigenvector centrality: empty graph");
  const linalg::CsrMatrix a = g.adjacency_matrix();

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Iterate on (A + I): same eigenvectors, but the shift makes the Perron
    // eigenvalue strictly dominant even on bipartite graphs (star, cycle of
    // even length), where plain power iteration oscillates with period 2.
    std::vector<double> next = a.multiply_vector(x);
    for (std::size_t i = 0; i < n; ++i) next[i] += x[i];
    const double nrm = linalg::norm2(next);
    if (nrm == 0.0) return x;  // no edges: uniform scores
    linalg::scale(next, 1.0 / nrm);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) diff += std::fabs(next[i] - x[i]);
    x = std::move(next);
    if (diff < tolerance) break;
  }
  // Perron vector is non-negative; flip sign if the iteration landed on -v.
  double sum = 0.0;
  for (double v : x) sum += v;
  if (sum < 0.0) linalg::scale(x, -1.0);
  for (double& v : x) v = std::max(v, 0.0);
  return x;
}

std::vector<double> pagerank(const graph::Graph& g, double alpha,
                             std::size_t max_iterations, double tolerance) {
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "pagerank: empty graph");
  util::require(alpha >= 0.0 && alpha < 1.0, "pagerank: alpha must be in [0,1)");

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      const std::size_t deg = g.degree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = alpha * rank[u] / static_cast<double>(deg);
      for (std::uint32_t v : g.neighbors(u)) next[v] += share;
    }
    const double base =
        (1.0 - alpha) / static_cast<double>(n) +
        alpha * dangling / static_cast<double>(n);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] += base;
      diff += std::fabs(next[i] - rank[i]);
    }
    std::swap(rank, next);
    if (diff < tolerance) break;
  }
  return rank;
}

std::vector<double> closeness_centrality(const graph::Graph& g,
                                         std::size_t num_sources,
                                         std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "closeness: empty graph");
  util::require(num_sources >= 1, "closeness: need at least one source");

  std::vector<std::size_t> sources;
  if (num_sources >= n) {
    sources.resize(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
  } else {
    random::Rng rng(seed);
    sources = random::sample_without_replacement(rng, n, num_sources);
  }

  std::vector<double> total(n, 0.0);
  for (std::size_t s : sources) {
    const auto dist = graph::bfs_distances(g, s);
    for (std::size_t u = 0; u < n; ++u) {
      const double d = dist[u] == std::numeric_limits<std::size_t>::max()
                           ? static_cast<double>(n)
                           : static_cast<double>(dist[u]);
      total[u] += d;
    }
  }
  std::vector<double> scores(n);
  const double scale =
      static_cast<double>(n) / static_cast<double>(sources.size());
  for (std::size_t u = 0; u < n; ++u) {
    // +1 keeps the score finite for the (sampled-source) zero-distance case.
    scores[u] = 1.0 / (1.0 + scale * total[u]);
  }
  return scores;
}

std::vector<double> centrality_from_embedding(
    const linalg::DenseMatrix& top_left_singular) {
  util::require(top_left_singular.cols() >= 1,
                "centrality_from_embedding: need at least one column");
  std::vector<double> scores(top_left_singular.rows());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = std::fabs(top_left_singular(i, 0));
  }
  return scores;
}

}  // namespace sgp::ranking
