// Rank-agreement metrics between two score vectors over the same node set —
// used to quantify ranking utility of the published graph (top-k overlap is
// the paper's headline ranking metric; Kendall τ and Spearman ρ give the
// full-ranking view).
#pragma once

#include <cstddef>
#include <vector>

namespace sgp::ranking {

/// Indices sorted by descending score; ties broken by ascending index so the
/// ordering is deterministic.
std::vector<std::size_t> ranking_from_scores(const std::vector<double>& scores);

/// |top-k(a) ∩ top-k(b)| / k — the fraction of the true top-k recovered.
/// Requires 1 <= k <= n.
double top_k_overlap(const std::vector<double>& scores_a,
                     const std::vector<double>& scores_b, std::size_t k);

/// Jaccard similarity of the two top-k sets.
double top_k_jaccard(const std::vector<double>& scores_a,
                     const std::vector<double>& scores_b, std::size_t k);

/// Kendall rank correlation τ-a in [-1, 1], computed in O(n log n) via
/// merge-sort inversion counting. Ties contribute as concordant-neutral
/// (τ-a semantics: pairs tied in either ranking count in the denominator).
double kendall_tau(const std::vector<double>& scores_a,
                   const std::vector<double>& scores_b);

/// Spearman rank correlation ρ (Pearson correlation of mid-ranks).
double spearman_rho(const std::vector<double>& scores_a,
                    const std::vector<double>& scores_b);

}  // namespace sgp::ranking
