// The sgp-lint rule set: mechanical enforcement of the repo invariants the
// compiler cannot see. Each rule pattern-matches the comment/string-aware
// token stream (analysis/tokenizer.hpp) — the semantic rules additionally
// use the include/function index (analysis/index.hpp) — and scopes itself
// by root-relative path, so moving a file can change which rules apply —
// deliberately: the invariants are directory contracts.
//
//   R1 rng-discipline    no <random> engines/distributions or C rand()
//                        outside src/random/ — all randomness must flow
//                        through the golden-pinned counter RNG.
//   R2 error-taxonomy    no bare `throw std::*_error` in src/ or tools/
//                        outside util/errors.hpp + util/check.hpp, and
//                        every tool main() must route through run_tool()
//                        (the CLI exit-code contract).
//   R3 metric-registry   every metric/span name literal in src/ or tools/
//                        must appear in src/obs/metric_names.hpp (bench/
//                        and examples/ may add "bench."/"example." names).
//   R4 header-hygiene    headers carry #pragma once and never
//                        `using namespace`.
//   R5 privacy-literals  no non-zero ε/δ/σ floating literals assigned
//                        outside src/dp/ — privacy parameters are policy,
//                        not scatter.
//   R6 include-layering  module includes follow the architecture DAG
//                        (util → {obs,dp,random,linalg,graph} →
//                        {cluster,ranking,core} → {analysis,tools}); no
//                        include cycles; src/random/ kernel internals
//                        (*.inl) stay inside src/random/. Cross-file: runs
//                        in the lint driver's graph phase, not per file.
//   R7 concurrency       no raw std::thread/std::async/manual .lock()
//                        outside src/util/; parallel_for bodies never call
//                        blocking pool APIs; sleeps only in util/retry.
//   R8 privacy-flow      publishing encoders are only called from
//                        functions that visibly receive privacy context
//                        (session/ledger/params argument); ε/δ/σ variables
//                        are initialized from dp/ expressions, not ambient
//                        arithmetic; and mechanism code never hand-rolls a
//                        budget split (privacy value × literal) outside
//                        src/dp/ — use dp::split_budget and friends.
//   R9 fault-registry    every string literal passed to fault_point() /
//                        arm_fault() appears in util/fault_point_names.hpp.
//   R10 span-hygiene     no discarded Span/ScopedTimer temporaries (RAII
//                        guards must be named); log_event only fires under
//                        an active span/sidecar scope.
#pragma once

#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/source_file.hpp"
#include "analysis/tokenizer.hpp"

namespace sgp::analysis {

struct Finding {
  std::string rule;     ///< "R1".."R10"
  std::string file;     ///< root-relative path
  int line = 0;         ///< 1-based
  std::string snippet;  ///< the offending token / name
  std::string message;  ///< human-readable diagnostic
  std::string fix;      ///< optional fix-it hint ("" = none)
};

/// Stable ordering for reports and baselines: (file, line, rule, snippet).
[[nodiscard]] bool finding_less(const Finding& a, const Finding& b);

struct RuleOptions {
  /// Canonical names for R3. Defaults (see default_rule_options) to
  /// obs::names::kAllNames.
  std::vector<std::string> canonical_metric_names;
  /// Canonical fault-point names for R9. Defaults to
  /// util::fault_points::kAllFaultPoints.
  std::vector<std::string> canonical_fault_points;
};

[[nodiscard]] RuleOptions default_rule_options();

inline constexpr std::string_view kAllRuleIds[] = {
    "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"};

/// Static metadata per rule, in kAllRuleIds order — the SARIF
/// tool.driver.rules table and the CLI's rule listing render from this.
struct RuleInfo {
  std::string_view id;
  std::string_view name;        ///< kebab-case short name
  std::string_view short_desc;  ///< one sentence
};

[[nodiscard]] const std::vector<RuleInfo>& all_rule_infos();

/// Individual rules (exposed for targeted tests). Each appends to `out`.
void rule_rng_discipline(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);
void rule_error_taxonomy(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);
void rule_metric_registry(const SourceFile& file,
                          const std::vector<Token>& toks,
                          const RuleOptions& opt, std::vector<Finding>& out);
void rule_header_hygiene(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);
void rule_privacy_literals(const SourceFile& file,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out);

/// Semantic rules R7–R10 (R6 lives in analysis/include_graph.hpp because
/// it needs the whole file set). Defined in rule_*.cpp.
void rule_concurrency(const SourceFile& file, const FileIndex& index,
                      std::vector<Finding>& out);
void rule_privacy_flow(const SourceFile& file, const FileIndex& index,
                       std::vector<Finding>& out);
void rule_fault_registry(const SourceFile& file, const FileIndex& index,
                         const RuleOptions& opt, std::vector<Finding>& out);
void rule_span_hygiene(const SourceFile& file, const FileIndex& index,
                       std::vector<Finding>& out);

/// Builds the file index and runs every per-file rule whose id is in
/// `rule_ids` (empty = all). R6 is cross-file and therefore absent here —
/// the lint driver runs it over all files' include summaries. Returns
/// findings sorted by finding_less.
[[nodiscard]] std::vector<Finding> run_rules(
    const SourceFile& file, const RuleOptions& opt,
    const std::vector<std::string>& rule_ids = {});

/// Same, but also hands back the file's index so the caller (the lint
/// driver) can feed the include summary to the R6 graph phase without
/// re-tokenizing.
[[nodiscard]] std::vector<Finding> run_rules_indexed(
    const SourceFile& file, const RuleOptions& opt,
    const std::vector<std::string>& rule_ids, FileIndex& index_out);

}  // namespace sgp::analysis
