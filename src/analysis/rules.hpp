// The sgp-lint rule set: mechanical enforcement of the repo invariants the
// compiler cannot see. Each rule pattern-matches the comment/string-aware
// token stream (analysis/tokenizer.hpp) and scopes itself by root-relative
// path, so moving a file can change which rules apply — deliberately: the
// invariants are directory contracts.
//
//   R1 rng-discipline    no <random> engines/distributions or C rand()
//                        outside src/random/ — all randomness must flow
//                        through the golden-pinned counter RNG.
//   R2 error-taxonomy    no bare `throw std::*_error` in src/ or tools/
//                        outside util/errors.hpp + util/check.hpp, and
//                        every tool main() must route through run_tool()
//                        (the CLI exit-code contract).
//   R3 metric-registry   every metric/span name literal in src/ or tools/
//                        must appear in src/obs/metric_names.hpp.
//   R4 header-hygiene    headers carry #pragma once and never
//                        `using namespace`.
//   R5 privacy-literals  no non-zero ε/δ/σ floating literals assigned
//                        outside src/dp/ — privacy parameters are policy,
//                        not scatter.
#pragma once

#include <string>
#include <vector>

#include "analysis/source_file.hpp"
#include "analysis/tokenizer.hpp"

namespace sgp::analysis {

struct Finding {
  std::string rule;     ///< "R1".."R5"
  std::string file;     ///< root-relative path
  int line = 0;         ///< 1-based
  std::string snippet;  ///< the offending token / name
  std::string message;  ///< human-readable diagnostic
};

/// Stable ordering for reports and baselines: (file, line, rule, snippet).
[[nodiscard]] bool finding_less(const Finding& a, const Finding& b);

struct RuleOptions {
  /// Canonical names for R3. Defaults (see default_rule_options) to
  /// obs::names::kAllNames.
  std::vector<std::string> canonical_metric_names;
};

[[nodiscard]] RuleOptions default_rule_options();

inline constexpr std::string_view kAllRuleIds[] = {"R1", "R2", "R3", "R4",
                                                   "R5"};

/// Individual rules (exposed for targeted tests). Each appends to `out`.
void rule_rng_discipline(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);
void rule_error_taxonomy(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);
void rule_metric_registry(const SourceFile& file,
                          const std::vector<Token>& toks,
                          const RuleOptions& opt, std::vector<Finding>& out);
void rule_header_hygiene(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out);
void rule_privacy_literals(const SourceFile& file,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out);

/// Tokenizes `file` and runs the rules whose ids are in `rule_ids`
/// (empty = all). Returns findings sorted by finding_less.
[[nodiscard]] std::vector<Finding> run_rules(
    const SourceFile& file, const RuleOptions& opt,
    const std::vector<std::string>& rule_ids = {});

}  // namespace sgp::analysis
