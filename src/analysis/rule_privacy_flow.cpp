// R8 privacy-flow: published bytes only leave through functions that
// visibly hold privacy context, and ε/δ/σ values only originate in dp/.
//
//   (a) Any function whose body calls the publishing encoders
//       (write_published_header / write_published_doubles) must receive
//       the privacy context in its parameter list — a session, ledger,
//       options, or params argument. A helper that writes release bytes
//       without being handed that context is exactly how an uncharged
//       release path appears. The encoder layer itself
//       (src/core/serialization.*) is exempt: it defines the functions.
//
//   (b) An assignment to an ε/δ/σ-named variable must take its value from
//       the dp layer: the right-hand side mentions a dp:: name or another
//       privacy-named value (propagation). Pure literals are R5's
//       business; ambient arithmetic (`sigma = scale * 2`) fires here —
//       calibration formulas belong in src/dp/.
//
//   (c) Propagation does not license arithmetic: a right-hand side that
//       combines a privacy-named value with a numeric literal through
//       +|-|*|/ and no dp:: call (`eps1 = epsilon * 0.5`) is a hand-rolled
//       budget split. Mechanism implementations must split budgets through
//       dp::split_budget / dp::laplace_scale so composition stays auditable
//       in one layer.
#include <string_view>

#include "analysis/rule_support.hpp"
#include "analysis/rules.hpp"

namespace sgp::analysis {
namespace {

using detail::has_prefix;
using detail::has_suffix;
using detail::ident;
using detail::is_privacy_identifier;
using detail::punct;

/// Identifiers that count as privacy context in a parameter list.
bool is_context_identifier(const std::string& name) {
  return has_suffix(name, "Session") || has_suffix(name, "Ledger") ||
         has_suffix(name, "Options") || has_suffix(name, "Params") ||
         name == "PublishedGraph";
}

void check_encoder_callers(const SourceFile& file, const FileIndex& index,
                           std::vector<Finding>& out) {
  const std::vector<Token>& t = index.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier || !punct(t, i + 1, "(")) continue;
    const std::string& name = t[i].text;
    if (name != "write_published_header" &&
        name != "write_published_doubles") {
      continue;
    }
    const FunctionDef* def = enclosing_function(index, i);
    if (def == nullptr) continue;  // file scope: a declaration, not a call
    bool has_context = false;
    for (std::size_t j = def->params_begin;
         j < def->params_end && !has_context; ++j) {
      has_context = t[j].kind == TokKind::kIdentifier &&
                    is_context_identifier(t[j].text);
    }
    if (!has_context) {
      out.push_back({"R8", file.path, t[i].line, name,
                     "privacy-flow: '" + def->name + "' calls " + name +
                         "() without receiving privacy context — release "
                         "bytes must flow through a session/ledger/params-"
                         "bearing signature so the budget charge is "
                         "auditable",
                     "pass the dp::PrivacyParams (or the session/options "
                     "that carry them) into '" + def->name +
                         "' and validate them"});
    }
  }
}

void check_privacy_initializers(const SourceFile& file,
                                const FileIndex& index,
                                std::vector<Finding>& out) {
  if (has_prefix(file.path, "src/dp/")) return;
  const std::vector<Token>& t = index.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        !is_privacy_identifier(t[i].text) || !punct(t, i + 1, "=")) {
      continue;
    }
    // Right-hand side: tokens to the statement end at bracket depth 0.
    int depth = 0;
    std::size_t rhs_begin = i + 2, rhs_end = rhs_begin;
    bool has_dp = false, has_privacy_ident = false, has_string = false;
    bool has_arithmetic = false;
    std::size_t ident_count = 0, literal_count = 0;
    for (std::size_t j = rhs_begin; j < t.size(); ++j) {
      if (t[j].kind == TokKind::kPunct) {
        const std::string& p = t[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") {
          if (depth == 0) break;
          --depth;
        }
        if (depth == 0 && (p == ";" || p == ",")) break;
        if (p == "+" || p == "-" || p == "*" || p == "/") {
          has_arithmetic = true;
        }
      }
      rhs_end = j + 1;
      if (t[j].kind == TokKind::kIdentifier) {
        ++ident_count;
        if (t[j].text == "dp" && punct(t, j + 1, "::")) has_dp = true;
        if (is_privacy_identifier(t[j].text)) has_privacy_ident = true;
      }
      if (t[j].kind == TokKind::kNumber) ++literal_count;
      if (t[j].kind == TokKind::kString) has_string = true;
    }
    if (rhs_end == rhs_begin) continue;  // no initializer
    if (has_dp) continue;                // dp-rooted
    // A string RHS is a *name* that mentions sigma/epsilon (metric-name
    // constants like kPublishSigma = "publish.sigma"), not a value.
    if (has_string) continue;
    if (has_privacy_ident) {
      // Clause (c): propagation plus literal arithmetic is a hand-rolled
      // budget split (`eps1 = epsilon * 0.5`). Plain propagation
      // (`eps = options.params.epsilon`) is fine.
      if (literal_count == 0 || !has_arithmetic) continue;
      out.push_back({"R8", file.path, t[i].line, t[i].text + " = ...",
                     "privacy-flow: '" + t[i].text +
                         "' hand-rolls budget arithmetic on a privacy "
                         "value outside src/dp/ — splitting or scaling "
                         "(ε, δ) by literals belongs in the dp layer",
                     "split the budget via dp::split_budget (or add the "
                     "formula to src/dp/ and call it) instead of inlining "
                     "the arithmetic"});
      continue;
    }
    if (ident_count == 0 && literal_count > 0) continue;  // R5's domain
    out.push_back({"R8", file.path, t[i].line, t[i].text + " = ...",
                   "privacy-flow: '" + t[i].text +
                       "' initialized from an expression with no dp:: "
                       "name and no privacy-named input — calibration "
                       "formulas live in src/dp/",
                   "compute the value via a dp/ function (e.g. "
                   "dp::analytic_gaussian_sigma) or rename the variable "
                   "if it is not a privacy parameter"});
  }
}

}  // namespace

void rule_privacy_flow(const SourceFile& file, const FileIndex& index,
                       std::vector<Finding>& out) {
  if (!has_prefix(file.path, "src/")) return;
  if (file.path == "src/core/serialization.cpp" ||
      file.path == "src/core/serialization.hpp") {
    return;
  }
  check_encoder_callers(file, index, out);
  check_privacy_initializers(file, index, out);
}

}  // namespace sgp::analysis
