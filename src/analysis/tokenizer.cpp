#include "analysis/tokenizer.hpp"

#include <cctype>
#include <cstdlib>

namespace sgp::analysis {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators, longest first so "<<=" beats "<<".
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##",
};

/// String-literal encoding prefixes; a trailing R selects a raw literal.
constexpr std::string_view kStringPrefixes[] = {
    "u8R", "uR", "UR", "LR", "R", "u8", "u", "U", "L",
};

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && splice_length() > 0) {
        pos_ += splice_length();
        ++line_;
        pending_splice_ = true;
        continue;
      }
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (starts_with("//")) {
        skip_line_comment();
        continue;
      }
      if (starts_with("/*")) {
        skip_block_comment();
        continue;
      }
      if (c == '"') {
        lex_string(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        if (lex_string_prefix()) continue;
        lex_identifier();
        continue;
      }
      if (is_digit(c) || (c == '.' && pos_ + 1 < text_.size() &&
                          is_digit(text_[pos_ + 1]))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  bool starts_with(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  /// Length of a backslash-newline splice starting at pos_ (0 if none).
  /// The byte at pos_ must already be known to be '\\'.
  std::size_t splice_length() const {
    if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') return 2;
    if (pos_ + 2 < text_.size() && text_[pos_ + 1] == '\r' &&
        text_[pos_ + 2] == '\n') {
      return 3;
    }
    return 0;
  }

  void emit(TokKind kind, std::string text, int line) {
    out_.push_back(Token{kind, std::move(text), line, pending_splice_});
    pending_splice_ = false;
  }

  void skip_line_comment() {
    // A backslash-newline splices the comment onto the next physical line
    // (C++ phase 2 runs before comment recognition), so `// foo \` hides
    // the following line too — the bug class this loop closes is a
    // continuation line being mistaken for code.
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\' && splice_length() > 0) {
        pos_ += splice_length();
        ++line_;
        continue;
      }
      if (text_[pos_] == '\n') break;
      ++pos_;
    }
  }

  void skip_block_comment() {
    pos_ += 2;
    while (pos_ < text_.size() && !starts_with("*/")) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < text_.size()) pos_ += 2;
  }

  /// Tries to lex an encoding-prefixed string (u8"...", LR"(...)", ...).
  /// Returns false when the upcoming identifier is not a literal prefix.
  bool lex_string_prefix() {
    for (std::string_view prefix : kStringPrefixes) {
      if (starts_with(prefix) && pos_ + prefix.size() < text_.size() &&
          text_[pos_ + prefix.size()] == '"') {
        const bool raw = prefix.back() == 'R';
        pos_ += prefix.size();
        lex_string(raw);
        return true;
      }
    }
    return false;
  }

  void lex_string(bool raw) {
    const int line = line_;
    ++pos_;  // opening quote
    std::string body;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < text_.size() && text_[pos_] != '(') {
        delim.push_back(text_[pos_++]);
      }
      if (pos_ < text_.size()) ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      while (pos_ < text_.size() && !starts_with(closer)) {
        if (text_[pos_] == '\n') ++line_;
        body.push_back(text_[pos_++]);
      }
      if (pos_ < text_.size()) pos_ += closer.size();
    } else {
      while (pos_ < text_.size() && text_[pos_] != '"' &&
             text_[pos_] != '\n') {
        if (text_[pos_] == '\\' && splice_length() > 0) {
          // Phase-2 splice inside the literal: contributes nothing to the
          // string's value but does consume a physical line.
          pos_ += splice_length();
          ++line_;
          continue;
        }
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          body.push_back(text_[pos_++]);
        }
        body.push_back(text_[pos_++]);
      }
      if (pos_ < text_.size() && text_[pos_] == '"') ++pos_;
    }
    emit(TokKind::kString, std::move(body), line);
  }

  void lex_char() {
    const int line = line_;
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '\'' &&
           text_[pos_] != '\n') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        body.push_back(text_[pos_++]);
      }
      body.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') ++pos_;
    emit(TokKind::kChar, std::move(body), line);
  }

  void lex_identifier() {
    const int line = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    emit(TokKind::kIdentifier, std::string(text_.substr(start, pos_ - start)),
         line);
  }

  void lex_number() {
    const int line = line_;
    const std::size_t start = pos_;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (is_ident_char(c) || c == '.') {
        ++pos_;
        continue;
      }
      // Exponent sign: 1e-5, 0x1p+3.
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      // Digit separator: 1'000'000.
      if (c == '\'' && pos_ + 1 < text_.size() &&
          is_ident_char(text_[pos_ + 1])) {
        ++pos_;
        continue;
      }
      break;
    }
    emit(TokKind::kNumber, std::string(text_.substr(start, pos_ - start)),
         line);
  }

  void lex_punct() {
    const int line = line_;
    for (std::string_view p : kPuncts) {
      if (starts_with(p)) {
        pos_ += p.size();
        emit(TokKind::kPunct, std::string(p), line);
        return;
      }
    }
    emit(TokKind::kPunct, std::string(1, text_[pos_]), line);
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool pending_splice_ = false;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view text) {
  return Scanner(text).run();
}

bool is_float_literal(const Token& tok) {
  if (tok.kind != TokKind::kNumber) return false;
  const std::string& t = tok.text;
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    // Hex: floating only with a binary exponent.
    return t.find('p') != std::string::npos ||
           t.find('P') != std::string::npos;
  }
  return t.find('.') != std::string::npos ||
         t.find('e') != std::string::npos ||
         t.find('E') != std::string::npos ||
         t.find('f') != std::string::npos || t.find('F') != std::string::npos;
}

double number_value(const Token& tok) {
  // Digit separators would stop strtod; the repo's lint targets (privacy
  // parameters) never use them, and a separator before the first '.' only
  // truncates the magnitude — still non-zero, which is all R5 asks.
  return std::strtod(tok.text.c_str(), nullptr);
}

}  // namespace sgp::analysis
