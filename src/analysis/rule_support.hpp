// Internal helpers shared by the rule implementations (rules.cpp and the
// rule_*.cpp semantic rules). Not part of the analysis public surface.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/tokenizer.hpp"

namespace sgp::analysis::detail {

inline bool has_prefix(const std::string& path, std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

inline bool has_suffix(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

inline bool ident(const std::vector<Token>& t, std::size_t i,
                  std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier && t[i].text == s;
}

inline bool punct(const std::vector<Token>& t, std::size_t i,
                  std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

/// Index of the ')' matching the '(' at `lp`, or t.size() if unmatched.
inline std::size_t match_paren(const std::vector<Token>& t, std::size_t lp) {
  int depth = 0;
  for (std::size_t j = lp; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

/// Case-insensitive "is this identifier privacy-parameter-named" test
/// shared by R5 and R8: epsilon/delta/sigma anywhere in the name.
inline bool is_privacy_identifier(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("epsilon") != std::string::npos ||
         lower.find("delta") != std::string::npos ||
         lower.find("sigma") != std::string::npos;
}

}  // namespace sgp::analysis::detail
