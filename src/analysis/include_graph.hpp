// R6 include-layering: the architecture DAG, include resolution, and the
// cross-file checks (layer violations, include cycles, kernel-internal
// containment).
//
// The repo's layer order, bottom to top:
//
//     util ─→ obs            (mutual by design: util primitives publish
//      ↑  ←─┘                 their own metrics; the file-level cycle
//      │                      check still forbids header cycles)
//     random ─→ util
//     dp ─→ {random, util}
//     linalg ─→ {random, obs, util}
//     graph ─→ {linalg, random, obs, util}
//     cluster, ranking ─→ {graph, linalg, dp, random, obs, util}
//     core ─→ {cluster, ranking, graph, linalg, dp, random, obs, util}
//     analysis ─→ {obs, util}
//     tools, bench, examples, tests ─→ any src module
//
// Anything not in the table is a violation: a lower layer reaching up
// (util → core), a lateral grab (dp → linalg), or src/ code including
// tools/ headers. The table is exported for the docs drift test.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/rules.hpp"

namespace sgp::analysis {

/// The architecture module a path belongs to: "util", "obs", "dp",
/// "random", "linalg", "graph", "cluster", "ranking", "core", "analysis"
/// for src/<m>/...; "tools", "bench", "tests", "examples" for those
/// top-level trees; "" for anything else (root files, external headers).
[[nodiscard]] std::string module_of_path(const std::string& path);

/// True when module `from` may include headers of module `to`.
/// Self-includes are always allowed; unknown modules ("") never are.
[[nodiscard]] bool layering_allows(const std::string& from,
                                   const std::string& to);

/// Every allowed cross-module edge (from, to), sorted — the source of
/// truth the docs/static_analysis.md DAG table is drift-tested against.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
allowed_module_edges();

/// Resolves a quoted include against the repo file set: tries the target
/// verbatim, rooted at src/, and relative to the includer's directory
/// (".." segments normalized). Returns the root-relative path of the repo
/// file hit, or "" for external headers. `repo_files` must be sorted.
[[nodiscard]] std::string resolve_include(
    const std::string& includer_path, const IncludeDirective& inc,
    const std::vector<std::string>& repo_files);

/// One file's contribution to the include graph — cheap to cache, cheap to
/// recompute the global checks from.
struct FileIncludeSummary {
  std::string path;
  std::vector<IncludeDirective> includes;
};

/// The R6 graph phase: layer-violation, kernel-containment, and
/// include-cycle findings over the whole tree. Runs fresh on every lint
/// (never cached) because each edge's verdict depends on the full file
/// set. `summaries` must be sorted by path; returns findings sorted by
/// finding_less.
[[nodiscard]] std::vector<Finding> check_include_graph(
    const std::vector<FileIncludeSummary>& summaries);

}  // namespace sgp::analysis
