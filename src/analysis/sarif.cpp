#include "analysis/sarif.hpp"

#include <ostream>

namespace sgp::analysis {

void write_lint_report_sarif(const LintResult& result,
                             const LintOptions& options, std::ostream& out) {
  (void)options;
  std::string doc;
  doc += "{\n";
  doc += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  doc += "  \"version\": \"2.1.0\",\n";
  doc += "  \"runs\": [\n";
  doc += "    {\n";
  doc += "      \"tool\": {\n";
  doc += "        \"driver\": {\n";
  doc += "          \"name\": \"sgp-lint\",\n";
  doc += "          \"informationUri\": \"docs/static_analysis.md\",\n";
  doc += "          \"rules\": [";
  bool first = true;
  for (const RuleInfo& info : all_rule_infos()) {
    doc += first ? "\n" : ",\n";
    first = false;
    doc += "            {\"id\": ";
    util::append_json_string(doc, info.id);
    doc += ", \"name\": ";
    util::append_json_string(doc, info.name);
    doc += ",\n             \"shortDescription\": {\"text\": ";
    util::append_json_string(doc, info.short_desc);
    doc += "}}";
  }
  doc += "\n          ]\n";
  doc += "        }\n";
  doc += "      },\n";
  doc += "      \"results\": [";
  first = true;
  for (const Finding& f : result.findings) {
    doc += first ? "\n" : ",\n";
    first = false;
    doc += "        {\"ruleId\": ";
    util::append_json_string(doc, f.rule);
    doc += ", \"level\": \"error\",\n";
    doc += "         \"message\": {\"text\": ";
    util::append_json_string(doc, f.message);
    doc += "},\n";
    doc += "         \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": ";
    util::append_json_string(doc, f.file);
    doc += "}, \"region\": {\"startLine\": " +
           util::json_number(static_cast<std::uint64_t>(
               f.line > 0 ? f.line : 1)) +
           "}}}],\n";
    doc += "         \"properties\": {\"snippet\": ";
    util::append_json_string(doc, f.snippet);
    if (!f.fix.empty()) {
      doc += ", \"fix\": ";
      util::append_json_string(doc, f.fix);
    }
    doc += "}}";
  }
  doc += first ? "]\n" : "\n      ]\n";
  doc += "    }\n";
  doc += "  ]\n";
  doc += "}\n";
  out << doc;
}

std::optional<std::string> validate_sarif_json(const util::JsonValue& doc) {
  if (!doc.is_object()) return "sarif: top level must be an object";
  const util::JsonValue* version = doc.find("version");
  if (version == nullptr || !version->is_string() ||
      version->as_string() != "2.1.0") {
    return "sarif: version must be \"2.1.0\"";
  }
  const util::JsonValue* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array() || runs->as_array().size() != 1) {
    return "sarif: 'runs' must be an array of exactly one run";
  }
  const util::JsonValue& run = runs->as_array()[0];
  const util::JsonValue* tool = run.find("tool");
  const util::JsonValue* driver =
      tool != nullptr ? tool->find("driver") : nullptr;
  if (driver == nullptr || !driver->is_object()) {
    return "sarif: run.tool.driver missing";
  }
  const util::JsonValue* name = driver->find("name");
  if (name == nullptr || !name->is_string() ||
      name->as_string() != "sgp-lint") {
    return "sarif: driver name must be \"sgp-lint\"";
  }
  const util::JsonValue* rules = driver->find("rules");
  if (rules == nullptr || !rules->is_array() || rules->as_array().empty()) {
    return "sarif: driver.rules must be a non-empty array";
  }
  std::vector<std::string> known_ids;
  for (const util::JsonValue& r : rules->as_array()) {
    const util::JsonValue* id = r.find("id");
    const util::JsonValue* sd = r.find("shortDescription");
    if (id == nullptr || !id->is_string() || sd == nullptr ||
        sd->find("text") == nullptr || !sd->find("text")->is_string()) {
      return "sarif: each rule needs string id and shortDescription.text";
    }
    known_ids.push_back(id->as_string());
  }
  const util::JsonValue* results = run.find("results");
  if (results == nullptr || !results->is_array()) {
    return "sarif: run.results must be an array";
  }
  for (const util::JsonValue& r : results->as_array()) {
    const util::JsonValue* rule_id = r.find("ruleId");
    if (rule_id == nullptr || !rule_id->is_string()) {
      return "sarif: result.ruleId must be a string";
    }
    bool known = false;
    for (const std::string& id : known_ids) {
      known = known || id == rule_id->as_string();
    }
    if (!known) {
      return "sarif: result.ruleId '" + rule_id->as_string() +
             "' is not in driver.rules";
    }
    const util::JsonValue* message = r.find("message");
    if (message == nullptr || message->find("text") == nullptr ||
        !message->find("text")->is_string() ||
        message->find("text")->as_string().empty()) {
      return "sarif: result.message.text must be a non-empty string";
    }
    const util::JsonValue* locations = r.find("locations");
    if (locations == nullptr || !locations->is_array() ||
        locations->as_array().size() != 1) {
      return "sarif: result.locations must hold exactly one location";
    }
    const util::JsonValue& loc = locations->as_array()[0];
    const util::JsonValue* phys = loc.find("physicalLocation");
    const util::JsonValue* artifact =
        phys != nullptr ? phys->find("artifactLocation") : nullptr;
    const util::JsonValue* uri =
        artifact != nullptr ? artifact->find("uri") : nullptr;
    if (uri == nullptr || !uri->is_string() || uri->as_string().empty() ||
        uri->as_string()[0] == '/') {
      return "sarif: location uri must be a root-relative path";
    }
    const util::JsonValue* region = phys->find("region");
    const util::JsonValue* start =
        region != nullptr ? region->find("startLine") : nullptr;
    if (start == nullptr || !start->is_number() || start->as_number() < 1) {
      return "sarif: region.startLine must be a number >= 1";
    }
  }
  return std::nullopt;
}

}  // namespace sgp::analysis
