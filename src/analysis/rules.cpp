#include "analysis/rules.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/rule_support.hpp"
#include "obs/metric_names.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::analysis {
namespace {

using detail::has_prefix;
using detail::has_suffix;
using detail::ident;
using detail::is_privacy_identifier;
using detail::punct;

bool is_header(const std::string& path) {
  return has_suffix(path, ".hpp") || has_suffix(path, ".hh") ||
         has_suffix(path, ".h");
}

/// Library/tool code the error- and metric-discipline rules govern. Tests
/// legitimately throw ad-hoc errors and register ad-hoc metric names.
bool in_library_scope(const std::string& path) {
  return has_prefix(path, "src/") || has_prefix(path, "tools/");
}

/// True when token j continues the logical line of token j-1 (same
/// physical line, or separated only by a backslash-newline splice).
bool same_logical_line(const std::vector<Token>& t, std::size_t j) {
  return j < t.size() &&
         (t[j].line == t[j - 1].line || t[j].follows_splice);
}

// --- R1 rng-discipline ----------------------------------------------------

const std::unordered_set<std::string_view>& banned_rng_identifiers() {
  static const std::unordered_set<std::string_view> kSet = {
      // engines / seeds
      "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
      "ranlux24_base", "ranlux48_base", "random_device", "seed_seq",
      "linear_congruential_engine", "mersenne_twister_engine",
      "subtract_with_carry_engine", "discard_block_engine",
      "independent_bits_engine", "shuffle_order_engine",
      // distributions
      "uniform_int_distribution", "uniform_real_distribution",
      "normal_distribution", "bernoulli_distribution",
      "binomial_distribution", "negative_binomial_distribution",
      "geometric_distribution", "poisson_distribution",
      "exponential_distribution", "gamma_distribution",
      "weibull_distribution", "extreme_value_distribution",
      "lognormal_distribution", "chi_squared_distribution",
      "cauchy_distribution", "fisher_f_distribution",
      "student_t_distribution", "discrete_distribution",
      "piecewise_constant_distribution", "piecewise_linear_distribution",
  };
  return kSet;
}

// Hardware entropy intrinsics are banned in *all* scopes, src/random/
// included: a release must be regenerable from (seed, counter) alone, and
// rdrand/rdseed inject machine state no tag can describe. Listed by the
// exact spellings the intrinsic headers define.
const std::unordered_set<std::string_view>& banned_hardware_rng() {
  static const std::unordered_set<std::string_view> kSet = {
      "_rdrand16_step", "_rdrand32_step", "_rdrand64_step",
      "_rdseed16_step", "_rdseed32_step", "_rdseed64_step",
      "__builtin_ia32_rdrand16_step", "__builtin_ia32_rdrand32_step",
      "__builtin_ia32_rdrand64_step", "__builtin_ia32_rdseed16_step",
      "__builtin_ia32_rdseed32_step", "__builtin_ia32_rdseed64_step",
  };
  return kSet;
}

// `#include <header>` at position i of the `include` identifier; returns
// the header name ("immintrin.h") or empty. Handles the dot the tokenizer
// splits ("immintrin" "." "h") and backslash-newline-continued directives.
std::string angle_include_at(const std::vector<Token>& t, std::size_t i) {
  if (!(i >= 1 && punct(t, i - 1, "#") && punct(t, i + 1, "<"))) return {};
  if (!same_logical_line(t, i + 1)) return {};
  std::string header;
  for (std::size_t j = i + 2; j < t.size() && !punct(t, j, ">"); ++j) {
    if (!same_logical_line(t, j)) return {};
    header += t[j].text;
  }
  return header;
}

void r1(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  const bool rng_home = has_prefix(file.path, "src/random/");
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;
    if (banned_hardware_rng().count(name) != 0) {
      out.push_back({"R1", file.path, t[i].line, name,
                     "rng-discipline: hardware entropy '" + name +
                         "' — releases must regenerate from (seed, counter); "
                         "no scope is exempt, src/random/ included",
                     "derive randomness from the counter RNG "
                     "(random/counter_rng.hpp)"});
      continue;
    }
    // SIMD intrinsic headers stay inside the kernel layer: vector code
    // elsewhere would bypass the dispatch/equality contract the kernel TUs
    // are tested under (see DESIGN.md).
    if (!rng_home && name == "include") {
      const std::string header = angle_include_at(t, i);
      if (header == "immintrin.h" || header == "x86intrin.h") {
        out.push_back({"R1", file.path, t[i].line, "<" + header + ">",
                       "rng-discipline: #include <" + header +
                           "> outside src/random/ — SIMD kernels live in the "
                           "dispatched random/ layer only",
                       "call the dispatched kernel API "
                       "(random/kernel_variant.hpp) instead"});
      }
    }
  }
  if (rng_home) return;
  const auto& banned = banned_rng_identifiers();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;
    if (banned.count(name) != 0) {
      out.push_back({"R1", file.path, t[i].line, name,
                     "rng-discipline: '" + name +
                         "' outside src/random/ — use the counter RNG "
                         "(random/counter_rng.hpp)",
                     "use random::CounterRng (or the dp/ samplers built "
                     "on it)"});
      continue;
    }
    // C library RNG: only when actually called, so a member named `rand`
    // in unrelated code does not fire.
    if ((name == "rand" || name == "srand" || name == "drand48" ||
         name == "lrand48") &&
        punct(t, i + 1, "(") && !punct(t, i >= 1 ? i - 1 : 0, ".") &&
        !(i >= 1 && punct(t, i - 1, "->"))) {
      out.push_back({"R1", file.path, t[i].line, name,
                     "rng-discipline: C '" + name +
                         "()' outside src/random/ — use the counter RNG",
                     "use random::CounterRng"});
      continue;
    }
    // #include <random>, splice-aware.
    if (name == "include" && angle_include_at(t, i) == "random") {
      out.push_back({"R1", file.path, t[i].line, "<random>",
                     "rng-discipline: #include <random> outside "
                     "src/random/",
                     "drop the include; random/counter_rng.hpp provides "
                     "the sanctioned engine"});
    }
  }
}

// --- R2 error-taxonomy ----------------------------------------------------

const std::unordered_set<std::string_view>& bare_std_errors() {
  static const std::unordered_set<std::string_view> kSet = {
      "runtime_error", "logic_error",     "invalid_argument",
      "domain_error",  "length_error",    "out_of_range",
      "range_error",   "overflow_error",  "underflow_error",
  };
  return kSet;
}

void r2(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  if (!in_library_scope(file.path)) return;
  const bool taxonomy_home = file.path == "src/util/errors.hpp" ||
                             file.path == "src/util/check.hpp";
  if (!taxonomy_home) {
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (ident(t, i, "throw") && ident(t, i + 1, "std") &&
          punct(t, i + 2, "::") && t[i + 3].kind == TokKind::kIdentifier &&
          bare_std_errors().count(t[i + 3].text) != 0) {
        out.push_back({"R2", file.path, t[i].line,
                       "std::" + t[i + 3].text,
                       "error-taxonomy: bare 'throw std::" + t[i + 3].text +
                           "' — throw a util/errors.hpp taxonomy type (or "
                           "use util/check.hpp) so the CLI exit-code "
                           "contract holds",
                       "throw util::PreconditionError / util::IoError / "
                       "util::ParseError as appropriate"});
      }
    }
  }
  // Tools must map exceptions to exit codes through run_tool().
  if (has_prefix(file.path, "tools/") && has_suffix(file.path, ".cpp")) {
    int main_line = 0;
    bool has_run_tool = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (ident(t, i, "main") && punct(t, i + 1, "(")) main_line = t[i].line;
      if (ident(t, i, "run_tool")) has_run_tool = true;
    }
    if (main_line != 0 && !has_run_tool) {
      out.push_back({"R2", file.path, main_line, "main",
                     "error-taxonomy: tool main() does not route through "
                     "tools::run_tool() — exceptions would bypass the "
                     "exit-code contract",
                     "wrap the body in sgp::tools::run_tool([&]() -> int "
                     "{ ... })"});
    }
  }
}

// --- R3 metric-registry ---------------------------------------------------

void r3(const SourceFile& file, const std::vector<Token>& t,
        const RuleOptions& opt, std::vector<Finding>& out) {
  // bench/ and examples/ are checked too, but may coin names under their
  // own prefix — ad-hoc harness metrics should not pollute the registry.
  std::string local_prefix;
  if (has_prefix(file.path, "bench/")) {
    local_prefix = "bench.";
  } else if (has_prefix(file.path, "examples/")) {
    local_prefix = "example.";
  } else if (!in_library_scope(file.path)) {
    return;
  }
  if (file.path == "src/obs/metric_names.hpp") return;
  const std::unordered_set<std::string_view> canonical(
      opt.canonical_metric_names.begin(), opt.canonical_metric_names.end());
  auto check = [&](const Token& call, const Token& name_tok,
                   const Token* after) {
    // A '+' after the literal means the name is assembled at runtime
    // (e.g. "tool." + task) — out of a static checker's reach.
    if (after != nullptr && after->kind == TokKind::kPunct &&
        after->text == "+") {
      return;
    }
    if (canonical.count(name_tok.text) != 0) return;
    if (!local_prefix.empty() &&
        name_tok.text.rfind(local_prefix, 0) == 0) {
      return;
    }
    const std::string hint =
        local_prefix.empty()
            ? "add the constant to src/obs/metric_names.hpp (and the "
              "docs/observability.md row) or fix the typo"
            : "prefix harness-local names with \"" + local_prefix +
                  "\" or register the constant";
    out.push_back({"R3", file.path, name_tok.line, name_tok.text,
                   "metric-registry: name '" + name_tok.text + "' passed to " +
                       call.text +
                       "() is not in src/obs/metric_names.hpp — add the "
                       "constant there (one source of truth) or fix the "
                       "typo",
                   hint});
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;
    if (name == "counter" || name == "gauge" || name == "histogram" ||
        name == "log_event") {
      if (punct(t, i + 1, "(") && i + 2 < t.size() &&
          t[i + 2].kind == TokKind::kString) {
        check(t[i], t[i + 2], i + 3 < t.size() ? &t[i + 3] : nullptr);
      }
    } else if (name == "Span" || name == "ScopedTimer") {
      // Both `Span("x")` (temporary / member init) and the declaration
      // form `ScopedTimer timer("x")`.
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == TokKind::kIdentifier) ++j;
      if (punct(t, j, "(") && j + 1 < t.size() &&
          t[j + 1].kind == TokKind::kString) {
        check(t[i], t[j + 1], j + 2 < t.size() ? &t[j + 2] : nullptr);
      }
    }
  }
}

// --- R4 header-hygiene ----------------------------------------------------

void r4(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  if (!is_header(file.path)) return;
  bool pragma_once = false;
  for (std::size_t i = 0; i + 2 < t.size() && !pragma_once; ++i) {
    pragma_once = punct(t, i, "#") && ident(t, i + 1, "pragma") &&
                  ident(t, i + 2, "once");
  }
  if (!pragma_once) {
    out.push_back({"R4", file.path, 1, "#pragma once",
                   "header-hygiene: header is missing '#pragma once'",
                   "add '#pragma once' as the first directive"});
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (ident(t, i, "using") && ident(t, i + 1, "namespace")) {
      out.push_back({"R4", file.path, t[i].line, "using namespace",
                     "header-hygiene: 'using namespace' in a header leaks "
                     "into every includer",
                     "qualify the names or scope the using-declaration "
                     "inside a function"});
    }
  }
}

// --- R5 privacy-literals --------------------------------------------------

void r5(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  // Benches and examples set privacy parameters too — they must draw them
  // from dp/defaults.hpp, not re-invent them inline. Tests stay exempt
  // (they probe arbitrary parameter points by design).
  if (!has_prefix(file.path, "src/") && !has_prefix(file.path, "bench/") &&
      !has_prefix(file.path, "examples/")) {
    return;
  }
  if (has_prefix(file.path, "src/dp/")) return;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        !is_privacy_identifier(t[i].text)) {
      continue;
    }
    if (!punct(t, i + 1, "=") && !punct(t, i + 1, "{")) continue;
    std::size_t j = i + 2;
    if (punct(t, j, "-")) ++j;
    if (j >= t.size() || !is_float_literal(t[j])) continue;
    if (number_value(t[j]) == 0.0) continue;  // zero-init is inert
    out.push_back({"R5", file.path, t[i].line,
                   t[i].text + " = " + t[j].text,
                   "privacy-literals: non-zero ε/δ/σ literal '" + t[j].text +
                       "' assigned to '" + t[i].text +
                       "' outside src/dp/ — privacy parameters belong in "
                       "src/dp/ (see dp/defaults.hpp)",
                   "use dp::kDefaultEpsilon / dp::kDefaultDeltaSplit (or "
                   "add a named default to dp/defaults.hpp)"});
  }
}

}  // namespace

bool finding_less(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.snippet < b.snippet;
}

RuleOptions default_rule_options() {
  RuleOptions opt;
  opt.canonical_metric_names.reserve(std::size(obs::names::kAllNames));
  for (std::string_view n : obs::names::kAllNames) {
    opt.canonical_metric_names.emplace_back(n);
  }
  opt.canonical_fault_points.reserve(
      std::size(util::fault_points::kAllFaultPoints));
  for (std::string_view n : util::fault_points::kAllFaultPoints) {
    opt.canonical_fault_points.emplace_back(n);
  }
  return opt;
}

const std::vector<RuleInfo>& all_rule_infos() {
  static const std::vector<RuleInfo> kInfos = {
      {"R1", "rng-discipline",
       "All randomness flows through the counter RNG; no <random> engines, "
       "C rand(), or hardware entropy outside src/random/."},
      {"R2", "error-taxonomy",
       "No bare std exception throws in library code; tool main() routes "
       "through run_tool() so exit codes hold."},
      {"R3", "metric-registry",
       "Metric/span name literals must be registered in "
       "src/obs/metric_names.hpp (bench./example. prefixes excepted)."},
      {"R4", "header-hygiene",
       "Headers carry #pragma once and never 'using namespace'."},
      {"R5", "privacy-literals",
       "Non-zero ε/δ/σ floating literals only in src/dp/ — privacy "
       "parameters are policy, not scatter."},
      {"R6", "include-layering",
       "Includes follow the architecture DAG, contain no cycles, and "
       "src/random/ kernel internals stay in-layer."},
      {"R7", "concurrency-discipline",
       "No raw threads, async, manual lock calls, or ad-hoc sleeps outside "
       "src/util/; parallel_for bodies never block on pool APIs."},
      {"R8", "privacy-flow",
       "Publishing encoders are called only from privacy-context-bearing "
       "signatures; ε/δ/σ values originate in dp/ expressions; budget "
       "splits on privacy values are never hand-rolled outside src/dp/."},
      {"R9", "fault-registry",
       "Fault-point name literals must be canonical "
       "(util/fault_point_names.hpp)."},
      {"R10", "span-hygiene",
       "No discarded Span/ScopedTimer temporaries; log_event only under an "
       "active trace scope."},
  };
  return kInfos;
}

std::vector<Finding> run_rules_indexed(const SourceFile& file,
                                       const RuleOptions& opt,
                                       const std::vector<std::string>& rule_ids,
                                       FileIndex& index_out) {
  index_out = build_file_index(file);
  const std::vector<Token>& toks = index_out.tokens;
  auto enabled = [&](std::string_view id) {
    return rule_ids.empty() ||
           std::find(rule_ids.begin(), rule_ids.end(), id) != rule_ids.end();
  };
  std::vector<Finding> out;
  if (enabled("R1")) r1(file, toks, out);
  if (enabled("R2")) r2(file, toks, out);
  if (enabled("R3")) r3(file, toks, opt, out);
  if (enabled("R4")) r4(file, toks, out);
  if (enabled("R5")) r5(file, toks, out);
  // R6 is cross-file: the lint driver feeds every file's include summary
  // to check_include_graph (analysis/include_graph.hpp).
  if (enabled("R7")) rule_concurrency(file, index_out, out);
  if (enabled("R8")) rule_privacy_flow(file, index_out, out);
  if (enabled("R9")) rule_fault_registry(file, index_out, opt, out);
  if (enabled("R10")) rule_span_hygiene(file, index_out, out);
  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

std::vector<Finding> run_rules(const SourceFile& file,
                               const RuleOptions& opt,
                               const std::vector<std::string>& rule_ids) {
  FileIndex scratch;
  return run_rules_indexed(file, opt, rule_ids, scratch);
}

void rule_rng_discipline(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  r1(file, toks, out);
}
void rule_error_taxonomy(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  r2(file, toks, out);
}
void rule_metric_registry(const SourceFile& file,
                          const std::vector<Token>& toks,
                          const RuleOptions& opt,
                          std::vector<Finding>& out) {
  r3(file, toks, opt, out);
}
void rule_header_hygiene(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  r4(file, toks, out);
}
void rule_privacy_literals(const SourceFile& file,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out) {
  r5(file, toks, out);
}

}  // namespace sgp::analysis
