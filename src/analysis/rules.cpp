#include "analysis/rules.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "obs/metric_names.hpp"

namespace sgp::analysis {
namespace {

bool has_prefix(const std::string& path, std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool has_suffix(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool is_header(const std::string& path) {
  return has_suffix(path, ".hpp") || has_suffix(path, ".hh") ||
         has_suffix(path, ".h");
}

/// Library/tool code the error- and metric-discipline rules govern. Tests,
/// benches, and examples legitimately throw ad-hoc errors and register
/// ad-hoc metric names (test.*, bench.*).
bool in_library_scope(const std::string& path) {
  return has_prefix(path, "src/") || has_prefix(path, "tools/");
}

bool ident(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier && t[i].text == s;
}

bool punct(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

// --- R1 rng-discipline ----------------------------------------------------

const std::unordered_set<std::string_view>& banned_rng_identifiers() {
  static const std::unordered_set<std::string_view> kSet = {
      // engines / seeds
      "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
      "ranlux24_base", "ranlux48_base", "random_device", "seed_seq",
      "linear_congruential_engine", "mersenne_twister_engine",
      "subtract_with_carry_engine", "discard_block_engine",
      "independent_bits_engine", "shuffle_order_engine",
      // distributions
      "uniform_int_distribution", "uniform_real_distribution",
      "normal_distribution", "bernoulli_distribution",
      "binomial_distribution", "negative_binomial_distribution",
      "geometric_distribution", "poisson_distribution",
      "exponential_distribution", "gamma_distribution",
      "weibull_distribution", "extreme_value_distribution",
      "lognormal_distribution", "chi_squared_distribution",
      "cauchy_distribution", "fisher_f_distribution",
      "student_t_distribution", "discrete_distribution",
      "piecewise_constant_distribution", "piecewise_linear_distribution",
  };
  return kSet;
}

// Hardware entropy intrinsics are banned in *all* scopes, src/random/
// included: a release must be regenerable from (seed, counter) alone, and
// rdrand/rdseed inject machine state no tag can describe. Listed by the
// exact spellings the intrinsic headers define.
const std::unordered_set<std::string_view>& banned_hardware_rng() {
  static const std::unordered_set<std::string_view> kSet = {
      "_rdrand16_step", "_rdrand32_step", "_rdrand64_step",
      "_rdseed16_step", "_rdseed32_step", "_rdseed64_step",
      "__builtin_ia32_rdrand16_step", "__builtin_ia32_rdrand32_step",
      "__builtin_ia32_rdrand64_step", "__builtin_ia32_rdseed16_step",
      "__builtin_ia32_rdseed32_step", "__builtin_ia32_rdseed64_step",
  };
  return kSet;
}

// `#include <header>` at position i of the `include` identifier; returns
// the header name ("immintrin.h") or empty. Handles the dot the tokenizer
// splits ("immintrin" "." "h").
std::string angle_include_at(const std::vector<Token>& t, std::size_t i) {
  if (!(i >= 1 && punct(t, i - 1, "#") && punct(t, i + 1, "<"))) return {};
  std::string header;
  for (std::size_t j = i + 2; j < t.size() && !punct(t, j, ">"); ++j) {
    if (t[j].line != t[i].line) return {};
    header += t[j].text;
  }
  return header;
}

void r1(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  const bool rng_home = has_prefix(file.path, "src/random/");
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;
    if (banned_hardware_rng().count(name) != 0) {
      out.push_back({"R1", file.path, t[i].line, name,
                     "rng-discipline: hardware entropy '" + name +
                         "' — releases must regenerate from (seed, counter); "
                         "no scope is exempt, src/random/ included"});
      continue;
    }
    // SIMD intrinsic headers stay inside the kernel layer: vector code
    // elsewhere would bypass the dispatch/equality contract the kernel TUs
    // are tested under (see DESIGN.md).
    if (!rng_home && name == "include") {
      const std::string header = angle_include_at(t, i);
      if (header == "immintrin.h" || header == "x86intrin.h") {
        out.push_back({"R1", file.path, t[i].line, "<" + header + ">",
                       "rng-discipline: #include <" + header +
                           "> outside src/random/ — SIMD kernels live in the "
                           "dispatched random/ layer only"});
      }
    }
  }
  if (rng_home) return;
  const auto& banned = banned_rng_identifiers();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;
    if (banned.count(name) != 0) {
      out.push_back({"R1", file.path, t[i].line, name,
                     "rng-discipline: '" + name +
                         "' outside src/random/ — use the counter RNG "
                         "(random/counter_rng.hpp)"});
      continue;
    }
    // C library RNG: only when actually called, so a member named `rand`
    // in unrelated code does not fire.
    if ((name == "rand" || name == "srand" || name == "drand48" ||
         name == "lrand48") &&
        punct(t, i + 1, "(") && !punct(t, i >= 1 ? i - 1 : 0, ".") &&
        !(i >= 1 && punct(t, i - 1, "->"))) {
      out.push_back({"R1", file.path, t[i].line, name,
                     "rng-discipline: C '" + name +
                         "()' outside src/random/ — use the counter RNG"});
      continue;
    }
    // #include <random>
    if (name == "include" && i >= 1 && punct(t, i - 1, "#") &&
        punct(t, i + 1, "<") && ident(t, i + 2, "random") &&
        punct(t, i + 3, ">")) {
      out.push_back({"R1", file.path, t[i].line, "<random>",
                     "rng-discipline: #include <random> outside "
                     "src/random/"});
    }
  }
}

// --- R2 error-taxonomy ----------------------------------------------------

const std::unordered_set<std::string_view>& bare_std_errors() {
  static const std::unordered_set<std::string_view> kSet = {
      "runtime_error", "logic_error",     "invalid_argument",
      "domain_error",  "length_error",    "out_of_range",
      "range_error",   "overflow_error",  "underflow_error",
  };
  return kSet;
}

void r2(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  if (!in_library_scope(file.path)) return;
  const bool taxonomy_home = file.path == "src/util/errors.hpp" ||
                             file.path == "src/util/check.hpp";
  if (!taxonomy_home) {
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (ident(t, i, "throw") && ident(t, i + 1, "std") &&
          punct(t, i + 2, "::") && t[i + 3].kind == TokKind::kIdentifier &&
          bare_std_errors().count(t[i + 3].text) != 0) {
        out.push_back({"R2", file.path, t[i].line,
                       "std::" + t[i + 3].text,
                       "error-taxonomy: bare 'throw std::" + t[i + 3].text +
                           "' — throw a util/errors.hpp taxonomy type (or "
                           "use util/check.hpp) so the CLI exit-code "
                           "contract holds"});
      }
    }
  }
  // Tools must map exceptions to exit codes through run_tool().
  if (has_prefix(file.path, "tools/") && has_suffix(file.path, ".cpp")) {
    int main_line = 0;
    bool has_run_tool = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (ident(t, i, "main") && punct(t, i + 1, "(")) main_line = t[i].line;
      if (ident(t, i, "run_tool")) has_run_tool = true;
    }
    if (main_line != 0 && !has_run_tool) {
      out.push_back({"R2", file.path, main_line, "main",
                     "error-taxonomy: tool main() does not route through "
                     "tools::run_tool() — exceptions would bypass the "
                     "exit-code contract"});
    }
  }
}

// --- R3 metric-registry ---------------------------------------------------

void r3(const SourceFile& file, const std::vector<Token>& t,
        const RuleOptions& opt, std::vector<Finding>& out) {
  if (!in_library_scope(file.path)) return;
  if (file.path == "src/obs/metric_names.hpp") return;
  const std::unordered_set<std::string_view> canonical(
      opt.canonical_metric_names.begin(), opt.canonical_metric_names.end());
  auto check = [&](const Token& call, const Token& name_tok,
                   const Token* after) {
    // A '+' after the literal means the name is assembled at runtime
    // (e.g. "tool." + task) — out of a static checker's reach.
    if (after != nullptr && after->kind == TokKind::kPunct &&
        after->text == "+") {
      return;
    }
    if (canonical.count(name_tok.text) != 0) return;
    out.push_back({"R3", file.path, name_tok.line, name_tok.text,
                   "metric-registry: name '" + name_tok.text + "' passed to " +
                       call.text +
                       "() is not in src/obs/metric_names.hpp — add the "
                       "constant there (one source of truth) or fix the "
                       "typo"});
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;
    if (name == "counter" || name == "gauge" || name == "histogram" ||
        name == "log_event") {
      if (punct(t, i + 1, "(") && i + 2 < t.size() &&
          t[i + 2].kind == TokKind::kString) {
        check(t[i], t[i + 2], i + 3 < t.size() ? &t[i + 3] : nullptr);
      }
    } else if (name == "Span" || name == "ScopedTimer") {
      // Both `Span("x")` (temporary / member init) and the declaration
      // form `ScopedTimer timer("x")`.
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == TokKind::kIdentifier) ++j;
      if (punct(t, j, "(") && j + 1 < t.size() &&
          t[j + 1].kind == TokKind::kString) {
        check(t[i], t[j + 1], j + 2 < t.size() ? &t[j + 2] : nullptr);
      }
    }
  }
}

// --- R4 header-hygiene ----------------------------------------------------

void r4(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  if (!is_header(file.path)) return;
  bool pragma_once = false;
  for (std::size_t i = 0; i + 2 < t.size() && !pragma_once; ++i) {
    pragma_once = punct(t, i, "#") && ident(t, i + 1, "pragma") &&
                  ident(t, i + 2, "once");
  }
  if (!pragma_once) {
    out.push_back({"R4", file.path, 1, "#pragma once",
                   "header-hygiene: header is missing '#pragma once'"});
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (ident(t, i, "using") && ident(t, i + 1, "namespace")) {
      out.push_back({"R4", file.path, t[i].line, "using namespace",
                     "header-hygiene: 'using namespace' in a header leaks "
                     "into every includer"});
    }
  }
}

// --- R5 privacy-literals --------------------------------------------------

bool is_privacy_identifier(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("epsilon") != std::string::npos ||
         lower.find("delta") != std::string::npos ||
         lower.find("sigma") != std::string::npos;
}

void r5(const SourceFile& file, const std::vector<Token>& t,
        std::vector<Finding>& out) {
  if (!has_prefix(file.path, "src/")) return;
  if (has_prefix(file.path, "src/dp/")) return;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        !is_privacy_identifier(t[i].text)) {
      continue;
    }
    if (!punct(t, i + 1, "=") && !punct(t, i + 1, "{")) continue;
    std::size_t j = i + 2;
    if (punct(t, j, "-")) ++j;
    if (j >= t.size() || !is_float_literal(t[j])) continue;
    if (number_value(t[j]) == 0.0) continue;  // zero-init is inert
    out.push_back({"R5", file.path, t[i].line,
                   t[i].text + " = " + t[j].text,
                   "privacy-literals: non-zero ε/δ/σ literal '" + t[j].text +
                       "' assigned to '" + t[i].text +
                       "' outside src/dp/ — privacy parameters belong in "
                       "src/dp/ (see dp/defaults.hpp)"});
  }
}

}  // namespace

bool finding_less(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.snippet < b.snippet;
}

RuleOptions default_rule_options() {
  RuleOptions opt;
  opt.canonical_metric_names.reserve(std::size(obs::names::kAllNames));
  for (std::string_view n : obs::names::kAllNames) {
    opt.canonical_metric_names.emplace_back(n);
  }
  return opt;
}

std::vector<Finding> run_rules(const SourceFile& file,
                               const RuleOptions& opt,
                               const std::vector<std::string>& rule_ids) {
  const std::vector<Token> toks = tokenize(file.text);
  auto enabled = [&](std::string_view id) {
    return rule_ids.empty() ||
           std::find(rule_ids.begin(), rule_ids.end(), id) != rule_ids.end();
  };
  std::vector<Finding> out;
  if (enabled("R1")) r1(file, toks, out);
  if (enabled("R2")) r2(file, toks, out);
  if (enabled("R3")) r3(file, toks, opt, out);
  if (enabled("R4")) r4(file, toks, out);
  if (enabled("R5")) r5(file, toks, out);
  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

void rule_rng_discipline(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  r1(file, toks, out);
}
void rule_error_taxonomy(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  r2(file, toks, out);
}
void rule_metric_registry(const SourceFile& file,
                          const std::vector<Token>& toks,
                          const RuleOptions& opt,
                          std::vector<Finding>& out) {
  r3(file, toks, opt, out);
}
void rule_header_hygiene(const SourceFile& file,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  r4(file, toks, out);
}
void rule_privacy_literals(const SourceFile& file,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out) {
  r5(file, toks, out);
}

}  // namespace sgp::analysis
