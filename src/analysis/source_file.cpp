#include "analysis/source_file.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace fs = std::filesystem;

namespace sgp::analysis {
namespace {

bool is_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  // .inl: the src/random kernel bodies — walked so the R6 containment
  // check can resolve includes that point at them.
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" ||
         ext == ".h" || ext == ".inl";
}

bool is_skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

}  // namespace

std::vector<std::string> list_source_files(const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    throw util::IoError("lint: not a directory: " + root);
  }
  std::vector<std::string> out;
  fs::recursive_directory_iterator it(root, fs::directory_options::none, ec);
  if (ec) {
    throw util::IoError("lint: cannot walk " + root + ": " + ec.message());
  }
  for (const fs::directory_iterator end; it != fs::end(it); ++it) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (is_skipped_dir(entry.path())) it.disable_recursion_pending();
      continue;
    }
    if (!entry.is_regular_file(ec) || !is_source_extension(entry.path())) {
      continue;
    }
    out.push_back(
        fs::relative(entry.path(), root).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

SourceFile load_source_file(const std::string& root,
                            const std::string& rel_path) {
  const fs::path full = fs::path(root) / fs::path(rel_path);
  std::ifstream in(full, std::ios::binary);
  if (!in.good()) {
    throw util::IoError("lint: cannot open " + full.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw util::IoError("lint: failed reading " + full.string());
  }
  return SourceFile{rel_path, buf.str()};
}

}  // namespace sgp::analysis
