#include "analysis/cache.hpp"

#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace sgp::analysis {

std::string lint_cache_version_key(const RuleOptions& opt,
                                   const std::vector<std::string>& rules) {
  std::string registries;
  for (const std::string& n : opt.canonical_metric_names) {
    registries += n;
    registries += '\n';
  }
  registries += '\x1f';
  for (const std::string& n : opt.canonical_fault_points) {
    registries += n;
    registries += '\n';
  }
  std::string key(kLintEngineVersion);
  key += '|';
  if (rules.empty()) {
    for (std::string_view id : kAllRuleIds) {
      key += id;
      key += ',';
    }
  } else {
    for (const std::string& id : rules) {
      key += id;
      key += ',';
    }
  }
  key += '|';
  key += std::to_string(util::crc32(registries));
  return key;
}

LintCache LintCache::load(const std::string& path,
                          const std::string& version_key) {
  LintCache cache(version_key);
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return cache;
    std::ostringstream buf;
    buf << in.rdbuf();
    const util::JsonValue doc = util::parse_json(buf.str());
    const util::JsonValue* schema = doc.find("schema");
    const util::JsonValue* version = doc.find("version_key");
    const util::JsonValue* files = doc.find("files");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != "sgp-lint-cache-v1" || version == nullptr ||
        !version->is_string() || version->as_string() != version_key ||
        files == nullptr || !files->is_array()) {
      return cache;
    }
    for (const util::JsonValue& f : files->as_array()) {
      const util::JsonValue* p = f.find("path");
      const util::JsonValue* crc = f.find("crc");
      const util::JsonValue* size = f.find("size");
      const util::JsonValue* includes = f.find("includes");
      const util::JsonValue* findings = f.find("findings");
      if (p == nullptr || !p->is_string() || crc == nullptr ||
          !crc->is_number() || size == nullptr || !size->is_number() ||
          includes == nullptr || !includes->is_array() ||
          findings == nullptr || !findings->is_array()) {
        return LintCache(version_key);  // corrupt entry: whole cache cold
      }
      CachedFile entry;
      entry.crc = static_cast<std::uint32_t>(crc->as_number());
      entry.size = static_cast<std::uint64_t>(size->as_number());
      for (const util::JsonValue& inc : includes->as_array()) {
        const util::JsonValue* target = inc.find("target");
        const util::JsonValue* line = inc.find("line");
        const util::JsonValue* angle = inc.find("angle");
        if (target == nullptr || !target->is_string() || line == nullptr ||
            !line->is_number() || angle == nullptr || !angle->is_bool()) {
          return LintCache(version_key);
        }
        entry.includes.push_back({target->as_string(),
                                  static_cast<int>(line->as_number()),
                                  angle->as_bool()});
      }
      for (const util::JsonValue& fd : findings->as_array()) {
        Finding finding;
        const util::JsonValue* rule = fd.find("rule");
        const util::JsonValue* file = fd.find("file");
        const util::JsonValue* line = fd.find("line");
        const util::JsonValue* snippet = fd.find("snippet");
        const util::JsonValue* message = fd.find("message");
        const util::JsonValue* fix = fd.find("fix");
        if (rule == nullptr || !rule->is_string() || file == nullptr ||
            !file->is_string() || line == nullptr || !line->is_number() ||
            snippet == nullptr || !snippet->is_string() ||
            message == nullptr || !message->is_string()) {
          return LintCache(version_key);
        }
        finding.rule = rule->as_string();
        finding.file = file->as_string();
        finding.line = static_cast<int>(line->as_number());
        finding.snippet = snippet->as_string();
        finding.message = message->as_string();
        if (fix != nullptr && fix->is_string()) finding.fix = fix->as_string();
        entry.findings.push_back(std::move(finding));
      }
      cache.files_[p->as_string()] = std::move(entry);
    }
  } catch (const std::exception&) {
    return LintCache(version_key);  // unreadable/corrupt: cold run
  }
  return cache;
}

void LintCache::save(const std::string& path) const {
  std::string doc = "{\n  \"schema\": \"sgp-lint-cache-v1\",\n";
  doc += "  \"version_key\": ";
  util::append_json_string(doc, version_key_);
  doc += ",\n  \"files\": [";
  bool first_file = true;
  for (const auto& [rel, entry] : files_) {
    doc += first_file ? "\n" : ",\n";
    first_file = false;
    doc += "    {\"path\": ";
    util::append_json_string(doc, rel);
    doc += ", \"crc\": " + util::json_number(
                               static_cast<std::uint64_t>(entry.crc));
    doc += ", \"size\": " + util::json_number(entry.size);
    doc += ",\n     \"includes\": [";
    bool first = true;
    for (const IncludeDirective& inc : entry.includes) {
      doc += first ? "" : ", ";
      first = false;
      doc += "{\"target\": ";
      util::append_json_string(doc, inc.target);
      doc += ", \"line\": " + util::json_number(static_cast<std::uint64_t>(
                                  inc.line > 0 ? inc.line : 1));
      doc += ", \"angle\": ";
      doc += inc.angle ? "true" : "false";
      doc += "}";
    }
    doc += "],\n     \"findings\": [";
    first = true;
    for (const Finding& f : entry.findings) {
      doc += first ? "" : ", ";
      first = false;
      doc += "{\"rule\": ";
      util::append_json_string(doc, f.rule);
      doc += ", \"file\": ";
      util::append_json_string(doc, f.file);
      doc += ", \"line\": " + util::json_number(static_cast<std::uint64_t>(
                                  f.line > 0 ? f.line : 1));
      doc += ", \"snippet\": ";
      util::append_json_string(doc, f.snippet);
      doc += ", \"message\": ";
      util::append_json_string(doc, f.message);
      if (!f.fix.empty()) {
        doc += ", \"fix\": ";
        util::append_json_string(doc, f.fix);
      }
      doc += "}";
    }
    doc += "]}";
  }
  doc += first_file ? "]\n}\n" : "\n  ]\n}\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw util::IoError("lint cache: cannot open " + path);
  out << doc;
  out.flush();
  if (!out.good()) throw util::IoError("lint cache: failed writing " + path);
}

const CachedFile* LintCache::lookup(const std::string& rel_path,
                                    std::uint32_t crc,
                                    std::uint64_t size) const {
  const auto it = files_.find(rel_path);
  if (it == files_.end() || it->second.crc != crc ||
      it->second.size != size) {
    return nullptr;
  }
  return &it->second;
}

void LintCache::put(const std::string& rel_path, CachedFile entry) {
  files_[rel_path] = std::move(entry);
}

}  // namespace sgp::analysis
