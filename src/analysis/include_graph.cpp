#include "analysis/include_graph.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace sgp::analysis {
namespace {

bool has_prefix(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool has_suffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Collapses "." and ".." segments ("tests/random/../dp/x.hpp" →
/// "tests/dp/x.hpp"). A ".." that would escape the root empties the path.
std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::istringstream in(path);
  std::string seg;
  while (std::getline(in, seg, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      if (parts.empty()) return {};
      parts.pop_back();
      continue;
    }
    parts.push_back(seg);
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

const std::map<std::string, std::set<std::string>>& edge_table() {
  static const std::map<std::string, std::set<std::string>> kEdges = [] {
    std::map<std::string, std::set<std::string>> e;
    const std::vector<std::string> src_modules = {
        "util", "obs",     "dp",   "random",   "linalg",
        "graph", "cluster", "ranking", "core", "analysis"};
    // The instrumentation exception: util owns the thread pool, retry, and
    // fault-injection primitives, which publish their own obs metrics.
    e["util"] = {"obs"};
    e["obs"] = {"util"};
    e["random"] = {"util"};
    e["dp"] = {"random", "util"};
    e["linalg"] = {"obs", "random", "util"};
    e["graph"] = {"linalg", "obs", "random", "util"};
    e["cluster"] = {"dp", "graph", "linalg", "obs", "random", "util"};
    e["ranking"] = {"dp", "graph", "linalg", "obs", "random", "util"};
    e["core"] = {"cluster", "dp",  "graph",  "linalg", "obs",
                 "random",  "ranking", "util"};
    e["analysis"] = {"obs", "util"};
    for (const char* top : {"tools", "bench", "tests", "examples"}) {
      e[top] = std::set<std::string>(src_modules.begin(), src_modules.end());
    }
    return e;
  }();
  return kEdges;
}

}  // namespace

std::string module_of_path(const std::string& path) {
  for (const char* top : {"tools", "bench", "tests", "examples"}) {
    if (has_prefix(path, std::string(top) + "/")) return top;
  }
  if (!has_prefix(path, "src/")) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  const std::string module = path.substr(4, slash - 4);
  return edge_table().count(module) != 0 ? module : std::string();
}

bool layering_allows(const std::string& from, const std::string& to) {
  if (from.empty() || to.empty()) return false;
  if (from == to) return true;
  const auto it = edge_table().find(from);
  return it != edge_table().end() && it->second.count(to) != 0;
}

const std::vector<std::pair<std::string, std::string>>&
allowed_module_edges() {
  static const std::vector<std::pair<std::string, std::string>> kFlat = [] {
    std::vector<std::pair<std::string, std::string>> flat;
    for (const auto& [from, tos] : edge_table()) {
      for (const std::string& to : tos) flat.emplace_back(from, to);
    }
    return flat;  // map+set iteration is already sorted
  }();
  return kFlat;
}

std::string resolve_include(const std::string& includer_path,
                            const IncludeDirective& inc,
                            const std::vector<std::string>& repo_files) {
  if (inc.angle) return {};  // system/external headers
  auto in_repo = [&](const std::string& candidate) {
    return !candidate.empty() &&
           std::binary_search(repo_files.begin(), repo_files.end(),
                              candidate);
  };
  const std::string verbatim = normalize_path(inc.target);
  if (in_repo(verbatim)) return verbatim;
  const std::string rooted = normalize_path("src/" + inc.target);
  if (in_repo(rooted)) return rooted;
  const std::string dir = dirname_of(includer_path);
  if (!dir.empty()) {
    const std::string relative = normalize_path(dir + "/" + inc.target);
    if (in_repo(relative)) return relative;
  }
  return {};
}

std::vector<Finding> check_include_graph(
    const std::vector<FileIncludeSummary>& summaries) {
  std::vector<std::string> files;
  files.reserve(summaries.size());
  for (const FileIncludeSummary& s : summaries) files.push_back(s.path);

  std::vector<Finding> out;
  // Resolved edges per file, for the cycle pass: (target index, line).
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    index_of[summaries[i].path] = i;
  }
  std::vector<std::vector<std::pair<std::size_t, int>>> edges(
      summaries.size());

  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const FileIncludeSummary& s = summaries[i];
    const std::string from = module_of_path(s.path);
    for (const IncludeDirective& inc : s.includes) {
      const std::string target = resolve_include(s.path, inc, files);
      if (target.empty()) continue;
      edges[i].emplace_back(index_of.at(target), inc.line);
      const std::string to = module_of_path(target);
      if (!from.empty() && !to.empty() && !layering_allows(from, to)) {
        out.push_back(
            {"R6", s.path, inc.line, inc.target,
             "include-layering: " + from + " must not include " + to +
                 " ('" + inc.target + "') — the architecture DAG only "
                 "allows downward edges (docs/static_analysis.md)",
             "move the shared code into a layer both sides may depend on, "
             "or invert the dependency"});
      }
      if (has_suffix(target, ".inl") && has_prefix(target, "src/random/") &&
          !has_prefix(s.path, "src/random/")) {
        out.push_back(
            {"R6", s.path, inc.line, inc.target,
             "include-layering: '" + inc.target + "' is a src/random/ "
                 "kernel internal — *.inl stays inside the dispatched "
                 "random/ layer",
             "call through random/counter_rng.hpp (or kernel_variant.hpp) "
             "instead of including the kernel body"});
      }
    }
  }

  // Include-cycle detection: DFS three-color over the resolved file graph,
  // nodes visited in sorted-path order so reports are deterministic.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(summaries.size(), Color::kWhite);
  std::vector<std::size_t> stack;
  const std::function<void(std::size_t)> visit = [&](std::size_t u) {
    color[u] = Color::kGray;
    stack.push_back(u);
    for (const auto& [v, line] : edges[u]) {
      if (color[v] == Color::kBlack) continue;
      if (color[v] == Color::kGray) {
        // Back edge u→v closes a cycle: v … u on the stack.
        std::string chain;
        for (std::size_t k = 0; k < stack.size(); ++k) {
          if (stack[k] != v && chain.empty()) continue;
          if (!chain.empty()) chain += " -> ";
          chain += summaries[stack[k]].path;
        }
        chain += " -> " + summaries[v].path;
        out.push_back(
            {"R6", summaries[u].path, line, summaries[v].path,
             "include-layering: include cycle " + chain,
             "break the cycle with a forward declaration or by splitting "
             "the shared types into a lower-layer header"});
        continue;
      }
      visit(v);
    }
    stack.pop_back();
    color[u] = Color::kBlack;
  };
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    if (color[i] == Color::kWhite) visit(i);
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

}  // namespace sgp::analysis
