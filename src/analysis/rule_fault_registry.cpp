// R9 fault-point-registry: every fault-point name literal is canonical.
//
// A fault point only earns its keep when chaos tests can arm it — a typo
// in either place ("io.raed") silently produces a point that is armed but
// never hit, or hit but never armed. The registry
// (util/fault_point_names.hpp) is the single source of truth; this rule
// fires on any string literal passed to fault_point() / arm_fault() that
// is not in it. Call sites using the util::fault_points:: constants are
// canonical by construction and pass without lookup.
#include <unordered_set>

#include "analysis/rule_support.hpp"
#include "analysis/rules.hpp"

namespace sgp::analysis {

using detail::has_prefix;
using detail::punct;

void rule_fault_registry(const SourceFile& file, const FileIndex& index,
                         const RuleOptions& opt,
                         std::vector<Finding>& out) {
  const std::string& path = file.path;
  if (!has_prefix(path, "src/") && !has_prefix(path, "tools/") &&
      !has_prefix(path, "bench/")) {
    return;
  }
  // The injection machinery itself manipulates arbitrary spec strings.
  if (has_prefix(path, "src/util/fault_")) return;
  const std::unordered_set<std::string_view> canonical(
      opt.canonical_fault_points.begin(), opt.canonical_fault_points.end());
  const std::vector<Token>& t = index.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        (t[i].text != "fault_point" && t[i].text != "arm_fault") ||
        !punct(t, i + 1, "(") || t[i + 2].kind != TokKind::kString) {
      continue;
    }
    const std::string& name = t[i + 2].text;
    if (canonical.count(name) != 0) {
      // Canonical, but spelled as a literal: still worth nudging toward
      // the constant so a future rename is one edit. Not a finding —
      // literals of canonical names are allowed (tests arm them by name).
      continue;
    }
    out.push_back({"R9", path, t[i + 2].line, name,
                   "fault-registry: point '" + name + "' passed to " +
                       t[i].text +
                       "() is not in util/fault_point_names.hpp — an "
                       "unregistered point can be armed but never hit",
                   "use the util::fault_points:: constant (add it to "
                   "util/fault_point_names.hpp and docs/robustness.md if "
                   "the point is genuinely new)"});
  }
}

}  // namespace sgp::analysis
