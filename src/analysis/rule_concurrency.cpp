// R7 concurrency-discipline: threading primitives stay inside src/util/.
//
// The repo's concurrency story is deliberate and narrow — util::ThreadPool
// + util::parallel_for for data parallelism, util::PeriodicTask for
// tickers, util::retry_with_backoff for waiting. Everything else is a
// hand-rolled liveness bug waiting to happen, so:
//
//   (a) no std::thread / std::jthread / std::async outside src/util/;
//   (b) no manual .lock()/.unlock()/.try_lock() calls outside src/util/
//       (std::lock_guard / std::scoped_lock are fine — they have no such
//       call sites);
//   (c) the body of a util::parallel_for call never calls a pool's
//       blocking submit() — nested fan-out must go through parallel_for
//       itself, which runs nested bodies inline (see thread_pool.hpp);
//   (d) sleeps (sleep_for / sleep_until / usleep / nanosleep) only inside
//       src/util/retry.* — polling loops take a RetryPolicy instead.
#include <string_view>

#include "analysis/rule_support.hpp"
#include "analysis/rules.hpp"

namespace sgp::analysis {

using detail::has_prefix;
using detail::ident;
using detail::match_paren;
using detail::punct;

void rule_concurrency(const SourceFile& file, const FileIndex& index,
                      std::vector<Finding>& out) {
  const std::string& path = file.path;
  if (!has_prefix(path, "src/") && !has_prefix(path, "tools/")) return;
  const bool util_home = has_prefix(path, "src/util/");
  const bool retry_home = path == "src/util/retry.hpp" ||
                          path == "src/util/retry.cpp";
  const std::vector<Token>& t = index.tokens;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& name = t[i].text;

    if (!util_home && (name == "thread" || name == "jthread" ||
                       name == "async") &&
        i >= 2 && ident(t, i - 2, "std") && punct(t, i - 1, "::")) {
      out.push_back({"R7", path, t[i].line, "std::" + name,
                     "concurrency-discipline: raw std::" + name +
                         " outside src/util/ — thread ownership lives in "
                         "the util layer only",
                     "use util::parallel_for / util::ThreadPool for "
                     "fan-out, util::PeriodicTask for tickers"});
      continue;
    }

    if (!util_home &&
        (name == "lock" || name == "unlock" || name == "try_lock") &&
        i >= 1 && (punct(t, i - 1, ".") || punct(t, i - 1, "->")) &&
        punct(t, i + 1, "(")) {
      out.push_back({"R7", path, t[i].line, "." + name + "()",
                     "concurrency-discipline: manual ." + name +
                         "() outside src/util/ — unbalanced lock calls "
                         "are how deadlocks ship",
                     "hold the mutex with std::lock_guard / "
                     "std::scoped_lock, or move the logic into src/util/"});
      continue;
    }

    if (!retry_home &&
        (name == "sleep_for" || name == "sleep_until" ||
         name == "usleep" || name == "nanosleep") &&
        punct(t, i + 1, "(")) {
      out.push_back({"R7", path, t[i].line, name + "()",
                     "concurrency-discipline: '" + name +
                         "()' outside src/util/retry — ad-hoc sleeps hide "
                         "timing assumptions the retry policy makes "
                         "explicit",
                     "use util::retry_with_backoff or "
                     "util::sleep_for_seconds (src/util/retry.hpp)"});
      continue;
    }

    // (c) blocking pool APIs inside a parallel_for body: the lexical
    // extent of the call's argument list. submit() blocks on queue space
    // and its future blocks on workers — from inside a worker that is a
    // deadlock (the PR3 incident this rule pins).
    if (name == "parallel_for" && punct(t, i + 1, "(")) {
      const std::size_t rp = match_paren(t, i + 1);
      for (std::size_t j = i + 2; j < rp; ++j) {
        if (t[j].kind == TokKind::kIdentifier && t[j].text == "submit" &&
            j >= 1 && (punct(t, j - 1, ".") || punct(t, j - 1, "->")) &&
            punct(t, j + 1, "(")) {
          out.push_back({"R7", path, t[j].line, "submit()",
                         "concurrency-discipline: pool submit() inside a "
                         "parallel_for body — a worker blocking on work "
                         "only workers can run deadlocks the pool",
                         "use a nested util::parallel_for (it runs inline "
                         "inside pool workers) instead of submit()"});
        }
      }
    }
  }
}

}  // namespace sgp::analysis
