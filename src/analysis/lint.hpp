// sgp-lint driver: walks a repository root, runs the rule set over every
// C++ source, applies a baseline of grandfathered findings, and renders
// the result as human text or the machine-readable `sgp-lint-report-v1`
// JSON schema (validated like the obs report schema).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/rules.hpp"
#include "util/json.hpp"

namespace sgp::analysis {

struct LintOptions {
  std::string root = ".";
  /// Root-relative path prefixes to skip. Defaults to the deliberate-
  /// violation fixtures used by the lint's own tests.
  std::vector<std::string> exclude_prefixes = {
      "tests/analysis/lint_fixtures/"};
  /// Rule ids to run; empty = all of R1..R10.
  std::vector<std::string> rules;
  RuleOptions rule_options = default_rule_options();
  /// Worker threads for the file walk: 0 = the process-wide pool, 1 =
  /// fully serial, N = a dedicated pool of N. The report is byte-identical
  /// regardless (per-file result slots, one final sort).
  std::size_t threads = 0;
  /// When true, load/save the content-hash incremental cache at
  /// `cache_path` (analysis/cache.hpp): unchanged files reuse their cached
  /// findings and include summaries; only the cross-file R6 graph phase
  /// recomputes. Reports are byte-identical warm vs. cold.
  bool use_cache = false;
  std::string cache_path = ".lint-cache.json";
};

struct LintResult {
  std::vector<Finding> findings;  ///< sorted by finding_less
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings swallowed by the baseline
  /// Files actually tokenized and re-linted this run (cache misses). On a
  /// fully warm cache this is 0 while files_scanned stays the full count.
  std::size_t files_relinted = 0;
  std::size_t cache_hits = 0;
};

/// Walks options.root and lints every source file: per-file rules in
/// parallel (cache-accelerated when options.use_cache), then the R6
/// include-graph phase over every file's include summary. Throws
/// util::IoError when the root cannot be walked or a file cannot be read.
[[nodiscard]] LintResult run_lint(const LintOptions& options);

/// Baseline of grandfathered findings. An entry suppresses up to `count`
/// findings with the same (rule, file, snippet) — line numbers are
/// deliberately not part of the key so unrelated edits above a
/// grandfathered site do not resurrect it.
class Baseline {
 public:
  [[nodiscard]] static Baseline from_findings(
      const std::vector<Finding>& findings);

  /// Parses a `sgp-lint-baseline-v1` JSON document. Throws
  /// util::ParseError on malformed or schema-violating input and
  /// util::IoError when the file cannot be read.
  [[nodiscard]] static Baseline load(const std::string& path);

  void save(const std::string& path) const;  // throws util::IoError
  [[nodiscard]] std::string to_json() const;

  /// Removes baselined findings from `findings`; returns how many were
  /// suppressed.
  std::size_t apply(std::vector<Finding>& findings) const;

  [[nodiscard]] bool empty() const { return counts_.empty(); }

 private:
  // key: rule '\t' file '\t' snippet
  std::map<std::string, std::size_t> counts_;
};

/// Serializes a result as `sgp-lint-report-v1` (deterministic: sorted
/// findings, no timestamps or absolute paths).
void write_lint_report_json(const LintResult& result,
                            const LintOptions& options, std::ostream& out);

/// Human-readable rendering: one `file:line: [rule] message` per finding.
void write_lint_report_text(const LintResult& result, std::ostream& out);

/// Checks a parsed document against the `sgp-lint-report-v1` schema.
/// Returns std::nullopt on success, else a diagnostic.
[[nodiscard]] std::optional<std::string> validate_lint_report_json(
    const util::JsonValue& doc);

}  // namespace sgp::analysis
