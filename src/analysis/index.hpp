// Lightweight per-file semantic index for the sgp-lint R6–R10 rules.
//
// Built on the comment/string-aware tokenizer, the index records the three
// structural facts a flat token stream hides:
//
//   * every #include directive (target text, line, angle vs. quote form),
//     splice-aware so `#include \<newline>"x.hpp"` still counts;
//   * every *named* function definition with its parameter-list and body
//     token spans, found by brace/paren tracking (constructors with member
//     init lists included; lambdas deliberately not — tokens inside a
//     lambda attribute to the enclosing named function, which is the
//     granularity the privacy-flow and span-hygiene rules reason at);
//   * nothing else. This is not an AST: rules that need more context must
//     say so here and pay for it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/source_file.hpp"
#include "analysis/tokenizer.hpp"

namespace sgp::analysis {

struct IncludeDirective {
  std::string target;  ///< literal text, e.g. "util/json.hpp" or "random"
  int line = 0;        ///< 1-based line of the directive
  bool angle = false;  ///< true for <...>, false for "..."
};

/// One named function (or constructor/destructor) definition. Spans are
/// half-open token-index ranges into the token vector the index was built
/// from.
struct FunctionDef {
  std::string name;               ///< unqualified name ("publish", "Session")
  int line = 0;                   ///< 1-based line of the name token
  std::size_t params_begin = 0;   ///< first token inside the ( ... )
  std::size_t params_end = 0;     ///< token index of the closing ')'
  std::size_t body_begin = 0;     ///< first token inside the { ... }
  std::size_t body_end = 0;       ///< token index of the closing '}'
};

struct FileIndex {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<FunctionDef> functions;  ///< in source order, outermost first
};

/// Scans `file` into tokens and builds the index in one pass.
[[nodiscard]] FileIndex build_file_index(const SourceFile& file);

/// Same, reusing an existing token stream (moved in).
[[nodiscard]] FileIndex build_file_index(std::vector<Token> tokens);

/// The innermost function whose body span contains token index `tok`, or
/// nullptr when `tok` sits at file scope (or inside something the indexer
/// does not model, e.g. an operator overload).
[[nodiscard]] const FunctionDef* enclosing_function(const FileIndex& index,
                                                    std::size_t tok);

}  // namespace sgp::analysis
