#include "analysis/index.hpp"

#include <unordered_set>

namespace sgp::analysis {
namespace {

bool ident(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier && t[i].text == s;
}

bool punct(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

/// True when token j continues the logical line of token j-1 (same physical
/// line, or separated only by a backslash-newline splice).
bool same_logical_line(const std::vector<Token>& t, std::size_t j) {
  return j < t.size() &&
         (t[j].line == t[j - 1].line || t[j].follows_splice);
}

/// Keywords that read as `name (` but never open a function definition.
const std::unordered_set<std::string_view>& non_function_keywords() {
  static const std::unordered_set<std::string_view> kSet = {
      "if",       "else",     "for",         "while",    "do",
      "switch",   "case",     "catch",       "return",   "sizeof",
      "alignof",  "alignas",  "decltype",    "new",      "delete",
      "throw",    "static_assert",           "noexcept", "assert",
      "defined",  "operator", "requires",    "constexpr","typeid",
      "co_await", "co_return","co_yield",
  };
  return kSet;
}

/// Index of the ')' matching the '(' at `lp`, or tokens.size() if
/// unmatched.
std::size_t match_paren(const std::vector<Token>& t, std::size_t lp) {
  int depth = 0;
  for (std::size_t j = lp; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

/// Index of the '}' matching the '{' at `lb`, or tokens.size().
std::size_t match_brace(const std::vector<Token>& t, std::size_t lb) {
  int depth = 0;
  for (std::size_t j = lb; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "{") ++depth;
    if (t[j].text == "}" && --depth == 0) return j;
  }
  return t.size();
}

/// Skips one balanced (...) or {...} group starting at `j`; returns the
/// index just past it (tokens.size() when unbalanced).
std::size_t skip_group(const std::vector<Token>& t, std::size_t j) {
  if (punct(t, j, "(")) {
    const std::size_t rp = match_paren(t, j);
    return rp < t.size() ? rp + 1 : t.size();
  }
  if (punct(t, j, "{")) {
    const std::size_t rb = match_brace(t, j);
    return rb < t.size() ? rb + 1 : t.size();
  }
  return j;
}

/// Given the ')' closing a candidate signature, finds the '{' opening its
/// body, walking over cv-qualifiers, noexcept(...), trailing return types,
/// and constructor member-init lists. Returns tokens.size() when the
/// candidate turns out to be a declaration/call rather than a definition.
std::size_t find_body_brace(const std::vector<Token>& t, std::size_t rp) {
  std::size_t j = rp + 1;
  // Bound the scan: real signatures reach their '{' quickly; an unbounded
  // walk could swallow half the file on pathological input.
  const std::size_t limit = std::min(t.size(), j + 64);
  bool in_trailing_return = false;
  while (j < limit) {
    if (punct(t, j, "{")) return j;
    if (punct(t, j, ";") || punct(t, j, ",") || punct(t, j, ")") ||
        punct(t, j, "=")) {
      return t.size();  // declaration, `= default`, or call in an expression
    }
    if (punct(t, j, ":") ) {
      // Constructor member-init list: ident (…) or ident {…}, comma-joined,
      // then the body '{'. The init braces must not be mistaken for it.
      ++j;
      while (j < limit) {
        // Walk the member name (possibly qualified / templated).
        while (j < limit && !punct(t, j, "(") && !punct(t, j, "{") &&
               !punct(t, j, ";")) {
          ++j;
        }
        if (j >= limit || punct(t, j, ";")) return t.size();
        j = skip_group(t, j);
        if (punct(t, j, ",")) {
          ++j;
          continue;
        }
        return punct(t, j, "{") ? j : t.size();
      }
      return t.size();
    }
    if (punct(t, j, "->")) {  // trailing return type
      in_trailing_return = true;
      ++j;
      continue;
    }
    if (ident(t, j, "noexcept") && punct(t, j + 1, "(")) {
      j = skip_group(t, j + 1);
      continue;
    }
    if (ident(t, j, "const") || ident(t, j, "noexcept") ||
        ident(t, j, "override") || ident(t, j, "final") ||
        ident(t, j, "mutable") || ident(t, j, "try")) {
      ++j;
      continue;
    }
    // Inside a trailing return type arbitrary type tokens are fine;
    // anywhere else an unexpected token means "not a definition".
    if (in_trailing_return) {
      ++j;
      continue;
    }
    return t.size();
  }
  return t.size();
}

void scan_includes(const std::vector<Token>& t,
                   std::vector<IncludeDirective>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!punct(t, i, "#") || !ident(t, i + 1, "include")) continue;
    if (i + 2 >= t.size() || !same_logical_line(t, i + 1) ||
        !same_logical_line(t, i + 2)) {
      continue;
    }
    if (t[i + 2].kind == TokKind::kString) {
      out.push_back({t[i + 2].text, t[i].line, /*angle=*/false});
      continue;
    }
    if (punct(t, i + 2, "<")) {
      std::string target;
      std::size_t j = i + 3;
      while (j < t.size() && same_logical_line(t, j) && !punct(t, j, ">")) {
        target += t[j].text;
        ++j;
      }
      if (punct(t, j, ">") && same_logical_line(t, j)) {
        out.push_back({std::move(target), t[i].line, /*angle=*/true});
      }
    }
  }
}

void scan_functions(const std::vector<Token>& t,
                    std::vector<FunctionDef>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier || !punct(t, i + 1, "(")) continue;
    if (non_function_keywords().count(t[i].text) != 0) continue;
    // `x.foo(...)` / `x->foo(...)` are calls, never definitions; a name
    // directly after ':' or ',' is a ctor member initializer (the last
    // one is followed by the ctor body's '{' and would otherwise pass
    // the body-brace check).
    if (i >= 1 && (punct(t, i - 1, ".") || punct(t, i - 1, "->") ||
                   punct(t, i - 1, ":") || punct(t, i - 1, ","))) {
      continue;
    }
    const std::size_t rp = match_paren(t, i + 1);
    if (rp >= t.size()) continue;
    const std::size_t lb = find_body_brace(t, rp);
    if (lb >= t.size()) continue;
    const std::size_t rb = match_brace(t, lb);
    FunctionDef def;
    def.name = t[i].text;
    def.line = t[i].line;
    def.params_begin = i + 2;
    def.params_end = rp;
    def.body_begin = lb + 1;
    def.body_end = rb;  // tokens.size() when unterminated — still a span
    out.push_back(std::move(def));
  }
}

}  // namespace

FileIndex build_file_index(std::vector<Token> tokens) {
  FileIndex index;
  index.tokens = std::move(tokens);
  scan_includes(index.tokens, index.includes);
  scan_functions(index.tokens, index.functions);
  return index;
}

FileIndex build_file_index(const SourceFile& file) {
  return build_file_index(tokenize(file.text));
}

const FunctionDef* enclosing_function(const FileIndex& index,
                                      std::size_t tok) {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& def : index.functions) {
    if (tok < def.body_begin || tok >= def.body_end) continue;
    if (best == nullptr ||
        def.body_end - def.body_begin < best->body_end - best->body_begin) {
      best = &def;
    }
  }
  return best;
}

}  // namespace sgp::analysis
