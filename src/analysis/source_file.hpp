// Repository walker for sgp-lint: enumerates the C++ sources under a root
// directory with deterministic ordering and loads them for scanning.
#pragma once

#include <string>
#include <vector>

namespace sgp::analysis {

/// One source file, path kept root-relative with '/' separators so reports
/// and baselines are machine-independent.
struct SourceFile {
  std::string path;
  std::string text;
};

/// Root-relative paths of every *.cpp / *.cc / *.hpp / *.hh / *.h under
/// `root`, sorted lexicographically. Directories whose name starts with
/// "build" or "." (build trees, .git, .claude) are never entered.
/// Throws util::IoError when `root` is not a readable directory.
[[nodiscard]] std::vector<std::string> list_source_files(
    const std::string& root);

/// Loads one file listed by list_source_files. Throws util::IoError on
/// read failure.
[[nodiscard]] SourceFile load_source_file(const std::string& root,
                                          const std::string& rel_path);

}  // namespace sgp::analysis
