// SARIF 2.1.0 export for sgp-lint reports.
//
// SARIF (Static Analysis Results Interchange Format, OASIS standard) is
// what code-review UIs and CI annotators ingest. The writer emits one run
// with the full R1–R10 rule table in tool.driver.rules, one result per
// finding (ruleId, message, a single physicalLocation with a startLine
// region), and the snippet / fix hint in each result's property bag. The
// document is deterministic: findings arrive sorted, no timestamps, no
// absolute paths (uris are root-relative, matching the JSON report).
//
// The validator checks the subset this writer promises — enough for a
// round-trip test to catch a malformed emit, not a general SARIF
// conformance checker.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "analysis/lint.hpp"
#include "util/json.hpp"

namespace sgp::analysis {

/// Serializes a result as SARIF 2.1.0 (one run, driver "sgp-lint").
void write_lint_report_sarif(const LintResult& result,
                             const LintOptions& options, std::ostream& out);

/// Checks a parsed document against the SARIF subset the writer emits:
/// version "2.1.0", one run, driver named "sgp-lint" with a rules table,
/// and every result carrying a known ruleId, message text, and exactly
/// one physical location with a root-relative uri and startLine >= 1.
/// Returns std::nullopt on success, else a diagnostic.
[[nodiscard]] std::optional<std::string> validate_sarif_json(
    const util::JsonValue& doc);

}  // namespace sgp::analysis
