// Comment- and string-aware C++ token scanner for the sgp-lint rules.
//
// This is not a compiler front end: it produces a flat token stream good
// enough to pattern-match repo invariants (identifiers, punctuation,
// numbers, string/char literals) while guaranteeing that text inside
// comments and string literals can never be mistaken for code — the
// property the lint rules lean on ("std::mt19937 in a comment must not
// fire"). Handles line/block comments, escape sequences, raw strings
// (R"delim(...)delim"), encoding prefixes (u8"", L"", ...), digit
// separators, and the common multi-character operators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sgp::analysis {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< pp-number (integers, floats, hex, separators)
  kString,      ///< text is the literal's contents, quotes stripped
  kChar,        ///< text is the literal's contents, quotes stripped
  kPunct,       ///< operator / punctuator, longest-match (e.g. "::", "<<=")
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based line of the token's first character
  /// True when a backslash-newline splice (C++ translation phase 2) was
  /// crossed since the previous token. Directive-matching rules use this to
  /// keep treating `#include \<newline><random>` as one logical line.
  bool follows_splice = false;
};

/// Scans `text` into tokens; comments vanish entirely. Backslash-newline
/// splices are honoured everywhere the standard honours them (between
/// tokens, inside line comments — which therefore continue onto the next
/// line — and inside string literals). Never throws on malformed input —
/// an unterminated literal is closed at end of file, which is the
/// forgiving behaviour a linter wants.
[[nodiscard]] std::vector<Token> tokenize(std::string_view text);

/// True when a kNumber token is a floating-point literal (has a fraction
/// part, a decimal exponent, or an f/F suffix; hex integers excluded).
[[nodiscard]] bool is_float_literal(const Token& tok);

/// Numeric value of a kNumber token (0.0 when unparseable).
[[nodiscard]] double number_value(const Token& tok);

}  // namespace sgp::analysis
