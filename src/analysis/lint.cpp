#include "analysis/lint.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/errors.hpp"

namespace sgp::analysis {
namespace {

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.snippet;
}

bool excluded(const std::string& path,
              const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

LintResult run_lint(const LintOptions& options) {
  LintResult result;
  for (const std::string& rel : list_source_files(options.root)) {
    if (excluded(rel, options.exclude_prefixes)) continue;
    const SourceFile file = load_source_file(options.root, rel);
    std::vector<Finding> found =
        run_rules(file, options.rule_options, options.rules);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
    ++result.files_scanned;
  }
  std::sort(result.findings.begin(), result.findings.end(), finding_less);
  return result;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) ++b.counts_[baseline_key(f)];
  return b;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw util::IoError("baseline: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const util::JsonValue doc = util::parse_json(buf.str());
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sgp-lint-baseline-v1") {
    throw util::ParseError("baseline: missing schema sgp-lint-baseline-v1");
  }
  const util::JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw util::ParseError("baseline: 'entries' must be an array");
  }
  Baseline b;
  for (const util::JsonValue& e : entries->as_array()) {
    const util::JsonValue* rule = e.find("rule");
    const util::JsonValue* file = e.find("file");
    const util::JsonValue* snippet = e.find("snippet");
    const util::JsonValue* count = e.find("count");
    if (rule == nullptr || !rule->is_string() || file == nullptr ||
        !file->is_string() || snippet == nullptr || !snippet->is_string() ||
        count == nullptr || !count->is_number() || count->as_number() < 1) {
      throw util::ParseError(
          "baseline: each entry needs string rule/file/snippet and "
          "count >= 1");
    }
    Finding f;
    f.rule = rule->as_string();
    f.file = file->as_string();
    f.snippet = snippet->as_string();
    b.counts_[baseline_key(f)] +=
        static_cast<std::size_t>(count->as_number());
  }
  return b;
}

std::string Baseline::to_json() const {
  std::string out = "{\n  \"schema\": \"sgp-lint-baseline-v1\",\n"
                    "  \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : counts_) {
    const std::size_t tab1 = key.find('\t');
    const std::size_t tab2 = key.find('\t', tab1 + 1);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": ";
    util::append_json_string(out, key.substr(0, tab1));
    out += ", \"file\": ";
    util::append_json_string(out, key.substr(tab1 + 1, tab2 - tab1 - 1));
    out += ", \"snippet\": ";
    util::append_json_string(out, key.substr(tab2 + 1));
    out += ", \"count\": " + util::json_number(
                                 static_cast<std::uint64_t>(count)) +
           "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void Baseline::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw util::IoError("baseline: cannot open " + path);
  out << to_json();
  out.flush();
  if (!out.good()) throw util::IoError("baseline: failed writing " + path);
}

std::size_t Baseline::apply(std::vector<Finding>& findings) const {
  std::map<std::string, std::size_t> remaining = counts_;
  std::size_t suppressed = 0;
  auto keep = [&](const Finding& f) {
    auto it = remaining.find(baseline_key(f));
    if (it == remaining.end() || it->second == 0) return true;
    --it->second;
    ++suppressed;
    return false;
  };
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    if (keep(f)) kept.push_back(std::move(f));
  }
  findings = std::move(kept);
  return suppressed;
}

void write_lint_report_json(const LintResult& result,
                            const LintOptions& options, std::ostream& out) {
  std::string doc = "{\n  \"schema\": \"sgp-lint-report-v1\",\n";
  doc += "  \"rules\": [";
  bool first = true;
  if (options.rules.empty()) {
    for (std::string_view id : kAllRuleIds) {
      doc += first ? "" : ", ";
      first = false;
      util::append_json_string(doc, id);
    }
  } else {
    for (const std::string& id : options.rules) {
      doc += first ? "" : ", ";
      first = false;
      util::append_json_string(doc, id);
    }
  }
  doc += "],\n";
  doc += "  \"files_scanned\": " +
         util::json_number(static_cast<std::uint64_t>(result.files_scanned)) +
         ",\n";
  doc += "  \"suppressed\": " +
         util::json_number(static_cast<std::uint64_t>(result.suppressed)) +
         ",\n";
  doc += "  \"findings\": [";
  first = true;
  for (const Finding& f : result.findings) {
    doc += first ? "\n" : ",\n";
    first = false;
    doc += "    {\"rule\": ";
    util::append_json_string(doc, f.rule);
    doc += ", \"file\": ";
    util::append_json_string(doc, f.file);
    doc += ", \"line\": " +
           util::json_number(static_cast<std::uint64_t>(
               f.line > 0 ? static_cast<std::uint64_t>(f.line) : 1)) +
           ", \"snippet\": ";
    util::append_json_string(doc, f.snippet);
    doc += ", \"message\": ";
    util::append_json_string(doc, f.message);
    doc += "}";
  }
  doc += first ? "]\n}\n" : "\n  ]\n}\n";
  out << doc;
}

void write_lint_report_text(const LintResult& result, std::ostream& out) {
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  out << result.findings.size() << " finding(s), " << result.suppressed
      << " baselined, " << result.files_scanned << " file(s) scanned\n";
}

std::optional<std::string> validate_lint_report_json(
    const util::JsonValue& doc) {
  if (!doc.is_object()) return "report: top level must be an object";
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sgp-lint-report-v1") {
    return "report: schema must be \"sgp-lint-report-v1\"";
  }
  const util::JsonValue* rules = doc.find("rules");
  if (rules == nullptr || !rules->is_array()) {
    return "report: 'rules' must be an array";
  }
  for (const util::JsonValue& r : rules->as_array()) {
    if (!r.is_string()) return "report: rule ids must be strings";
  }
  for (const char* key : {"files_scanned", "suppressed"}) {
    const util::JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_number() || v->as_number() < 0) {
      return std::string("report: '") + key +
             "' must be a non-negative number";
    }
  }
  const util::JsonValue* findings = doc.find("findings");
  if (findings == nullptr || !findings->is_array()) {
    return "report: 'findings' must be an array";
  }
  for (const util::JsonValue& f : findings->as_array()) {
    if (!f.is_object()) return "report: findings must be objects";
    const util::JsonValue* rule = f.find("rule");
    if (rule == nullptr || !rule->is_string() ||
        rule->as_string().size() != 2 || rule->as_string()[0] != 'R') {
      return "report: finding 'rule' must be an R<n> id";
    }
    const util::JsonValue* file = f.find("file");
    if (file == nullptr || !file->is_string() || file->as_string().empty()) {
      return "report: finding 'file' must be a non-empty string";
    }
    const util::JsonValue* line = f.find("line");
    if (line == nullptr || !line->is_number() || line->as_number() < 1) {
      return "report: finding 'line' must be a number >= 1";
    }
    for (const char* key : {"snippet", "message"}) {
      const util::JsonValue* v = f.find(key);
      if (v == nullptr || !v->is_string()) {
        return std::string("report: finding '") + key +
               "' must be a string";
      }
    }
  }
  return std::nullopt;
}

}  // namespace sgp::analysis
