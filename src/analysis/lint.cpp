#include "analysis/lint.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "analysis/cache.hpp"
#include "analysis/include_graph.hpp"
#include "util/crc32.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace sgp::analysis {
namespace {

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.snippet;
}

bool excluded(const std::string& path,
              const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

/// Per-file work product. Indexed slots keep the walk deterministic no
/// matter how the pool interleaves files.
struct FileSlot {
  std::uint32_t crc = 0;
  std::uint64_t size = 0;
  std::vector<Finding> findings;
  std::vector<IncludeDirective> includes;
  bool relinted = false;
  std::exception_ptr error;
};

}  // namespace

LintResult run_lint(const LintOptions& options) {
  std::vector<std::string> files;
  for (std::string& rel : list_source_files(options.root)) {
    if (!excluded(rel, options.exclude_prefixes)) {
      files.push_back(std::move(rel));
    }
  }

  const std::string version_key =
      lint_cache_version_key(options.rule_options, options.rules);
  LintCache cache = options.use_cache
                        ? LintCache::load(options.cache_path, version_key)
                        : LintCache(version_key);

  std::vector<FileSlot> slots(files.size());
  const auto work = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      FileSlot& slot = slots[i];
      try {
        const SourceFile file = load_source_file(options.root, files[i]);
        slot.crc = util::crc32(file.text);
        slot.size = file.text.size();
        if (const CachedFile* hit =
                cache.lookup(files[i], slot.crc, slot.size)) {
          slot.findings = hit->findings;
          slot.includes = hit->includes;
        } else {
          FileIndex index;
          slot.findings = run_rules_indexed(file, options.rule_options,
                                            options.rules, index);
          slot.includes = std::move(index.includes);
          slot.relinted = true;
        }
      } catch (...) {
        slot.error = std::current_exception();
      }
    }
  };
  if (options.threads == 1) {
    work(0, files.size());
  } else if (options.threads == 0) {
    util::parallel_for(0, files.size(), work, /*grain=*/1);
  } else {
    util::ThreadPool pool(options.threads);
    util::parallel_for(pool, 0, files.size(), work, /*grain=*/1);
  }
  // First (lowest-index) failure wins, so errors are deterministic too.
  for (const FileSlot& slot : slots) {
    if (slot.error != nullptr) std::rethrow_exception(slot.error);
  }

  LintResult result;
  const bool want_graph_phase =
      options.rules.empty() ||
      std::find(options.rules.begin(), options.rules.end(), "R6") !=
          options.rules.end();
  std::vector<FileIncludeSummary> summaries;
  if (want_graph_phase) summaries.reserve(files.size());
  LintCache next_cache(version_key);  // entries for vanished files drop out
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileSlot& slot = slots[i];
    ++result.files_scanned;
    slot.relinted ? ++result.files_relinted : ++result.cache_hits;
    if (want_graph_phase) {
      summaries.push_back({files[i], slot.includes});
    }
    if (options.use_cache) {
      next_cache.put(files[i], CachedFile{slot.crc, slot.size,
                                          slot.includes, slot.findings});
    }
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(slot.findings.begin()),
                           std::make_move_iterator(slot.findings.end()));
  }
  if (want_graph_phase) {
    // Cross-file: always recomputed from the (possibly cached) include
    // summaries, never cached itself — every edge's verdict depends on
    // the full file set.
    std::vector<Finding> graph = check_include_graph(summaries);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(graph.begin()),
                           std::make_move_iterator(graph.end()));
  }
  std::sort(result.findings.begin(), result.findings.end(), finding_less);
  if (options.use_cache) next_cache.save(options.cache_path);
  return result;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) ++b.counts_[baseline_key(f)];
  return b;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw util::IoError("baseline: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const util::JsonValue doc = util::parse_json(buf.str());
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sgp-lint-baseline-v1") {
    throw util::ParseError("baseline: missing schema sgp-lint-baseline-v1");
  }
  const util::JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw util::ParseError("baseline: 'entries' must be an array");
  }
  Baseline b;
  for (const util::JsonValue& e : entries->as_array()) {
    const util::JsonValue* rule = e.find("rule");
    const util::JsonValue* file = e.find("file");
    const util::JsonValue* snippet = e.find("snippet");
    const util::JsonValue* count = e.find("count");
    if (rule == nullptr || !rule->is_string() || file == nullptr ||
        !file->is_string() || snippet == nullptr || !snippet->is_string() ||
        count == nullptr || !count->is_number() || count->as_number() < 1) {
      throw util::ParseError(
          "baseline: each entry needs string rule/file/snippet and "
          "count >= 1");
    }
    Finding f;
    f.rule = rule->as_string();
    f.file = file->as_string();
    f.snippet = snippet->as_string();
    b.counts_[baseline_key(f)] +=
        static_cast<std::size_t>(count->as_number());
  }
  return b;
}

std::string Baseline::to_json() const {
  std::string out = "{\n  \"schema\": \"sgp-lint-baseline-v1\",\n"
                    "  \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : counts_) {
    const std::size_t tab1 = key.find('\t');
    const std::size_t tab2 = key.find('\t', tab1 + 1);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": ";
    util::append_json_string(out, key.substr(0, tab1));
    out += ", \"file\": ";
    util::append_json_string(out, key.substr(tab1 + 1, tab2 - tab1 - 1));
    out += ", \"snippet\": ";
    util::append_json_string(out, key.substr(tab2 + 1));
    out += ", \"count\": " + util::json_number(
                                 static_cast<std::uint64_t>(count)) +
           "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void Baseline::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw util::IoError("baseline: cannot open " + path);
  out << to_json();
  out.flush();
  if (!out.good()) throw util::IoError("baseline: failed writing " + path);
}

std::size_t Baseline::apply(std::vector<Finding>& findings) const {
  std::map<std::string, std::size_t> remaining = counts_;
  std::size_t suppressed = 0;
  auto keep = [&](const Finding& f) {
    auto it = remaining.find(baseline_key(f));
    if (it == remaining.end() || it->second == 0) return true;
    --it->second;
    ++suppressed;
    return false;
  };
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    if (keep(f)) kept.push_back(std::move(f));
  }
  findings = std::move(kept);
  return suppressed;
}

void write_lint_report_json(const LintResult& result,
                            const LintOptions& options, std::ostream& out) {
  std::string doc = "{\n  \"schema\": \"sgp-lint-report-v1\",\n";
  doc += "  \"rules\": [";
  bool first = true;
  if (options.rules.empty()) {
    for (std::string_view id : kAllRuleIds) {
      doc += first ? "" : ", ";
      first = false;
      util::append_json_string(doc, id);
    }
  } else {
    for (const std::string& id : options.rules) {
      doc += first ? "" : ", ";
      first = false;
      util::append_json_string(doc, id);
    }
  }
  doc += "],\n";
  doc += "  \"files_scanned\": " +
         util::json_number(static_cast<std::uint64_t>(result.files_scanned)) +
         ",\n";
  doc += "  \"suppressed\": " +
         util::json_number(static_cast<std::uint64_t>(result.suppressed)) +
         ",\n";
  doc += "  \"findings\": [";
  first = true;
  for (const Finding& f : result.findings) {
    doc += first ? "\n" : ",\n";
    first = false;
    doc += "    {\"rule\": ";
    util::append_json_string(doc, f.rule);
    doc += ", \"file\": ";
    util::append_json_string(doc, f.file);
    doc += ", \"line\": " +
           util::json_number(static_cast<std::uint64_t>(
               f.line > 0 ? static_cast<std::uint64_t>(f.line) : 1)) +
           ", \"snippet\": ";
    util::append_json_string(doc, f.snippet);
    doc += ", \"message\": ";
    util::append_json_string(doc, f.message);
    if (!f.fix.empty()) {
      doc += ", \"fix\": ";
      util::append_json_string(doc, f.fix);
    }
    doc += "}";
  }
  doc += first ? "]\n}\n" : "\n  ]\n}\n";
  out << doc;
}

void write_lint_report_text(const LintResult& result, std::ostream& out) {
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.fix.empty()) out << "    fix: " << f.fix << "\n";
  }
  out << result.findings.size() << " finding(s), " << result.suppressed
      << " baselined, " << result.files_scanned << " file(s) scanned\n";
}

std::optional<std::string> validate_lint_report_json(
    const util::JsonValue& doc) {
  if (!doc.is_object()) return "report: top level must be an object";
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "sgp-lint-report-v1") {
    return "report: schema must be \"sgp-lint-report-v1\"";
  }
  const util::JsonValue* rules = doc.find("rules");
  if (rules == nullptr || !rules->is_array()) {
    return "report: 'rules' must be an array";
  }
  for (const util::JsonValue& r : rules->as_array()) {
    if (!r.is_string()) return "report: rule ids must be strings";
  }
  for (const char* key : {"files_scanned", "suppressed"}) {
    const util::JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_number() || v->as_number() < 0) {
      return std::string("report: '") + key +
             "' must be a non-negative number";
    }
  }
  const util::JsonValue* findings = doc.find("findings");
  if (findings == nullptr || !findings->is_array()) {
    return "report: 'findings' must be an array";
  }
  for (const util::JsonValue& f : findings->as_array()) {
    if (!f.is_object()) return "report: findings must be objects";
    const util::JsonValue* rule = f.find("rule");
    const bool rule_ok = [&] {
      if (rule == nullptr || !rule->is_string()) return false;
      const std::string& id = rule->as_string();
      if (id.size() < 2 || id.size() > 3 || id[0] != 'R') return false;
      for (std::size_t i = 1; i < id.size(); ++i) {
        if (id[i] < '0' || id[i] > '9') return false;
      }
      return true;
    }();
    if (!rule_ok) return "report: finding 'rule' must be an R<n> id";
    const util::JsonValue* file = f.find("file");
    if (file == nullptr || !file->is_string() || file->as_string().empty()) {
      return "report: finding 'file' must be a non-empty string";
    }
    const util::JsonValue* line = f.find("line");
    if (line == nullptr || !line->is_number() || line->as_number() < 1) {
      return "report: finding 'line' must be a number >= 1";
    }
    for (const char* key : {"snippet", "message"}) {
      const util::JsonValue* v = f.find(key);
      if (v == nullptr || !v->is_string()) {
        return std::string("report: finding '") + key +
               "' must be a string";
      }
    }
    const util::JsonValue* fix = f.find("fix");
    if (fix != nullptr && !fix->is_string()) {
      return "report: finding 'fix' must be a string when present";
    }
  }
  return std::nullopt;
}

}  // namespace sgp::analysis
