// Content-hash incremental cache for the lint driver.
//
// One entry per file: (crc32, size) of the file's bytes, its include
// directives, and the per-file findings it produced. On a warm run a file
// whose bytes are unchanged is not re-tokenized — its cached findings and
// include summary are reused, and only the cross-file R6 graph phase
// (cheap: pure path/edge work) runs fresh. That makes the cache safe for
// cross-file rules by construction: nothing whose verdict depends on
// *other* files is ever cached.
//
// The whole cache is keyed by a version string covering the engine
// version, the enabled rule set, and the canonical name registries — any
// change to what the rules would say invalidates every entry at once.
// A cache that fails to load (missing, corrupt, foreign schema, stale
// version) degrades silently to a cold run; the cache is an accelerator,
// never a source of truth.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/rules.hpp"

namespace sgp::analysis {

/// The engine fingerprint baked into every cache's version key. Bump when
/// a rule's behaviour changes so stale findings cannot be replayed.
inline constexpr std::string_view kLintEngineVersion = "sgp-lint-engine-2";

struct CachedFile {
  std::uint32_t crc = 0;   ///< util::crc32 of the file bytes
  std::uint64_t size = 0;  ///< byte count (cheap second factor)
  std::vector<IncludeDirective> includes;
  std::vector<Finding> findings;  ///< per-file findings, sorted
};

/// The version key for a lint configuration: engine version + rule ids +
/// canonical registries. Two runs with equal keys agree on every cached
/// verdict.
[[nodiscard]] std::string lint_cache_version_key(
    const RuleOptions& opt, const std::vector<std::string>& rules);

class LintCache {
 public:
  explicit LintCache(std::string version_key)
      : version_key_(std::move(version_key)) {}

  /// Loads `path` if it exists, parses as `sgp-lint-cache-v1`, and keeps
  /// the entries only when the stored version key equals `version_key`.
  /// Never throws: any failure returns an empty cache.
  [[nodiscard]] static LintCache load(const std::string& path,
                                      const std::string& version_key);

  /// Serializes deterministically (entries sorted by path). Throws
  /// util::IoError on write failure.
  void save(const std::string& path) const;

  /// The entry for `rel_path` when both crc and size match, else nullptr.
  [[nodiscard]] const CachedFile* lookup(const std::string& rel_path,
                                         std::uint32_t crc,
                                         std::uint64_t size) const;

  void put(const std::string& rel_path, CachedFile entry);

  [[nodiscard]] std::size_t entry_count() const { return files_.size(); }

 private:
  std::string version_key_;
  std::map<std::string, CachedFile> files_;
};

}  // namespace sgp::analysis
