// R10 span-hygiene: RAII observability guards are held, not dropped.
//
//   (a) `obs::Span("x");` / `obs::ScopedTimer("x");` as a statement
//       constructs a temporary that dies at the semicolon — the span
//       closes instantly and times nothing. The guard must be named.
//   (b) log_event() attaches events to the ambient trace scope; calling
//       it from a function that never opens one (no Span/ScopedTimer
//       declared earlier in the body, none received as a parameter, no
//       sidecar opened) emits an event no trace can anchor. src/obs/ is
//       exempt — it implements the machinery.
//
// Lambdas attribute to the enclosing named function (the indexer does not
// model them), which is the right granularity: a worker lambda logging
// under its parent's span is fine.
#include <string_view>

#include "analysis/rule_support.hpp"
#include "analysis/rules.hpp"

namespace sgp::analysis {
namespace {

using detail::has_prefix;
using detail::ident;
using detail::match_paren;
using detail::punct;

bool is_guard_name(const std::string& name) {
  return name == "Span" || name == "ScopedTimer";
}

/// Token index where the qualified-name chain ending at `i` starts
/// (`obs :: Span` → index of `obs`).
std::size_t chain_start(const std::vector<Token>& t, std::size_t i) {
  while (i >= 2 && punct(t, i - 1, "::") &&
         t[i - 2].kind == TokKind::kIdentifier) {
    i -= 2;
  }
  return i;
}

void check_discarded_guards(const SourceFile& file, const FileIndex& index,
                            std::vector<Finding>& out) {
  const std::vector<Token>& t = index.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier || !is_guard_name(t[i].text) ||
        !punct(t, i + 1, "(")) {
      continue;
    }
    const std::size_t start = chain_start(t, i);
    // Only a statement-position temporary is a bug; `return Span(...)`,
    // `f(Span(...))`, and member-init lists all keep the object alive.
    const bool stmt_start = start == 0 || punct(t, start - 1, ";") ||
                            punct(t, start - 1, "{") ||
                            punct(t, start - 1, "}");
    if (!stmt_start) continue;
    const std::size_t rp = match_paren(t, i + 1);
    if (rp >= t.size() || !punct(t, rp + 1, ";")) continue;
    out.push_back({"R10", file.path, t[i].line, t[i].text + "(...)",
                   "span-hygiene: discarded " + t[i].text +
                       " temporary — the guard closes at the semicolon "
                       "and measures nothing",
                   "name the guard: obs::" + t[i].text +
                       " timer(...); it then spans the enclosing scope"});
  }
}

void check_log_event_scope(const SourceFile& file, const FileIndex& index,
                           std::vector<Finding>& out) {
  const std::vector<Token>& t = index.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!ident(t, i, "log_event") || !punct(t, i + 1, "(")) continue;
    const FunctionDef* def = enclosing_function(index, i);
    if (def == nullptr) continue;
    bool scoped = false;
    // A span received by reference counts as an active scope.
    for (std::size_t j = def->params_begin;
         j < def->params_end && !scoped; ++j) {
      scoped = t[j].kind == TokKind::kIdentifier && is_guard_name(t[j].text);
    }
    // A guard declared (name follows the type) or a sidecar opened
    // earlier in the body.
    for (std::size_t j = def->body_begin; j < i && !scoped; ++j) {
      if (t[j].kind != TokKind::kIdentifier) continue;
      if (is_guard_name(t[j].text) && j + 1 < t.size() &&
          t[j + 1].kind == TokKind::kIdentifier) {
        scoped = true;
      }
      if (t[j].text == "open_sidecar") scoped = true;
    }
    if (scoped) continue;
    out.push_back({"R10", file.path, t[i].line, "log_event",
                   "span-hygiene: log_event() in '" + def->name +
                       "' with no active scope — no Span/ScopedTimer "
                       "opened earlier, none passed in, no sidecar: the "
                       "event has nothing to anchor to",
                   "open an obs::ScopedTimer (with a registered metric "
                   "name) before the first log_event, or pass the "
                   "caller's span in"});
  }
}

}  // namespace

void rule_span_hygiene(const SourceFile& file, const FileIndex& index,
                       std::vector<Finding>& out) {
  if (!has_prefix(file.path, "src/")) return;
  if (has_prefix(file.path, "src/obs/")) return;
  check_discarded_guards(file, index, out);
  check_log_event_scope(file, index, out);
}

}  // namespace sgp::analysis
