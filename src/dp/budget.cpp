#include "dp/budget.hpp"

#include <cstddef>

#include "util/check.hpp"

namespace sgp::dp {

BudgetSplit split_budget(const PrivacyParams& total, double partition_share) {
  total.validate();
  util::require(partition_share > 0.0 && partition_share < 1.0,
                "split_budget: partition_share must be in (0, 1)");
  BudgetSplit split;
  split.partition.epsilon = total.epsilon * partition_share;
  split.partition.delta = total.delta * partition_share;
  split.counts.epsilon = total.epsilon - split.partition.epsilon;
  split.counts.delta = total.delta - split.partition.delta;
  return split;
}

DeltaSplit split_delta(double delta, double first_share) {
  util::require(delta > 0.0, "split_delta: delta must be > 0");
  util::require(first_share > 0.0 && first_share < 1.0,
                "split_delta: first_share must be in (0, 1)");
  DeltaSplit split;
  split.first = delta * first_share;
  split.second = delta - split.first;
  return split;
}

double node_level_edge_epsilon(double epsilon, std::size_t max_degree) {
  util::require(epsilon > 0.0, "node_level_edge_epsilon: epsilon must be > 0");
  util::require(max_degree > 0,
                "node_level_edge_epsilon: max_degree must be > 0");
  return epsilon / static_cast<double>(max_degree);
}

}  // namespace sgp::dp
