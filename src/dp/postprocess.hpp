// Consistency post-processing for DP releases.
//
// Post-processing never costs privacy budget; it only exploits publicly
// known structure. The key tool here is isotonic regression (Pool Adjacent
// Violators): a noisy *sorted* sequence (e.g. a degree sequence released
// with Laplace noise, Hay et al. 2009) is projected back onto the monotone
// cone, provably reducing L2 error.
#pragma once

#include <vector>

namespace sgp::dp {

/// L2 isotonic regression onto non-decreasing sequences (PAVA, O(n)).
/// Returns the closest (in L2) non-decreasing sequence to `values`.
std::vector<double> isotonic_non_decreasing(const std::vector<double>& values);

/// L2 isotonic regression onto non-increasing sequences.
std::vector<double> isotonic_non_increasing(const std::vector<double>& values);

/// Clamps every element to [lo, hi] (e.g. degrees to [0, n-1]).
std::vector<double> clamp_range(std::vector<double> values, double lo,
                                double hi);

/// Rounds to nearest integers and adjusts the total sum parity to be even —
/// a valid degree sequence needs an even sum (handshake lemma). The
/// adjustment (±1 on the last element) is data-independent.
std::vector<std::size_t> to_degree_sequence(const std::vector<double>& values,
                                            std::size_t max_degree);

}  // namespace sgp::dp
