// Canonical default values for privacy parameters that appear outside
// src/dp/. Privacy policy is decided here, in the DP layer — a hard-coded
// ε/δ/σ literal anywhere else in src/ is an sgp-lint R5 violation
// (docs/static_analysis.md), so call sites reference these constants
// instead and the calibration story stays auditable in one place.
#pragma once

namespace sgp::dp {

/// Default share of the total δ assigned to the projection step when a
/// release splits its δ between projection and Gaussian noise
/// (PAPER.md §mechanism; see core/theory.hpp).
inline constexpr double kDefaultDeltaSplit = 0.5;

/// Default total ε for baseline mechanisms that take a single pure-DP
/// budget (core/baselines.hpp).
inline constexpr double kDefaultEpsilon = 1.0;

/// Default share of the total ε a community-level mechanism spends on the
/// partition phase; the remainder buys the Laplace noise on the community
/// edge-count profile (core/mechanism.hpp, docs/mechanisms.md).
inline constexpr double kDefaultPartitionShare = 0.75;

/// The (ε, δ) grid of the standard scenario product set (core/scenario.hpp).
/// Budget points are privacy policy, so they live here: referencing these
/// from the grid keeps src/core/ free of raw ε/δ literals (lint rule R5).
inline constexpr double kScenarioEpsilons[] = {1.0, 2.0, 4.0};
inline constexpr double kScenarioDelta = 1e-6;

}  // namespace sgp::dp
