// Privacy-budget accounting across multiple mechanism invocations.
//
// Publishing a graph once uses one Gaussian invocation, but the evaluation
// pipelines (and any real deployment re-publishing over time) compose
// multiple releases; the accountant tracks the cumulative (ε, δ).
#pragma once

#include <cstddef>
#include <vector>

#include "dp/privacy.hpp"

namespace sgp::dp {

class PrivacyAccountant {
 public:
  /// Records one (ε, δ)-DP release. ε must be > 0, δ in [0, 1).
  void record(const PrivacyParams& params);

  [[nodiscard]] std::size_t num_releases() const { return events_.size(); }

  /// Sequential ("basic") composition: ε and δ add up.
  [[nodiscard]] PrivacyParams basic_composition() const;

  /// Advanced composition (Dwork–Rothblum–Vadhan): for a slack δ' > 0,
  ///   ε_total = sqrt(2k ln(1/δ')) · ε_max + k · ε_max (e^{ε_max} − 1),
  ///   δ_total = Σδᵢ + δ'.
  /// Tighter than basic when k is large and ε small. Uses the max per-event
  /// ε (events are typically homogeneous here).
  [[nodiscard]] PrivacyParams advanced_composition(double delta_slack) const;

  /// The smaller-ε of basic vs advanced composition at the given slack.
  [[nodiscard]] PrivacyParams best_composition(double delta_slack) const;

  void reset() { events_.clear(); }

 private:
  std::vector<PrivacyParams> events_;
};

}  // namespace sgp::dp
