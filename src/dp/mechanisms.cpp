#include "dp/mechanisms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "random/distributions.hpp"
#include "util/check.hpp"

namespace sgp::dp {
namespace {

/// Standard normal CDF.
double phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// Privacy loss of the Gaussian mechanism with noise σ at sensitivity Δ:
/// the smallest δ for which (ε, δ)-DP holds (Balle & Wang Eq. 6).
double gaussian_delta(double sensitivity, double sigma, double epsilon) {
  const double a = sensitivity / (2.0 * sigma);
  const double b = epsilon * sigma / sensitivity;
  return phi(a - b) - std::exp(epsilon) * phi(-a - b);
}

}  // namespace

double gaussian_sigma(double l2_sensitivity, const PrivacyParams& params) {
  params.validate();
  util::require(l2_sensitivity > 0.0, "gaussian: sensitivity must be > 0");
  return l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / params.delta)) /
         params.epsilon;
}

double analytic_gaussian_sigma(double l2_sensitivity,
                               const PrivacyParams& params) {
  params.validate();
  util::require(l2_sensitivity > 0.0, "gaussian: sensitivity must be > 0");

  // gaussian_delta is strictly decreasing in σ. Bracket then bisect.
  double lo = 1e-12 * l2_sensitivity;
  double hi = gaussian_sigma(l2_sensitivity, params);  // classic bound works
  // The classic bound is only guaranteed for ε < 1; expand hi if needed.
  while (gaussian_delta(l2_sensitivity, hi, params.epsilon) > params.delta) {
    hi *= 2.0;
    util::ensure(hi < 1e12 * l2_sensitivity,
                 "analytic gaussian: bracketing failed");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (gaussian_delta(l2_sensitivity, mid, params.epsilon) > params.delta) {
      lo = mid;
    } else {
      hi = mid;
    }
    if ((hi - lo) <= 1e-12 * hi) break;
  }
  return hi;
}

double laplace_scale(double l1_sensitivity, double epsilon) {
  util::require(epsilon > 0.0, "laplace: epsilon must be > 0");
  util::require(l1_sensitivity > 0.0, "laplace: sensitivity must be > 0");
  return l1_sensitivity / epsilon;
}

void add_gaussian_noise(std::span<double> values, double sigma,
                        random::Rng& rng) {
  util::require(sigma >= 0.0, "gaussian noise: sigma must be >= 0");
  if (sigma == 0.0) return;
  for (double& v : values) v += random::normal(rng, 0.0, sigma);
}

void add_laplace_noise(std::span<double> values, double scale,
                       random::Rng& rng) {
  util::require(scale >= 0.0, "laplace noise: scale must be >= 0");
  if (scale == 0.0) return;
  for (double& v : values) v += random::laplace(rng, 0.0, scale);
}

double laplace_noise_at(const random::CounterRng& rng, std::uint64_t counter,
                        double scale) {
  util::require(scale >= 0.0, "laplace noise: scale must be >= 0");
  if (scale == 0.0) return 0.0;
  // Inverse CDF: u ∈ [0, 1) maps to −scale·sgn(u−½)·ln(1−2|u−½|). Guard the
  // u == 0 endpoint, where 1−2|u−½| is exactly 0 and the log diverges.
  const double u = rng.uniform(counter);
  const double centered = u - 0.5;
  const double tail = std::max(1.0 - 2.0 * std::abs(centered),
                               std::numeric_limits<double>::min());
  const double magnitude = -scale * std::log(tail);
  return centered < 0.0 ? -magnitude : magnitude;
}

double randomized_response_keep_probability(double epsilon) {
  util::require(epsilon > 0.0, "randomized response: epsilon must be > 0");
  const double e = std::exp(epsilon);
  return e / (1.0 + e);
}

bool randomized_response(bool value, double epsilon, random::Rng& rng) {
  const double keep = randomized_response_keep_probability(epsilon);
  return random::bernoulli(rng, keep) ? value : !value;
}

}  // namespace sgp::dp
