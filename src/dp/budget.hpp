// Budget arithmetic for mechanisms that spend one (ε, δ) allowance across
// several phases. All ε/δ splitting lives here, in the DP layer: a mechanism
// implementation that multiplies `params.epsilon` by a share constant inline
// is an sgp-lint R8 violation (docs/static_analysis.md), precisely so every
// composition claim stays auditable in one file.
#pragma once

#include "dp/privacy.hpp"

namespace sgp::dp {

/// A two-phase sequential-composition split of one total budget. Both parts
/// are full (ε, δ) budgets; sequential composition of the two phases
/// consumes exactly the total (ε_p + ε_c = ε, δ_p + δ_c = δ).
struct BudgetSplit {
  PrivacyParams partition;  ///< phase 1 (e.g. community detection)
  PrivacyParams counts;     ///< phase 2 (e.g. noisy edge-count profile)
};

/// Splits `total` between two phases: the partition phase receives
/// `partition_share` of both ε and δ, the counts phase the rest. Requires a
/// valid total budget and partition_share ∈ (0, 1).
[[nodiscard]] BudgetSplit split_budget(const PrivacyParams& total,
                                       double partition_share);

/// A two-way split of a δ allowance alone (ε untouched): used when one phase
/// consumes δ without spending ε — e.g. the JL projection's failure
/// probability vs the Gaussian mechanism's δ in calibrate_noise.
struct DeltaSplit {
  double first = 0.0;   ///< `first_share` of the total δ
  double second = 0.0;  ///< the remainder
};

/// Splits `delta` between two consumers; `first_share` ∈ (0, 1).
[[nodiscard]] DeltaSplit split_delta(double delta, double first_share);

/// Per-edge ε for a randomized-response pass that must satisfy *node-level*
/// ε-DP on a graph whose degrees are capped at `max_degree`: changing one
/// node rewrites at most `max_degree` potential edges, so group privacy
/// prices each edge at ε / max_degree.
[[nodiscard]] double node_level_edge_epsilon(double epsilon,
                                             std::size_t max_degree);

}  // namespace sgp::dp
