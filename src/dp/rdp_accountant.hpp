// Rényi differential privacy accounting (Mironov 2017) — the tighter
// composition machinery a production deployment of the mechanism would use
// when re-publishing an evolving graph many times (an extension beyond the
// paper, which analyzes a single release).
//
// The Gaussian mechanism with noise σ at ℓ2-sensitivity Δ satisfies
// (α, α·Δ²/(2σ²))-RDP for every α > 1; RDP composes by simple addition per
// order, and converts to (ε, δ)-DP via
//   ε(δ) = min_α  ε_α + ln(1/δ)/(α − 1).
#pragma once

#include <cstddef>
#include <vector>

#include "dp/privacy.hpp"

namespace sgp::dp {

class RdpAccountant {
 public:
  /// Uses a default grid of Rényi orders (1.25 … 512, log-spaced-ish).
  RdpAccountant();
  /// Custom order grid; all orders must be > 1.
  explicit RdpAccountant(std::vector<double> orders);

  /// Records one Gaussian-mechanism release with the given noise multiplier
  /// (σ / Δ — the dimensionless ratio). Must be > 0.
  void record_gaussian(double noise_multiplier);

  /// Records one Laplace-mechanism release with noise multiplier λ = b / Δ₁
  /// (scale over ℓ1-sensitivity). Uses the exact Laplace RDP curve
  /// (Mironov 2017, Prop. 6):
  ///   ε_α = (1/(α−1)) · ln( α/(2α−1)·e^{(α−1)/λ}
  ///                         + (α−1)/(2α−1)·e^{−α/λ} ).
  void record_laplace(double noise_multiplier);

  /// Records one pure ε-DP release via the always-valid bound ε_α ≤ ε
  /// (Rényi divergence is dominated by D_∞) — the conservative curve for
  /// mechanisms without a tighter published one (e.g. randomized response).
  void record_pure(double epsilon);

  /// Records a generic mechanism by its RDP curve sampled on this
  /// accountant's order grid (values aligned with orders()).
  void record_rdp(const std::vector<double>& epsilons_per_order);

  /// Converts the accumulated RDP to (ε, δ)-DP at the target δ ∈ (0, 1);
  /// optimizes over the order grid.
  [[nodiscard]] PrivacyParams to_dp(double delta) const;

  [[nodiscard]] const std::vector<double>& orders() const { return orders_; }
  [[nodiscard]] std::size_t num_releases() const { return releases_; }

  void reset();

 private:
  std::vector<double> orders_;
  std::vector<double> rdp_;  ///< accumulated ε_α per order
  std::size_t releases_ = 0;
};

}  // namespace sgp::dp
