#include "dp/accountant.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sgp::dp {

void PrivacyAccountant::record(const PrivacyParams& params) {
  util::require(params.epsilon > 0.0, "accountant: epsilon must be > 0");
  util::require(params.delta >= 0.0 && params.delta < 1.0,
                "accountant: delta must be in [0,1)");
  events_.push_back(params);
}

PrivacyParams PrivacyAccountant::basic_composition() const {
  PrivacyParams total{0.0, 0.0};
  for (const PrivacyParams& e : events_) {
    total.epsilon += e.epsilon;
    total.delta += e.delta;
  }
  return total;
}

PrivacyParams PrivacyAccountant::advanced_composition(
    double delta_slack) const {
  util::require(delta_slack > 0.0 && delta_slack < 1.0,
                "accountant: delta_slack must be in (0,1)");
  const double k = static_cast<double>(events_.size());
  if (events_.empty()) return {0.0, delta_slack};
  double eps_max = 0.0;
  double delta_sum = 0.0;
  for (const PrivacyParams& e : events_) {
    eps_max = std::max(eps_max, e.epsilon);
    delta_sum += e.delta;
  }
  const double eps_total =
      std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) * eps_max +
      k * eps_max * (std::exp(eps_max) - 1.0);
  return {eps_total, delta_sum + delta_slack};
}

PrivacyParams PrivacyAccountant::best_composition(double delta_slack) const {
  const PrivacyParams basic = basic_composition();
  if (events_.empty()) return basic;
  const PrivacyParams advanced = advanced_composition(delta_slack);
  return advanced.epsilon < basic.epsilon ? advanced : basic;
}

}  // namespace sgp::dp
