#include "dp/rdp_accountant.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sgp::dp {
namespace {

std::vector<double> default_orders() {
  std::vector<double> orders{1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0,
                             5.0,  6.0, 8.0,  16.0, 32.0, 64.0, 128.0,
                             256.0, 512.0};
  return orders;
}

}  // namespace

RdpAccountant::RdpAccountant() : RdpAccountant(default_orders()) {}

RdpAccountant::RdpAccountant(std::vector<double> orders)
    : orders_(std::move(orders)), rdp_(orders_.size(), 0.0) {
  util::require(!orders_.empty(), "rdp: order grid must be non-empty");
  for (double a : orders_) {
    util::require(a > 1.0, "rdp: all orders must be > 1");
  }
}

void RdpAccountant::record_gaussian(double noise_multiplier) {
  util::require(noise_multiplier > 0.0,
                "rdp: noise multiplier must be > 0");
  const double inv = 1.0 / (2.0 * noise_multiplier * noise_multiplier);
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += orders_[i] * inv;
  }
  ++releases_;
}

void RdpAccountant::record_laplace(double noise_multiplier) {
  util::require(noise_multiplier > 0.0,
                "rdp: noise multiplier must be > 0");
  const double lambda = noise_multiplier;
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    const double a = orders_[i];
    // Evaluate in log-space anchored at the dominant term e^{(α−1)/λ}, so
    // large α/λ never overflows: ε_α = (1/(α−1))·((α−1)/λ + ln(w₁ + w₂·r))
    // with w₁ = α/(2α−1), w₂ = (α−1)/(2α−1), r = e^{−(2α−1)/λ}.
    const double w1 = a / (2.0 * a - 1.0);
    const double w2 = (a - 1.0) / (2.0 * a - 1.0);
    const double r = std::exp(-(2.0 * a - 1.0) / lambda);
    rdp_[i] += ((a - 1.0) / lambda + std::log(w1 + w2 * r)) / (a - 1.0);
  }
  ++releases_;
}

void RdpAccountant::record_pure(double epsilon) {
  util::require(epsilon > 0.0, "rdp: epsilon must be > 0");
  for (double& eps_alpha : rdp_) eps_alpha += epsilon;
  ++releases_;
}

void RdpAccountant::record_rdp(const std::vector<double>& epsilons_per_order) {
  util::require(epsilons_per_order.size() == orders_.size(),
                "rdp: curve must match the order grid");
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    util::require(epsilons_per_order[i] >= 0.0, "rdp: epsilons must be >= 0");
    rdp_[i] += epsilons_per_order[i];
  }
  ++releases_;
}

PrivacyParams RdpAccountant::to_dp(double delta) const {
  util::require(delta > 0.0 && delta < 1.0, "rdp: delta must be in (0,1)");
  double best = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    const double eps =
        rdp_[i] + std::log(1.0 / delta) / (orders_[i] - 1.0);
    best = std::min(best, eps);
  }
  if (releases_ == 0) best = 0.0;
  return {best, delta};
}

void RdpAccountant::reset() {
  std::fill(rdp_.begin(), rdp_.end(), 0.0);
  releases_ = 0;
}

}  // namespace sgp::dp
