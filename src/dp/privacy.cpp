#include "dp/privacy.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace sgp::dp {

void PrivacyParams::validate() const {
  util::require(epsilon > 0.0, "privacy: epsilon must be > 0");
  util::require(delta > 0.0 && delta < 1.0, "privacy: delta must be in (0,1)");
}

void PrivacyParams::validate_pure() const {
  util::require(epsilon > 0.0, "privacy: epsilon must be > 0");
  util::require(delta == 0.0, "privacy: pure DP requires delta == 0");
}

std::string PrivacyParams::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(eps=%g, delta=%g)", epsilon, delta);
  return buf;
}

}  // namespace sgp::dp
