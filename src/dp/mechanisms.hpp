// Differential-privacy noise mechanisms.
//
// The paper's mechanism perturbs the projected matrix with Gaussian noise;
// the σ calibration lives here. The Laplace mechanism and randomized
// response are provided for the baseline publishers the paper compares
// against.
#pragma once

#include <cstdint>
#include <span>

#include "dp/privacy.hpp"
#include "random/counter_rng.hpp"
#include "random/rng.hpp"

namespace sgp::dp {

/// Classic Gaussian-mechanism calibration (Dwork & Roth Thm A.1):
///   σ = Δ₂ · sqrt(2 ln(1.25/δ)) / ε.
/// Certified only for ε ∈ (0, 1): beyond that it can *under*-noise (the
/// returned σ may violate (ε, δ)-DP). Prefer analytic_gaussian_sigma, which
/// is exact for every ε; this one exists as the textbook baseline and for
/// the E2 calibration-comparison bench.
double gaussian_sigma(double l2_sensitivity, const PrivacyParams& params);

/// Analytic Gaussian mechanism (Balle & Wang, ICML 2018): the *smallest* σ
/// such that adding N(0, σ²) noise to a Δ₂-sensitive query is (ε, δ)-DP,
/// found by bisecting the exact condition
///   Φ(Δ/2σ − εσ/Δ) − e^ε · Φ(−Δ/2σ − εσ/Δ) ≤ δ.
/// Tight for every ε > 0 (including ε > 1, where the classic bound is loose).
double analytic_gaussian_sigma(double l2_sensitivity,
                               const PrivacyParams& params);

/// Laplace-mechanism scale b = Δ₁ / ε for pure ε-DP.
double laplace_scale(double l1_sensitivity, double epsilon);

/// Adds i.i.d. N(0, σ²) noise to every element.
void add_gaussian_noise(std::span<double> values, double sigma,
                        random::Rng& rng);

/// Adds i.i.d. Laplace(0, scale) noise to every element.
void add_laplace_noise(std::span<double> values, double scale,
                       random::Rng& rng);

/// One Laplace(0, scale) draw from a counter-based generator: a pure
/// function of (rng key, counter) via inverse-CDF on the uniform word, so
/// community mechanisms can noise count vectors order- and
/// thread-independently (same contract as the publisher's noise stream).
double laplace_noise_at(const random::CounterRng& rng, std::uint64_t counter,
                        double scale);

/// Randomized response on one bit: report truthfully with probability
/// e^ε / (1 + e^ε), flipped otherwise. ε-DP for the bit.
bool randomized_response(bool value, double epsilon, random::Rng& rng);

/// Probability that randomized_response reports the true value.
double randomized_response_keep_probability(double epsilon);

}  // namespace sgp::dp
