// Differential-privacy parameter types shared by all mechanisms.
#pragma once

#include <string>

namespace sgp::dp {

/// An (ε, δ) differential-privacy budget.
///
/// Semantics here are *edge-level*: neighboring graphs differ in one edge of
/// the adjacency matrix (the paper's threat model — hiding the presence or
/// absence of a single friendship).
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 1e-6;

  /// Validates ε > 0 and δ ∈ (0, 1). Throws std::invalid_argument otherwise.
  /// Pure ε-DP mechanisms (Laplace) pass delta = 0 through
  /// `validate_pure()` instead.
  void validate() const;

  /// Validates ε > 0 and δ == 0 (pure DP).
  void validate_pure() const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace sgp::dp
