#include "dp/postprocess.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sgp::dp {

std::vector<double> isotonic_non_decreasing(const std::vector<double>& values) {
  // Pool Adjacent Violators with block merging: maintain a stack of blocks
  // (mean, weight); merge while the means decrease.
  struct Block {
    double sum;
    double weight;
    [[nodiscard]] double mean() const { return sum / weight; }
  };
  std::vector<Block> blocks;
  blocks.reserve(values.size());
  for (double v : values) {
    Block current{v, 1.0};
    while (!blocks.empty() && blocks.back().mean() >= current.mean()) {
      current.sum += blocks.back().sum;
      current.weight += blocks.back().weight;
      blocks.pop_back();
    }
    blocks.push_back(current);
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& b : blocks) {
    for (double i = 0; i < b.weight; i += 1.0) out.push_back(b.mean());
  }
  return out;
}

std::vector<double> isotonic_non_increasing(const std::vector<double>& values) {
  std::vector<double> reversed(values.rbegin(), values.rend());
  std::vector<double> fitted = isotonic_non_decreasing(reversed);
  return {fitted.rbegin(), fitted.rend()};
}

std::vector<double> clamp_range(std::vector<double> values, double lo,
                                double hi) {
  util::require(lo <= hi, "clamp_range: lo must be <= hi");
  for (double& v : values) v = std::clamp(v, lo, hi);
  return values;
}

std::vector<std::size_t> to_degree_sequence(const std::vector<double>& values,
                                            std::size_t max_degree) {
  std::vector<std::size_t> degrees(values.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double clamped =
        std::clamp(values[i], 0.0, static_cast<double>(max_degree));
    degrees[i] = static_cast<std::size_t>(std::llround(clamped));
    total += degrees[i];
  }
  if (total % 2 == 1 && !degrees.empty()) {
    // Fix parity with the smallest valid adjustment on the last element.
    auto& last = degrees.back();
    if (last > 0) {
      --last;
    } else {
      ++last;
    }
  }
  return degrees;
}

}  // namespace sgp::dp
