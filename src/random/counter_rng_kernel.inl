// Branch-free batch kernel for the counter RNG — the single source of truth
// for the polynomial normal mapping and the exact bits/uniform batches.
//
// This file is textually included by each ISA translation unit
// (counter_rng_generic.cpp / _avx2.cpp / _avx512.cpp) INSIDE an anonymous
// namespace. Internal linkage is load-bearing: the TUs are compiled with
// different -m flags, and if these functions had external (comdat) linkage
// the linker would keep one arbitrary copy — every "variant" would silently
// run the same code. (Found the hard way; see DESIGN.md "kernel dispatch".)
//
// Bit-identity across ISAs is by construction: every floating-point
// operation below is a correctly-rounded IEEE-754 double op (+, -, *, /,
// sqrt, floor, fma), so the result of a lane cannot depend on vector width.
// The TUs are compiled with -ffp-contract=off so the compiler cannot
// introduce fmas we did not write, and -fno-math-errno -fno-trapping-math
// so sqrt/floor vectorize (neither changes any computed bit). There is no
// control flow in the per-value path — branches block GCC's if-conversion
// and would add data-dependent misprediction cost — and no integer<->double
// hardware conversions, which AVX2 lacks for 64-bit lanes; both directions
// go through exponent-bias bit tricks instead.
//
// The includer must provide <bit>, <cmath>, <cstddef>, <cstdint> and
// "random/counter_mix.hpp" before the anonymous namespace opens.

#define SGP_KERNEL_INLINE inline __attribute__((always_inline))

// Exact u64 -> double for v < 2^52: stuff v into the mantissa of 2^52 and
// subtract the bias. Pure integer/double vector ops on every ISA.
SGP_KERNEL_INLINE double u52_to_double(std::uint64_t v) {
  return std::bit_cast<double>(v | 0x4330000000000000ULL) - 0x1.0p52;
}

// Exact u64 -> double for v < 2^53, via 32-bit split: hi*2^32 and the sum
// are both exactly representable, so the result equals (double)v. This is
// what keeps the 53-bit uniform transform bit-identical to the scalar
// static_cast<double> path.
SGP_KERNEL_INLINE double u53_to_double(std::uint64_t v) {
  return u52_to_double(v >> 32) * 0x1.0p32 + u52_to_double(v & 0xffffffffULL);
}

// Exact s64 -> double for |v| < 2^51 (two's-complement variant of the same
// bias trick).
SGP_KERNEL_INLINE double s51_to_double(std::int64_t v) {
  return std::bit_cast<double>(static_cast<std::uint64_t>(v) +
                               0x4338000000000000ULL) -
         0x1.8p52;
}

// log(x) for finite normal x in (0, 1]; fdlibm/musl scheme, branch-free.
// Max observed error vs libm over the full u1 domain: 1 ulp.
SGP_KERNEL_INLINE double poly_log(double x) {
  const std::uint64_t ix = std::bit_cast<std::uint64_t>(x);
  // Integer renormalization: pick e, m with x = m * 2^e and m in
  // [sqrt(1/2), sqrt(2)), without comparing doubles.
  const std::uint64_t tmp = ix - 0x3fe6a09e00000000ULL;
  const std::int64_t k = static_cast<std::int64_t>(tmp) >> 52;
  const std::uint64_t iz = ix - (tmp & 0xfff0000000000000ULL);
  const double m = std::bit_cast<double>(iz);
  const double e = s51_to_double(k);
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  double p = 1.479819860511658591e-01;
  p = std::fma(p, z, 1.531383769920937332e-01);
  p = std::fma(p, z, 1.818357216161805012e-01);
  p = std::fma(p, z, 2.222219843214978396e-01);
  p = std::fma(p, z, 2.857142874366239149e-01);
  p = std::fma(p, z, 3.999999999940941908e-01);
  p = std::fma(p, z, 6.666666666666735130e-01);
  const double r = z * p;
  const double hfsq = 0.5 * f * f;
  const double ln2_hi = 6.93147180369123816490e-01;
  const double ln2_lo = 1.90821492927058770002e-10;
  return std::fma(e, ln2_hi, f - (hfsq - std::fma(s, hfsq + r, e * ln2_lo)));
}

// cos(x) for x in [0, 2*pi); Cody–Waite quadrant reduction with the
// selection done in double arithmetic (comparisons and integer quadrant
// logic would defeat if-conversion). Max observed error: 1 ulp.
SGP_KERNEL_INLINE double poly_cos(double x) {
  const double q = std::floor(std::fma(x, 0.63661977236758134308, 0.5));
  double r = std::fma(-q, 1.57079632673412561417e+00, x);
  r = std::fma(-q, 6.07710050650619224932e-11, r);
  r = std::fma(-q, 2.02226624879595063154e-21, r);
  const double z = r * r;
  double c = -1.13596475577881948265e-11;
  c = std::fma(c, z, 2.08757008419747316778e-09);
  c = std::fma(c, z, -2.75573141792967388112e-07);
  c = std::fma(c, z, 2.48015872888517179954e-05);
  c = std::fma(c, z, -1.38888888888730564116e-03);
  c = std::fma(c, z, 4.16666666666665929218e-02);
  const double cos_r = std::fma(z * z, c, std::fma(z, -0.5, 1.0));
  double s = 1.58962301576546568060e-10;
  s = std::fma(s, z, -2.50507477628578072866e-08);
  s = std::fma(s, z, 2.75573136213857245213e-06);
  s = std::fma(s, z, -1.98412698295895385996e-04);
  s = std::fma(s, z, 8.33333333332211858878e-03);
  s = std::fma(s, z, -1.66666666666666307295e-01);
  const double sin_r = std::fma(r * z, s, r);
  // Quadrant qm = q mod 4 maps to {cos, -sin, -cos, sin}. Arithmetic
  // selection: odd quadrants take sin, quadrants 1 and 2 negate
  // (1 - qm*(3-qm) is +1, -1, -1, +1 for qm = 0..3).
  const double qm = q - 4.0 * std::floor(q * 0.25);
  const double odd = qm - 2.0 * std::floor(qm * 0.5);
  const double mag = cos_r + odd * (sin_r - cos_r);
  const double sign = 1.0 - qm * (3.0 - qm);
  return sign * mag;
}

// One polynomial-mapping normal. Word layout and uniform transform are
// identical to CounterRng::normal; only log/cos differ from libm (by ~1 ulp
// each), which is why the scalar and polynomial mappings agree elementwise
// to ~1e-13 but are distinct published mappings.
SGP_KERNEL_INLINE double poly_normal_one(std::uint64_t key0,
                                         std::uint64_t key1,
                                         std::uint64_t c) {
  constexpr double kTwoPi = 6.283185307179586476925287;
  const std::uint64_t w0 =
      sgp::random::detail::counter_word(key0, key1, 2 * c);
  const std::uint64_t w1 =
      sgp::random::detail::counter_word(key0, key1, 2 * c + 1);
  // u1 in (0, 1] so log(u1) is finite; u2 in [0, 1).
  const double u1 = (u53_to_double(w0 >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = u53_to_double(w1 >> 11) * 0x1.0p-53;
  const double rad = std::sqrt(-2.0 * poly_log(u1));
  return rad * poly_cos(kTwoPi * u2);
}

// The three batch loops. Single flat loops: lane count is a property of the
// ISA the TU was compiled for, not of the mapping, so GCC is free to pick
// its preferred vector factor and peel the remainder.

void bits_batch_kernel(std::uint64_t key0, std::uint64_t key1,
                       std::uint64_t counter_begin, std::size_t count,
                       std::uint64_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = sgp::random::detail::counter_word(key0, key1, counter_begin + i);
  }
}

void uniform_batch_kernel(std::uint64_t key0, std::uint64_t key1,
                          std::uint64_t counter_begin, std::size_t count,
                          double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t w =
        sgp::random::detail::counter_word(key0, key1, counter_begin + i);
    out[i] = u53_to_double(w >> 11) * 0x1.0p-53;
  }
}

void normal_batch_kernel(std::uint64_t key0, std::uint64_t key1,
                         std::uint64_t counter_begin, std::size_t count,
                         double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = poly_normal_one(key0, key1, counter_begin + i);
  }
}

#undef SGP_KERNEL_INLINE
