// Deterministic pseudo-random number generation.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through splitmix64
// instead of using <random> engines-with-distributions, because the standard
// distributions are implementation-defined: two platforms given the same seed
// may produce different streams. Every randomized component in sgp (random
// projection matrices, DP noise, graph generators) must be reproducible from
// an explicit 64-bit seed for experiments to be re-runnable.
#pragma once

#include <array>
#include <cstdint>

namespace sgp::random {

/// splitmix64 step; used for seeding and cheap stateless mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
/// Period 2^256 - 1; jump() advances 2^128 steps for independent parallel
/// substreams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  result_type operator()();

  /// Equivalent to 2^128 calls of operator(); yields a statistically
  /// independent substream. Used to hand per-thread generators out from a
  /// single seed.
  void jump();

  /// Convenience: a copy of *this advanced by `n` jumps. The original is
  /// unchanged.
  [[nodiscard]] Rng split(std::uint64_t n) const;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Unbiased uniform integer in [0, bound) via rejection sampling.
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sgp::random
