// Baseline-ISA instantiation of the batch kernel. Compiled with the default
// target flags (plus the FP-semantics flags shared by all kernel TUs — see
// src/CMakeLists.txt), so it runs on any x86-64 machine and is the portable
// reference that lets a "counter-v1-simd" release be regenerated anywhere:
// without hardware FMA, std::fma resolves to libm's correctly-rounded
// software implementation, which keeps it bit-identical to the AVX TUs at a
// substantial speed cost. The dispatch layer therefore never auto-selects
// kGeneric — it exists for reproducibility, not throughput.
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "random/counter_mix.hpp"
#include "random/counter_rng_simd.hpp"

namespace {
#include "random/counter_rng_kernel.inl"
}  // namespace

namespace sgp::random::detail {

void bits_batch_generic(std::uint64_t key0, std::uint64_t key1,
                        std::uint64_t counter_begin, std::size_t count,
                        std::uint64_t* out) {
  bits_batch_kernel(key0, key1, counter_begin, count, out);
}

void uniform_batch_generic(std::uint64_t key0, std::uint64_t key1,
                           std::uint64_t counter_begin, std::size_t count,
                           double* out) {
  uniform_batch_kernel(key0, key1, counter_begin, count, out);
}

void normal_batch_generic(std::uint64_t key0, std::uint64_t key1,
                          std::uint64_t counter_begin, std::size_t count,
                          double* out) {
  normal_batch_kernel(key0, key1, counter_begin, count, out);
}

}  // namespace sgp::random::detail
