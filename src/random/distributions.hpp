// Portable distributions over the sgp::random::Rng engine.
//
// These are deliberately hand-rolled (rather than <random> distributions) so
// that the same seed yields the same stream on every platform — a hard
// requirement for reproducible DP experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "random/rng.hpp"

namespace sgp::random {

/// Standard normal via Marsaglia's polar method, scaled to N(mean, stddev^2).
/// stddev must be >= 0.
double normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Laplace(mean, scale) via inverse CDF. scale must be > 0.
double laplace(Rng& rng, double mean, double scale);

/// Exponential(rate) via inverse CDF. rate must be > 0.
double exponential(Rng& rng, double rate);

/// Bernoulli trial with success probability p in [0, 1].
bool bernoulli(Rng& rng, double p);

/// Uniform double in [lo, hi).
double uniform(Rng& rng, double lo, double hi);

/// Geometric: number of failures before the first success, p in (0, 1].
std::uint64_t geometric(Rng& rng, double p);

/// O(1)-per-sample discrete distribution over {0..n-1} with given
/// (unnormalized, non-negative) weights, built with Vose's alias method.
class AliasTable {
 public:
  /// weights must be non-empty, all >= 0, with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(Rng& rng, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Uniform sample of k distinct indices from {0..n-1} (Floyd's algorithm);
/// result is in ascending order. Requires k <= n.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k);

}  // namespace sgp::random
