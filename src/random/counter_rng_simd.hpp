// Batched counter-RNG sampling with runtime kernel dispatch.
//
// These are the batch counterparts of CounterRng::bits / uniform / normal:
// they fill out[0..count) with the values for counters counter_begin,
// counter_begin+1, ..., dispatching to the kernel variant selected by
// `variant` (see random/kernel_variant.hpp for the resolution policy).
//
// Contracts, asserted by tests/random/counter_rng_simd_test.cpp and the
// kernel differential suite:
//   - bits_batch / uniform_batch are bit-identical to the scalar methods
//     under EVERY variant (integer ops and exact power-of-two scaling only).
//   - normal_batch under kScalar is byte-identical to CounterRng::normal.
//   - normal_batch under kGeneric / kAvx2 / kAvx512 computes the polynomial
//     mapping: bit-identical across those three variants, elementwise within
//     ~1e-13 of scalar, and drawn from N(0,1) to the precision of the dp
//     statistical suite (KS / chi-square / moments).
//
// Counter-domain contract (shared with CounterRng::normal): normal batches
// consume words (2c, 2c+1), so every counter they touch must be < 2^63.
// Batches validate `counter_begin + count - 1 < 2^63` up front and throw
// PreconditionError instead of silently wrapping the word index.
#pragma once

#include <cstddef>
#include <cstdint>

#include "random/counter_rng.hpp"
#include "random/kernel_variant.hpp"

namespace sgp::random {

/// out[i] = rng.bits(counter_begin + i) for i in [0, count).
/// Bit-identical under every variant; kAuto picks the fastest supported.
void bits_batch(const CounterRng& rng, std::uint64_t counter_begin,
                std::size_t count, std::uint64_t* out,
                KernelVariant variant = KernelVariant::kAuto);

/// out[i] = rng.uniform(counter_begin + i) for i in [0, count).
/// Bit-identical under every variant; kAuto picks the fastest supported.
void uniform_batch(const CounterRng& rng, std::uint64_t counter_begin,
                   std::size_t count, double* out,
                   KernelVariant variant = KernelVariant::kAuto);

/// out[i] = normal for counter_begin + i, i in [0, count). kScalar (and the
/// kAuto default, absent SGP_FORCE_KERNEL) reproduces CounterRng::normal
/// byte-for-byte; vector variants compute the polynomial mapping. Requires
/// counter_begin + count - 1 < 2^63 (word doubling).
void normal_batch(const CounterRng& rng, std::uint64_t counter_begin,
                  std::size_t count, double* out,
                  KernelVariant variant = KernelVariant::kAuto);

namespace detail {

/// True when the corresponding TU was actually compiled with its ISA flags
/// (the build degrades gracefully on toolchains missing -mavx2/-mavx512*).
[[nodiscard]] bool kernel_avx2_compiled() noexcept;
[[nodiscard]] bool kernel_avx512_compiled() noexcept;

// Per-ISA entry points, defined in counter_rng_{generic,avx2,avx512}.cpp.
// Identical signatures; the only difference is the -m flags their TU was
// built with. Callers go through the dispatch wrappers above.
void bits_batch_generic(std::uint64_t key0, std::uint64_t key1,
                        std::uint64_t counter_begin, std::size_t count,
                        std::uint64_t* out);
void bits_batch_avx2(std::uint64_t key0, std::uint64_t key1,
                     std::uint64_t counter_begin, std::size_t count,
                     std::uint64_t* out);
void bits_batch_avx512(std::uint64_t key0, std::uint64_t key1,
                       std::uint64_t counter_begin, std::size_t count,
                       std::uint64_t* out);
void uniform_batch_generic(std::uint64_t key0, std::uint64_t key1,
                           std::uint64_t counter_begin, std::size_t count,
                           double* out);
void uniform_batch_avx2(std::uint64_t key0, std::uint64_t key1,
                        std::uint64_t counter_begin, std::size_t count,
                        double* out);
void uniform_batch_avx512(std::uint64_t key0, std::uint64_t key1,
                          std::uint64_t counter_begin, std::size_t count,
                          double* out);
void normal_batch_generic(std::uint64_t key0, std::uint64_t key1,
                          std::uint64_t counter_begin, std::size_t count,
                          double* out);
void normal_batch_avx2(std::uint64_t key0, std::uint64_t key1,
                       std::uint64_t counter_begin, std::size_t count,
                       double* out);
void normal_batch_avx512(std::uint64_t key0, std::uint64_t key1,
                         std::uint64_t counter_begin, std::size_t count,
                         double* out);

}  // namespace detail

}  // namespace sgp::random
