// The keyed two-round mixing core shared by the scalar CounterRng and the
// batch kernels (counter_rng_kernel.inl). Kept in one place so the scalar
// and vector paths cannot drift: both produce word w for counter c as
//
//   w = counter_mix(counter_mix(c + key0) ^ key1)
#pragma once

#include <cstdint>

namespace sgp::random::detail {

/// splitmix64 finalizer (Stafford mix of the counter), without the state
/// increment — the caller supplies the word to scramble.
[[nodiscard]] constexpr std::uint64_t counter_mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One keyed word: the pure function of (key pair, counter) that every
/// counter-RNG sampling method is built from.
[[nodiscard]] constexpr std::uint64_t counter_word(std::uint64_t key0,
                                                   std::uint64_t key1,
                                                   std::uint64_t counter) noexcept {
  return counter_mix(counter_mix(counter + key0) ^ key1);
}

}  // namespace sgp::random::detail
