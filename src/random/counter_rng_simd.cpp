#include "random/counter_rng_simd.hpp"

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace sgp::random {
namespace {

/// Normal batches consume words (2c, 2c+1): the whole counter range must
/// stay below 2^63 or the word index wraps (same contract as the scalar
/// CounterRng::normal guard).
void require_normal_range(std::uint64_t counter_begin, std::size_t count) {
  if (count == 0) return;
  constexpr std::uint64_t kLimit = std::uint64_t{1} << 63;
  SGP_REQUIRE(count <= kLimit && counter_begin <= kLimit - count,
              "normal_batch: counter range reaches 2^63, the word-doubling "
              "limit (see CounterRng::normal)");
}

}  // namespace

void bits_batch(const CounterRng& rng, std::uint64_t counter_begin,
                std::size_t count, std::uint64_t* out, KernelVariant variant) {
  if (count == 0) return;
  SGP_REQUIRE(out != nullptr, "bits_batch: out must not be null");
  switch (resolve_exact_kernel(variant)) {
    case KernelVariant::kScalar:
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = rng.bits(counter_begin + i);
      }
      return;
    case KernelVariant::kGeneric:
      detail::bits_batch_generic(rng.key0(), rng.key1(), counter_begin, count,
                                 out);
      return;
    case KernelVariant::kAvx2:
      detail::bits_batch_avx2(rng.key0(), rng.key1(), counter_begin, count,
                              out);
      return;
    case KernelVariant::kAvx512:
      detail::bits_batch_avx512(rng.key0(), rng.key1(), counter_begin, count,
                                out);
      return;
    case KernelVariant::kAuto:
      break;  // resolve_exact_kernel never returns kAuto
  }
  throw util::InternalError("bits_batch: unresolved kernel variant");
}

void uniform_batch(const CounterRng& rng, std::uint64_t counter_begin,
                   std::size_t count, double* out, KernelVariant variant) {
  if (count == 0) return;
  SGP_REQUIRE(out != nullptr, "uniform_batch: out must not be null");
  switch (resolve_exact_kernel(variant)) {
    case KernelVariant::kScalar:
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = rng.uniform(counter_begin + i);
      }
      return;
    case KernelVariant::kGeneric:
      detail::uniform_batch_generic(rng.key0(), rng.key1(), counter_begin,
                                    count, out);
      return;
    case KernelVariant::kAvx2:
      detail::uniform_batch_avx2(rng.key0(), rng.key1(), counter_begin, count,
                                 out);
      return;
    case KernelVariant::kAvx512:
      detail::uniform_batch_avx512(rng.key0(), rng.key1(), counter_begin,
                                   count, out);
      return;
    case KernelVariant::kAuto:
      break;
  }
  throw util::InternalError("uniform_batch: unresolved kernel variant");
}

void normal_batch(const CounterRng& rng, std::uint64_t counter_begin,
                  std::size_t count, double* out, KernelVariant variant) {
  if (count == 0) return;
  SGP_REQUIRE(out != nullptr, "normal_batch: out must not be null");
  require_normal_range(counter_begin, count);
  switch (resolve_normal_kernel(variant)) {
    case KernelVariant::kScalar:
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = rng.normal(counter_begin + i);
      }
      return;
    case KernelVariant::kGeneric:
      detail::normal_batch_generic(rng.key0(), rng.key1(), counter_begin,
                                   count, out);
      return;
    case KernelVariant::kAvx2:
      detail::normal_batch_avx2(rng.key0(), rng.key1(), counter_begin, count,
                                out);
      return;
    case KernelVariant::kAvx512:
      detail::normal_batch_avx512(rng.key0(), rng.key1(), counter_begin,
                                  count, out);
      return;
    case KernelVariant::kAuto:
      break;
  }
  throw util::InternalError("normal_batch: unresolved kernel variant");
}

}  // namespace sgp::random
