#include "random/kernel_variant.hpp"

#include <cstdlib>
#include <string>

#include "random/counter_rng_simd.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace sgp::random {
namespace {

/// Runtime CPU feature probe, evaluated once per process. GCC/Clang fold
/// __builtin_cpu_supports into a cached cpuid lookup; the static keeps the
/// policy obvious and the call sites branch-free.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512 = false;
  CpuFeatures() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    avx2 = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    // The AVX-512 TU is compiled with F+DQ+VL; the vectorizer is free to use
    // any of the three, so all must be present at runtime.
    avx512 = __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#endif
  }
};

const CpuFeatures& cpu() {
  static const CpuFeatures features;
  return features;
}

KernelVariant best_supported() {
  if (kernel_supported(KernelVariant::kAvx512)) return KernelVariant::kAvx512;
  if (kernel_supported(KernelVariant::kAvx2)) return KernelVariant::kAvx2;
  // Without vector hardware the scalar path beats the generic polynomial
  // kernel (software fma), so exact-op auto-dispatch lands on scalar.
  return KernelVariant::kScalar;
}

KernelVariant require_supported(KernelVariant variant) {
  SGP_REQUIRE(kernel_supported(variant),
              "kernel variant '" + std::string(to_string(variant)) +
                  "' is not available on this machine (missing ISA support "
                  "at build or run time)");
  return variant;
}

}  // namespace

std::string_view to_string(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kAuto:
      return "auto";
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kGeneric:
      return "generic";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kAvx512:
      return "avx512";
  }
  throw util::InternalError("to_string: invalid KernelVariant");
}

KernelVariant parse_kernel_variant(std::string_view name) {
  if (name == "auto") return KernelVariant::kAuto;
  if (name == "scalar") return KernelVariant::kScalar;
  if (name == "generic") return KernelVariant::kGeneric;
  if (name == "avx2") return KernelVariant::kAvx2;
  if (name == "avx512") return KernelVariant::kAvx512;
  throw util::ParseError("unknown kernel variant '" + std::string(name) +
                         "' (expected auto|scalar|generic|avx2|avx512)");
}

bool kernel_supported(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kAuto:
    case KernelVariant::kScalar:
    case KernelVariant::kGeneric:
      return true;
    case KernelVariant::kAvx2:
      return detail::kernel_avx2_compiled() && cpu().avx2;
    case KernelVariant::kAvx512:
      return detail::kernel_avx512_compiled() && cpu().avx512;
  }
  throw util::InternalError("kernel_supported: invalid KernelVariant");
}

KernelVariant forced_kernel_from_env() {
  const char* value = std::getenv("SGP_FORCE_KERNEL");
  if (value == nullptr || *value == '\0') return KernelVariant::kAuto;
  const KernelVariant variant = parse_kernel_variant(value);
  if (variant == KernelVariant::kAuto) return KernelVariant::kAuto;
  return require_supported(variant);
}

KernelVariant resolve_normal_kernel(KernelVariant requested) {
  if (requested != KernelVariant::kAuto) return require_supported(requested);
  const KernelVariant forced = forced_kernel_from_env();
  if (forced != KernelVariant::kAuto) return forced;
  // Byte-stable default: golden releases and cross-run reproducibility pin
  // gaussian normals to the scalar libm mapping unless explicitly overridden.
  return KernelVariant::kScalar;
}

KernelVariant resolve_exact_kernel(KernelVariant requested) {
  if (requested != KernelVariant::kAuto) return require_supported(requested);
  const KernelVariant forced = forced_kernel_from_env();
  if (forced != KernelVariant::kAuto) return forced;
  return best_supported();
}

KernelVariant best_polynomial_kernel() {
  if (kernel_supported(KernelVariant::kAvx512)) return KernelVariant::kAvx512;
  if (kernel_supported(KernelVariant::kAvx2)) return KernelVariant::kAvx2;
  return KernelVariant::kGeneric;
}

bool uses_polynomial_normals(KernelVariant variant) {
  SGP_REQUIRE(variant != KernelVariant::kAuto,
              "uses_polynomial_normals: resolve kAuto first");
  return variant != KernelVariant::kScalar;
}

}  // namespace sgp::random
