#include "random/counter_rng.hpp"

#include <cmath>

#include "random/counter_mix.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::random {
namespace {

constexpr double kTwoPi = 6.283185307179586476925287;

using detail::counter_mix;

}  // namespace

CounterRng::CounterRng(std::uint64_t seed, std::uint64_t stream) {
  // Warm a splitmix64 chain on the seed, then fold the stream id through a
  // second chain so (seed, stream) pairs land on unrelated key pairs even
  // for adjacent seeds and streams.
  std::uint64_t s = seed;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  std::uint64_t t = stream ^ b;
  key0_ = a ^ splitmix64(t);
  key1_ = splitmix64(t);
}

std::uint64_t CounterRng::bits(std::uint64_t counter) const noexcept {
  // Two keyed rounds: counter + key0 → mix → ^ key1 → mix. The additive
  // pre-whitening plus two full-avalanche rounds decorrelates consecutive
  // counters and consecutive keys (streams).
  return counter_mix(counter_mix(counter + key0_) ^ key1_);
}

double CounterRng::uniform(std::uint64_t counter) const noexcept {
  return static_cast<double>(bits(counter) >> 11) * 0x1.0p-53;
}

double CounterRng::normal(std::uint64_t counter) const {
  SGP_REQUIRE(counter < (std::uint64_t{1} << 63),
              "CounterRng::normal: counter >= 2^63 would wrap the doubled "
              "word index (see the n*m < 2^63 contract in counter_rng.hpp)");
  const std::uint64_t w0 = bits(2 * counter);
  const std::uint64_t w1 = bits(2 * counter + 1);
  // u1 in (0, 1] so log(u1) is finite; u2 in [0, 1).
  const double u1 = (static_cast<double>(w0 >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = static_cast<double>(w1 >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace sgp::random
