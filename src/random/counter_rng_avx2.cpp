// AVX2+FMA instantiation of the batch kernel. The TU is compiled with
// -mavx2 -mfma when the toolchain supports them (src/CMakeLists.txt defines
// SGP_KERNEL_HAVE_AVX2 in that case); GCC auto-vectorizes the flat batch
// loops four doubles wide. Falls back to baseline codegen — still correct,
// still bit-identical — when the flags are unavailable, and the dispatch
// layer then reports the variant unsupported.
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "random/counter_mix.hpp"
#include "random/counter_rng_simd.hpp"

namespace {
#include "random/counter_rng_kernel.inl"
}  // namespace

namespace sgp::random::detail {

bool kernel_avx2_compiled() noexcept {
#if defined(SGP_KERNEL_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

void bits_batch_avx2(std::uint64_t key0, std::uint64_t key1,
                     std::uint64_t counter_begin, std::size_t count,
                     std::uint64_t* out) {
  bits_batch_kernel(key0, key1, counter_begin, count, out);
}

void uniform_batch_avx2(std::uint64_t key0, std::uint64_t key1,
                        std::uint64_t counter_begin, std::size_t count,
                        double* out) {
  uniform_batch_kernel(key0, key1, counter_begin, count, out);
}

void normal_batch_avx2(std::uint64_t key0, std::uint64_t key1,
                       std::uint64_t counter_begin, std::size_t count,
                       double* out) {
  normal_batch_kernel(key0, key1, counter_begin, count, out);
}

}  // namespace sgp::random::detail
