// Counter-based (stateless, keyed) pseudo-random generation.
//
// A CounterRng is a pure function f(key, counter) -> 64 bits: there is no
// mutable stream state, so any slice of the sequence can be generated on
// demand, in any order, from any thread, bit-identically. This is what lets
// the fused publish kernel (core/publisher.cpp) produce tiles of the
// projection matrix P and of the noise matrix N without materializing either,
// independent of traversal order, tiling, or thread count:
//
//   P[i][j] = g(key_P,     i*m + j)
//   N[i][j] = g(key_noise, i*m + j)
//
// The generator is splitmix64-style: two rounds of the splitmix64 finalizer
// with an independent key word injected between the rounds (Philox-like
// key schedule, much cheaper arithmetic). One round of that finalizer is
// already a full-avalanche mixer; two rounds with distinct keys make
// related-counter and related-key sequences statistically independent for
// our purposes (JL projections, DP noise). Like the sequential Rng, it is
// hand-rolled so identical seeds reproduce identically across platforms.
#pragma once

#include <cstdint>

namespace sgp::random {

/// Keyed counter generator. Copyable value type; all sampling methods are
/// const and thread-safe (they touch no mutable state).
class CounterRng {
 public:
  /// Derives the two key words from (seed, stream) via splitmix64. Distinct
  /// stream ids yield independent generators from the same seed — the
  /// publisher uses one stream for P and another for the noise.
  CounterRng(std::uint64_t seed, std::uint64_t stream);

  /// 64 random bits for `counter`. Pure function of (key, counter).
  [[nodiscard]] std::uint64_t bits(std::uint64_t counter) const noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform(std::uint64_t counter) const noexcept;

  /// Standard normal N(0, 1) via Box–Muller on words (2·counter, 2·counter+1).
  /// Exactly two words per call — unlike rejection methods, the consumption
  /// is fixed, which is what keeps the mapping counter → value stable.
  /// Callers index by entry (e.g. i*m + j); the word doubling is internal.
  ///
  /// Contract: counter < 2^63, or the doubled word index wraps and the
  /// value silently collides with counter - 2^63. Matrix callers index
  /// entries as i*m + j, so this bounds publishable shapes to n*m < 2^63 —
  /// far above anything reachable (at 8 bytes/entry that release would be
  /// 64 EiB), but checked so a wrapped index can never masquerade as data.
  /// Throws util::PreconditionError on violation.
  [[nodiscard]] double normal(std::uint64_t counter) const;

  /// Key words, exposed for the batch kernels (random/counter_rng_simd.hpp)
  /// which re-derive the identical per-counter words out of line.
  [[nodiscard]] std::uint64_t key0() const noexcept { return key0_; }
  [[nodiscard]] std::uint64_t key1() const noexcept { return key1_; }

  bool operator==(const CounterRng&) const = default;

 private:
  std::uint64_t key0_ = 0;
  std::uint64_t key1_ = 0;
};

}  // namespace sgp::random
