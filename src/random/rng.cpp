#include "random/rng.hpp"

#include "util/check.hpp"

namespace sgp::random {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Rng Rng::split(std::uint64_t n) const {
  Rng copy = *this;
  for (std::uint64_t i = 0; i < n; ++i) copy.jump();
  return copy;
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  util::require(bound > 0, "next_below requires bound > 0");
  // Rejection sampling on the top bits: unbiased for any bound.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace sgp::random
