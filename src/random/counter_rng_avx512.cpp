// AVX-512 instantiation of the batch kernel. Compiled with
// -mavx512f -mavx512dq -mavx512vl -mprefer-vector-width=512 when available
// (SGP_KERNEL_HAVE_AVX512); GCC vectorizes the batch loops eight doubles
// wide — DQ supplies the 64-bit lane multiply (vpmullq) the mixing rounds
// need, which is the main reason this TU outruns the AVX2 one.
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "random/counter_mix.hpp"
#include "random/counter_rng_simd.hpp"

namespace {
#include "random/counter_rng_kernel.inl"
}  // namespace

namespace sgp::random::detail {

bool kernel_avx512_compiled() noexcept {
#if defined(SGP_KERNEL_HAVE_AVX512)
  return true;
#else
  return false;
#endif
}

void bits_batch_avx512(std::uint64_t key0, std::uint64_t key1,
                       std::uint64_t counter_begin, std::size_t count,
                       std::uint64_t* out) {
  bits_batch_kernel(key0, key1, counter_begin, count, out);
}

void uniform_batch_avx512(std::uint64_t key0, std::uint64_t key1,
                          std::uint64_t counter_begin, std::size_t count,
                          double* out) {
  uniform_batch_kernel(key0, key1, counter_begin, count, out);
}

void normal_batch_avx512(std::uint64_t key0, std::uint64_t key1,
                         std::uint64_t counter_begin, std::size_t count,
                         double* out) {
  normal_batch_kernel(key0, key1, counter_begin, count, out);
}

}  // namespace sgp::random::detail
