// Runtime selection of the counter-RNG batch kernel.
//
// The fused publish path can generate projection / noise values through one
// of several implementations of the same counter-indexed mapping:
//
//   kScalar   — the original per-value path (CounterRng::normal with libm
//               log/cos). This is the byte-pinned reference: every golden
//               release in the tree was produced by it.
//   kGeneric  — the batch polynomial kernel compiled with baseline x86-64
//               flags. Slow (software fma), but runs anywhere and produces
//               bit-identical output to the AVX variants.
//   kAvx2     — the same polynomial kernel auto-vectorized for AVX2+FMA.
//   kAvx512   — the same kernel auto-vectorized for AVX-512 (F+DQ+VL).
//
// Two *mappings* exist, not four: integer word generation and the 53-bit
// uniform transform are bit-identical across every variant, while Box–Muller
// normals come in a libm flavour (scalar) and a polynomial flavour
// (generic/avx2/avx512, bit-identical to each other by construction — every
// operation in the polynomial kernel is a correctly-rounded IEEE op, so lane
// width and ISA cannot change the value). Published gaussian releases record
// which normal mapping produced them (core/publisher.hpp, ProjectionRngKind)
// so reconstruction can regenerate P on any machine.
//
// Resolution policy:
//   - Exact ops (bits/uniform) auto-dispatch to the fastest supported
//     variant; output cannot depend on the choice.
//   - Normals default to kScalar so artifact bytes stay stable unless the
//     caller opts in, either programmatically, via the SGP_FORCE_KERNEL
//     environment variable, or the --kernel CLI flag.
//   - Requesting a specific unsupported variant is a PreconditionError;
//     requesting kAuto never fails.
#pragma once

#include <string_view>

namespace sgp::random {

/// Which batch-kernel implementation to use. kAuto defers to the resolution
/// policy (see resolve_normal_kernel / resolve_exact_kernel).
enum class KernelVariant {
  kAuto,
  kScalar,
  kGeneric,
  kAvx2,
  kAvx512,
};

/// Stable lowercase name ("auto", "scalar", "generic", "avx2", "avx512");
/// used by the CLI flag, SGP_FORCE_KERNEL, shard config lines, and bench
/// metadata.
[[nodiscard]] std::string_view to_string(KernelVariant variant);

/// Inverse of to_string. Throws util::ParseError on an unknown name.
[[nodiscard]] KernelVariant parse_kernel_variant(std::string_view name);

/// True when `variant` can run in this process: the translation unit for it
/// was compiled with the matching ISA flags AND the CPU reports the feature
/// set at runtime. kScalar and kGeneric are always supported; kAuto is
/// "supported" in the sense that resolution always yields something runnable.
[[nodiscard]] bool kernel_supported(KernelVariant variant);

/// The variant requested through SGP_FORCE_KERNEL, or kAuto when the
/// variable is unset or empty. Throws util::ParseError on an unknown value
/// and util::PreconditionError when the named variant is unsupported here.
[[nodiscard]] KernelVariant forced_kernel_from_env();

/// Resolution for the Box–Muller normal path: kAuto yields the environment
/// override if present, else kScalar (byte-stable default). An explicit
/// variant resolves to itself; unsupported explicit variants throw
/// util::PreconditionError.
[[nodiscard]] KernelVariant resolve_normal_kernel(KernelVariant requested);

/// Resolution for exact ops (bits / uniform), where every variant produces
/// identical bytes: kAuto yields the environment override if present, else
/// the fastest supported variant. Explicit variants behave as above.
[[nodiscard]] KernelVariant resolve_exact_kernel(KernelVariant requested);

/// True when `variant` uses the polynomial normal mapping (anything except
/// kScalar; kAuto is resolved first by callers). Decides the projection-rng
/// tag a gaussian release is published under.
[[nodiscard]] bool uses_polynomial_normals(KernelVariant variant);

/// The fastest supported variant of the polynomial mapping (avx512 > avx2 >
/// generic). Never fails: the generic kernel is always compiled. Used when
/// regenerating "counter-v1-simd" releases, where any polynomial variant
/// yields the same bytes.
[[nodiscard]] KernelVariant best_polynomial_kernel();

}  // namespace sgp::random
