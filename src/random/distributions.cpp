#include "random/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace sgp::random {

double normal(Rng& rng, double mean, double stddev) {
  util::require(stddev >= 0.0, "normal: stddev must be >= 0");
  // Marsaglia polar method. We draw fresh pairs each call and discard the
  // spare so the stream consumed per call is data-independent in expectation;
  // caching the spare would make interleaved consumers order-sensitive.
  for (;;) {
    const double u = 2.0 * rng.next_double() - 1.0;
    const double v = 2.0 * rng.next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      return mean + stddev * u * factor;
    }
  }
}

double laplace(Rng& rng, double mean, double scale) {
  util::require(scale > 0.0, "laplace: scale must be > 0");
  // Inverse CDF on u ~ Uniform(-1/2, 1/2):  x = mean - b*sgn(u)*ln(1-2|u|).
  const double u = rng.next_double() - 0.5;
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return mean - scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double exponential(Rng& rng, double rate) {
  util::require(rate > 0.0, "exponential: rate must be > 0");
  // -log(1-u) avoids log(0) since next_double() < 1.
  return -std::log(1.0 - rng.next_double()) / rate;
}

bool bernoulli(Rng& rng, double p) {
  util::require(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0,1]");
  return rng.next_double() < p;
}

double uniform(Rng& rng, double lo, double hi) {
  util::require(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * rng.next_double();
}

std::uint64_t geometric(Rng& rng, double p) {
  util::require(p > 0.0 && p <= 1.0, "geometric: p must be in (0,1]");
  if (p == 1.0) return 0;
  const double u = 1.0 - rng.next_double();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  util::require(!weights.empty(), "alias table: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    util::require(w >= 0.0, "alias table: weights must be >= 0");
    total += w;
  }
  util::require(total > 0.0, "alias table: weight sum must be > 0");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: everything remaining has probability ~1.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t column = rng.next_below(prob_.size());
  return rng.next_double() < prob_[column] ? column : alias_[column];
}

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k) {
  util::require(k <= n, "sample_without_replacement: k must be <= n");
  // Floyd's algorithm: k iterations, O(k log k) with an ordered set.
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = rng.next_below(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace sgp::random
