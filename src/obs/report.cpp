#include "obs/report.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace sgp::obs {
namespace {

constexpr const char kSchema[] = "sgp-obs-report v1";

std::string quoted(std::string_view s) {
  std::string out;
  util::append_json_string(out, s);
  return out;
}

}  // namespace

Report& Report::meta(std::string_view key, std::string_view value) {
  meta_.emplace_back(std::string(key), quoted(value));
  return *this;
}

Report& Report::meta(std::string_view key, const char* value) {
  return meta(key, std::string_view(value));
}

Report& Report::meta(std::string_view key, double value) {
  meta_.emplace_back(std::string(key), util::json_number(value));
  return *this;
}

Report& Report::meta(std::string_view key, std::int64_t value) {
  meta_.emplace_back(std::string(key),
                     util::json_number(static_cast<double>(value)));
  return *this;
}

Report& Report::meta(std::string_view key, std::uint64_t value) {
  meta_.emplace_back(std::string(key), util::json_number(value));
  return *this;
}

Report& Report::meta(std::string_view key, bool value) {
  meta_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

void Report::write(std::ostream& out) const {
  std::string buf;
  buf += "{\n\"schema\": ";
  buf += quoted(kSchema);
  buf += ",\n\"id\": ";
  buf += quoted(id_);
  buf += ",\n\"meta\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i > 0) buf += ", ";
    buf += quoted(meta_[i].first) + ": " + meta_[i].second;
  }
  buf += "},\n\"phases\": [";
  // Root spans in completion order; only finished spans exist here.
  const std::vector<SpanRecord> spans = collected_spans();
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (span.parent_id != 0) continue;
    if (!first) buf += ", ";
    first = false;
    buf += "{\"name\": " + quoted(span.name) +
           ", \"seconds\": " + util::json_number(span.duration_seconds) + "}";
  }
  buf += "],\n\"metrics\": ";
  out << buf;
  {
    std::ostringstream metrics;
    write_metrics_json(metrics);
    std::string text = metrics.str();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    out << text;
  }
  out << ",\n\"spans\": ";
  {
    std::ostringstream trace;
    write_trace_json(trace);
    std::string text = trace.str();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    out << text;
  }
  out << "\n}\n";
}

void Report::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw util::IoError("report: cannot open " + path);
  }
  write(out);
  out.flush();
  if (!out.good()) {
    throw util::IoError("report: failed writing " + path);
  }
}

namespace {

std::optional<std::string> check_metrics_block(const util::JsonValue& doc) {
  const util::JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return "missing or non-object 'metrics'";
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const util::JsonValue* block = metrics->find(section);
    if (block == nullptr || !block->is_object()) {
      return std::string("metrics: missing or non-object '") + section + "'";
    }
  }
  for (const auto& [name, value] : metrics->find("counters")->as_object()) {
    if (!value.is_number()) {
      return "metrics.counters." + name + ": not a number";
    }
  }
  for (const auto& [name, hist] : metrics->find("histograms")->as_object()) {
    if (!hist.is_object() || hist.find("count") == nullptr ||
        !hist.find("count")->is_number() || hist.find("sum") == nullptr ||
        !hist.find("sum")->is_number() || hist.find("buckets") == nullptr ||
        !hist.find("buckets")->is_array()) {
      return "metrics.histograms." + name +
             ": expected {count, sum, buckets[]}";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_spans(const util::JsonValue& spans,
                                       const std::string& path) {
  if (!spans.is_array()) return path + ": not an array";
  for (std::size_t i = 0; i < spans.as_array().size(); ++i) {
    const util::JsonValue& span = spans.as_array()[i];
    const std::string here = path + "[" + std::to_string(i) + "]";
    if (!span.is_object()) return here + ": not an object";
    if (span.find("name") == nullptr || !span.find("name")->is_string()) {
      return here + ": missing string 'name'";
    }
    for (const char* field : {"start", "duration"}) {
      if (span.find(field) == nullptr || !span.find(field)->is_number()) {
        return here + ": missing number '" + std::string(field) + "'";
      }
    }
    const util::JsonValue* children = span.find("children");
    if (children == nullptr) return here + ": missing 'children'";
    if (auto err = check_spans(*children, here + ".children")) return err;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate_report_json(const util::JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string 'schema'";
  }
  if (schema->as_string() != kSchema) {
    return "unknown schema '" + schema->as_string() + "' (expected '" +
           kSchema + "')";
  }
  const util::JsonValue* id = doc.find("id");
  if (id == nullptr || !id->is_string() || id->as_string().empty()) {
    return "missing non-empty string 'id'";
  }
  const util::JsonValue* meta = doc.find("meta");
  if (meta == nullptr || !meta->is_object()) {
    return "missing or non-object 'meta'";
  }
  const util::JsonValue* phases = doc.find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return "missing or non-array 'phases'";
  }
  for (std::size_t i = 0; i < phases->as_array().size(); ++i) {
    const util::JsonValue& phase = phases->as_array()[i];
    if (!phase.is_object() || phase.find("name") == nullptr ||
        !phase.find("name")->is_string() || phase.find("seconds") == nullptr ||
        !phase.find("seconds")->is_number()) {
      return "phases[" + std::to_string(i) +
             "]: expected {name: string, seconds: number}";
    }
  }
  if (auto err = check_metrics_block(doc)) return err;
  const util::JsonValue* spans = doc.find("spans");
  if (spans == nullptr) return "missing 'spans'";
  return check_spans(*spans, "spans");
}

}  // namespace sgp::obs
