// Cross-process aggregation: sidecar files in, one "sgp-obs-report v2"
// document out.
//
// The distributed publish leaves one observability sidecar per process
// (obs/event_log.hpp). At assembly time the coordinator folds them — plus
// its own live registry/trace state — into a single merged report:
//
//   * counters are summed across processes;
//   * histograms are bucket-merged (dense per-index count addition — an
//     associative, commutative fold, tested as such);
//   * gauges get explicit per-process semantics: each name carries a
//     {"value": v, "processes": {"<pid>": v, …}} object, where `value` is
//     the coordinator's reading when the coordinator has the gauge and the
//     lowest-pid process's otherwise. Nothing is silently last-write-wins:
//     every process's reading is preserved under "processes".
//   * spans are re-parented under the coordinator tree: worker-local span
//     ids are remapped into one id space, worker roots attach to the
//     parent span id the coordinator handed the worker at spawn time, and
//     worker timelines shift by the wall-clock offset between the two
//     process trace epochs;
//   * events merge into one time-ordered stream tagged with the source pid.
//
// The same module validates the v2 schema and renders the merged document
// as a Chrome trace-event / Perfetto-compatible JSON timeline plus a text
// summary (per-shard Gantt, lease reclaim gaps, critical path) for the
// sgp_trace tool.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sgp::util {
class JsonValue;
}  // namespace sgp::util

namespace sgp::obs {

inline constexpr std::string_view kReportV2Schema = "sgp-obs-report v2";

/// Histogram state as it travels through sidecars: the dense bucket-count
/// array indexed like obs::Histogram.
struct ProcessHistogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

/// Everything one process contributed: identity header, events, flushed
/// spans, and the last metrics snapshot that reached the disk.
struct ProcessLog {
  std::uint64_t pid = 0;
  std::string role;
  std::string trace_id;
  std::uint64_t parent_span = 0;
  std::int64_t worker = -1;
  std::int64_t gen = -1;
  double epoch_unix = 0.0;
  /// True when the sidecar ended in a partial/corrupt record — the truthful
  /// prefix before it is still merged.
  bool torn_tail = false;
  std::vector<EventRecord> events;
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, ProcessHistogram> histograms;
};

/// Parses a sidecar file, stopping at (and flagging) a torn tail. Throws
/// util::IoError when the file cannot be opened or lacks a process header.
[[nodiscard]] ProcessLog read_sidecar(const std::string& path);

/// Builds a ProcessLog from this process's live registry, span collector,
/// and event mirror — how the coordinator contributes itself to the merge
/// without round-tripping through its own sidecar.
[[nodiscard]] ProcessLog live_process_log(const std::string& role,
                                          const std::string& trace_id);

/// Bucket-merge: element-wise count addition plus sum/count addition.
/// Associative and commutative, so merge order across processes is
/// irrelevant (tested in tests/obs/aggregate_test.cpp).
[[nodiscard]] ProcessHistogram merge_histograms(const ProcessHistogram& a,
                                                const ProcessHistogram& b);

/// Sidecar files `<prefix><pid>.jsonl` present on disk, excluding this
/// process's own (the coordinator merges itself from live state). Sorted.
[[nodiscard]] std::vector<std::string> find_sidecars(
    const std::string& prefix);

/// Serializes the merged v2 report. `coordinator` anchors the time frame
/// and the span tree; worker logs merge into it as documented above.
void write_report_v2(std::ostream& out, const std::string& id,
                     const ProcessLog& coordinator,
                     const std::vector<ProcessLog>& workers);

/// One-call driver for the tools: merges live coordinator state with every
/// sidecar under `sidecar_prefix`, writes the v2 report to `path`, and —
/// only after a successful write — deletes the consumed sidecars (they
/// survive any earlier crash for postmortem reads). Throws util::IoError
/// on write failure.
void write_merged_report_file(const std::string& path, const std::string& id,
                              const std::string& sidecar_prefix,
                              const std::string& trace_id);

/// Schema check for the v2 document, in the style of validate_report_json.
[[nodiscard]] std::optional<std::string> validate_report_v2_json(
    const util::JsonValue& doc);

/// Renders a parsed v2 report as Chrome trace-event JSON
/// ({"traceEvents": […]}): spans as "X" complete events (ts/dur in µs),
/// lifecycle events as "i" instants, resource samples as "C" counters,
/// process names as "M" metadata.
void write_chrome_trace(std::ostream& out, const util::JsonValue& report);

/// Structural check for the Chrome trace JSON write_chrome_trace emits.
[[nodiscard]] std::optional<std::string> validate_chrome_trace_json(
    const util::JsonValue& doc);

/// Human-readable timeline: per-shard Gantt rows, lease reclaim gaps
/// (reclaim event to the shard's commit), and the critical path through
/// the merged span tree.
void write_trace_summary(std::ostream& out, const util::JsonValue& report);

}  // namespace sgp::obs
