// One timing primitive for benches, tools, and library phases.
//
// ScopedTimer replaces the ad-hoc util::WallTimer + manual logging pattern:
// it opens a trace span under the timer's name, and on stop() (or scope
// exit) records the elapsed time into the "<name>.seconds" latency
// histogram. The same measurement therefore feeds the human-readable bench
// tables, the span tree, and the metrics snapshot — one source of truth.
//
// seconds() can be read while running (for progress lines); stop() is
// idempotent and returns the final elapsed time.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace sgp::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : name_(name), span_(name) {}

  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (while running) or the final time (after stop).
  [[nodiscard]] double seconds() const {
    return stopped_ ? elapsed_ : timer_.seconds();
  }

  /// Attaches an attribute to the underlying span (no-op when tracing is
  /// disabled).
  template <typename T>
  ScopedTimer& attr(std::string_view key, T value) {
    span_.attr(key, value);
    return *this;
  }

  /// Ends the measurement: closes the span and records the duration into
  /// the "<name>.seconds" histogram. Returns the elapsed seconds.
  double stop() {
    if (stopped_) return elapsed_;
    stopped_ = true;
    elapsed_ = timer_.seconds();
    span_.close();
    if (metrics_enabled()) {
      histogram(name_ + ".seconds").record(elapsed_);
    }
    return elapsed_;
  }

 private:
  std::string name_;
  util::WallTimer timer_;
  Span span_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace sgp::obs
