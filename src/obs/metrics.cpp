#include "obs/metrics.hpp"

#include <map>
#include <mutex>
#include <ostream>

#include "util/errors.hpp"
#include "util/json.hpp"

namespace sgp::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

std::atomic<std::size_t> g_next_shard{0};

// One registry per metric kind. std::map nodes never move, so references
// handed out stay valid for the life of the process; std::less<> enables
// string_view lookups without a temporary allocation on the hit path.
struct Registries {
  std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registries& registries() {
  static Registries instance;
  return instance;
}

template <typename Map>
void check_unique_kind(const Map& map, std::string_view name,
                       const char* other_kind) {
  if (map.find(name) != map.end()) {
    throw util::InternalError("metrics: '" + std::string(name) +
                              "' is already registered as a " + other_kind);
  }
}

std::string prometheus_name(std::string_view name) {
  std::string out = "sgp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::size_t this_thread_shard() noexcept {
  thread_local const std::size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

double Histogram::upper_bound(std::size_t bucket) noexcept {
  if (bucket >= kBuckets - 1) return 0.0;  // +Inf sentinel, see exporters
  return 1e-6 * static_cast<double>(1ULL << bucket);
}

std::size_t Histogram::bucket_for(double seconds) noexcept {
  for (std::size_t b = 0; b + 1 < kBuckets; ++b) {
    if (seconds < upper_bound(b)) return b;
  }
  return kBuckets - 1;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

Counter& counter(std::string_view name) {
  Registries& r = registries();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.counters.find(name);
  if (it != r.counters.end()) return it->second;
  check_unique_kind(r.gauges, name, "gauge");
  check_unique_kind(r.histograms, name, "histogram");
  return r.counters.try_emplace(std::string(name)).first->second;
}

Gauge& gauge(std::string_view name) {
  Registries& r = registries();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.gauges.find(name);
  if (it != r.gauges.end()) return it->second;
  check_unique_kind(r.counters, name, "counter");
  check_unique_kind(r.histograms, name, "histogram");
  return r.gauges.try_emplace(std::string(name)).first->second;
}

Histogram& histogram(std::string_view name) {
  Registries& r = registries();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.histograms.find(name);
  if (it != r.histograms.end()) return it->second;
  check_unique_kind(r.counters, name, "counter");
  check_unique_kind(r.gauges, name, "gauge");
  return r.histograms.try_emplace(std::string(name)).first->second;
}

void reset_all_metrics() {
  Registries& r = registries();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c.reset();
  for (auto& [name, g] : r.gauges) g.reset();
  for (auto& [name, h] : r.histograms) h.reset();
}

MetricsSnapshot snapshot_metrics() {
  Registries& r = registries();
  const std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    snap.histograms.emplace_back(name, h.snapshot());
  }
  return snap;
}

namespace {

void append_histogram_json(std::string& out, const Histogram::Snapshot& snap) {
  out += "{\"count\": ";
  out += util::json_number(snap.count);
  out += ", \"sum\": ";
  out += util::json_number(snap.sum);
  out += ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;  // sparse: empty buckets add noise
    if (!first) out += ", ";
    first = false;
    out += "{\"le\": ";
    out += b + 1 == Histogram::kBuckets
               ? std::string("\"+Inf\"")
               : util::json_number(Histogram::upper_bound(b));
    out += ", \"count\": ";
    out += util::json_number(snap.buckets[b]);
    out += "}";
  }
  out += "]}";
}

}  // namespace

void write_metrics_json(std::ostream& out) {
  const MetricsSnapshot snap = snapshot_metrics();
  std::string buf;
  buf += "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    buf += i == 0 ? "\n    " : ",\n    ";
    util::append_json_string(buf, snap.counters[i].first);
    buf += ": ";
    buf += util::json_number(snap.counters[i].second);
  }
  buf += snap.counters.empty() ? "},\n" : "\n  },\n";
  buf += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    buf += i == 0 ? "\n    " : ",\n    ";
    util::append_json_string(buf, snap.gauges[i].first);
    buf += ": ";
    buf += util::json_number(snap.gauges[i].second);
  }
  buf += snap.gauges.empty() ? "},\n" : "\n  },\n";
  buf += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    buf += i == 0 ? "\n    " : ",\n    ";
    util::append_json_string(buf, snap.histograms[i].first);
    buf += ": ";
    append_histogram_json(buf, snap.histograms[i].second);
  }
  buf += snap.histograms.empty() ? "}\n" : "\n  }\n";
  buf += "}\n";
  out << buf;
}

void write_metrics_prometheus(std::ostream& out) {
  const MetricsSnapshot snap = snapshot_metrics();
  std::string buf;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name);
    buf += "# TYPE " + prom + " counter\n";
    buf += prom + " " + util::json_number(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    buf += "# TYPE " + prom + " gauge\n";
    buf += prom + " " + util::json_number(value) + "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string prom = prometheus_name(name);
    buf += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += hist.buckets[b];
      const std::string le =
          b + 1 == Histogram::kBuckets
              ? std::string("+Inf")
              : util::json_number(Histogram::upper_bound(b));
      buf += prom + "_bucket{le=\"" + le + "\"} " +
             util::json_number(cumulative) + "\n";
    }
    buf += prom + "_sum " + util::json_number(hist.sum) + "\n";
    buf += prom + "_count " + util::json_number(hist.count) + "\n";
  }
  out << buf;
}

}  // namespace sgp::obs
