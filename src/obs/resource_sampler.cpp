#include "obs/resource_sampler.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/event_log.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/periodic.hpp"

#if defined(__unix__)
#include <unistd.h>
#endif

namespace sgp::obs {
namespace {

struct ProcReading {
  double rss_mb = 0.0;
  double peak_rss_mb = 0.0;
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
  double open_fds = 0.0;
};

/// Parses "VmRSS:   12345 kB"-style lines; returns MiB.
double status_kb_to_mb(const std::string& line) {
  const char* p = line.c_str();
  while (*p != '\0' && (*p < '0' || *p > '9')) ++p;
  return std::strtod(p, nullptr) / 1024.0;
}

bool read_proc(ProcReading& out) {
#if defined(__unix__)
  {
    std::ifstream status("/proc/self/status");
    if (!status.good()) return false;
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmRSS:", 0) == 0) {
        out.rss_mb = status_kb_to_mb(line);
      } else if (line.rfind("VmHWM:", 0) == 0) {
        out.peak_rss_mb = status_kb_to_mb(line);
      }
    }
  }
  {
    std::ifstream stat("/proc/self/stat");
    if (!stat.good()) return false;
    std::string content;
    std::getline(stat, content);
    // Field 2 is "(comm)" and may contain spaces; resume after the last ')'.
    const std::size_t close = content.rfind(')');
    if (close == std::string::npos) return false;
    std::istringstream rest(content.substr(close + 1));
    std::string field;
    // Fields 3..13 precede utime (field 14) and stime (field 15).
    double utime_ticks = 0.0;
    double stime_ticks = 0.0;
    for (int i = 3; i <= 15 && (rest >> field); ++i) {
      if (i == 14) utime_ticks = std::strtod(field.c_str(), nullptr);
      if (i == 15) stime_ticks = std::strtod(field.c_str(), nullptr);
    }
    const double ticks_per_second =
        static_cast<double>(::sysconf(_SC_CLK_TCK));
    if (ticks_per_second > 0) {
      out.utime_seconds = utime_ticks / ticks_per_second;
      out.stime_seconds = stime_ticks / ticks_per_second;
    }
  }
  {
    std::error_code ec;
    std::filesystem::directory_iterator it("/proc/self/fd", ec), end;
    if (!ec) {
      std::size_t count = 0;
      for (; !ec && it != end; it.increment(ec)) ++count;
      out.open_fds = static_cast<double>(count);
    }
  }
  return true;
#else
  (void)out;
  return false;
#endif
}

std::string format_mb(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

// The ticker thread is owned by util::PeriodicTask — the one sanctioned
// thread owner outside src/util/ is src/util/ itself (sgp-lint R7), so the
// sampler holds the task rather than a raw std::thread + cv stop dance.
struct ResourceSampler::Impl {
  util::PeriodicTask ticker;
};

bool ResourceSampler::sample_once() {
  ProcReading r;
  if (!read_proc(r)) return false;
  gauge(names::kProcRssMb).set(r.rss_mb);
  gauge(names::kProcPeakRssMb).set(r.peak_rss_mb);
  gauge(names::kProcUtimeSeconds).set(r.utime_seconds);
  gauge(names::kProcStimeSeconds).set(r.stime_seconds);
  gauge(names::kProcOpenFds).set(r.open_fds);
  counter(names::kProcSamples).add();
  // Non-durable: samples ride along with the next shard-boundary fsync
  // instead of forcing one per tick.
  log_event(names::kEventProcSample,
            {{"rss_mb", format_mb(r.rss_mb)},
             {"peak_rss_mb", format_mb(r.peak_rss_mb)},
             {"utime_seconds", format_mb(r.utime_seconds)},
             {"stime_seconds", format_mb(r.stime_seconds)},
             {"open_fds", format_mb(r.open_fds)}},
            /*durable=*/false);
  return true;
}

void ResourceSampler::start(std::uint64_t interval_ms) {
  if (impl_ != nullptr || !metrics_enabled()) return;
  if (!sample_once()) return;  // no /proc -> stay inactive
  impl_ = new Impl;
  impl_->ticker.start(interval_ms, [] { sample_once(); });
}

void ResourceSampler::stop() {
  if (impl_ == nullptr) return;
  impl_->ticker.stop();
  delete impl_;
  impl_ = nullptr;
  sample_once();  // final reading so short-lived phases still show peaks
}

bool ResourceSampler::active() const noexcept { return impl_ != nullptr; }

}  // namespace sgp::obs
