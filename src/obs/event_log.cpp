#include "obs/event_log.hpp"

#include <cstdio>
#include <mutex>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"
#include "util/durable.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sgp::obs {
namespace {

struct LogState {
  std::mutex mutex;
  std::vector<EventRecord> events;
  util::DurableAppender sidecar;
  SidecarInfo info;
  std::string path;
  /// Rendered records not yet handed to the appender (non-durable events
  /// batch here until the next durable write).
  std::string pending;
  /// collected_spans() high-water mark: spans below it are already on disk.
  std::size_t spans_flushed = 0;
};

LogState& state() {
  static LogState instance;
  return instance;
}

std::uint64_t this_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

void append_fields_json(std::string& out,
                        const std::vector<std::pair<std::string, std::string>>&
                            fields) {
  out += '{';
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    util::append_json_string(out, fields[i].first);
    out += ": ";
    util::append_json_string(out, fields[i].second);
  }
  out += '}';
}

std::string render_event(const EventRecord& e) {
  std::string body = "{\"type\": \"event\", \"t\": " + util::json_number(e.t) +
                     ", \"name\": ";
  util::append_json_string(body, e.name);
  body += ", \"fields\": ";
  append_fields_json(body, e.fields);
  body += '}';
  return body;
}

std::string render_process_header(const SidecarInfo& info) {
  std::string body = "{\"type\": \"process\", \"pid\": " +
                     util::json_number(this_pid()) + ", \"role\": ";
  util::append_json_string(body, info.role);
  body += ", \"trace_id\": ";
  util::append_json_string(body, info.trace_id);
  body += ", \"parent_span\": " + util::json_number(info.parent_span);
  body += ", \"worker\": " +
          util::json_number(static_cast<double>(info.worker));
  body += ", \"gen\": " + util::json_number(static_cast<double>(info.gen));
  body += ", \"epoch_unix\": " + util::json_number(trace_epoch_unix_seconds());
  body += '}';
  return body;
}

std::string render_span(const SpanRecord& s) {
  std::string body = "{\"type\": \"span\", \"id\": " + util::json_number(s.id) +
                     ", \"parent\": " + util::json_number(s.parent_id) +
                     ", \"name\": ";
  util::append_json_string(body, s.name);
  body += ", \"start\": " + util::json_number(s.start_seconds);
  body += ", \"duration\": " + util::json_number(s.duration_seconds);
  body += ", \"thread\": " + util::json_number(std::uint64_t{s.thread});
  body += ", \"attrs\": ";
  append_fields_json(body, s.attrs);
  body += '}';
  return body;
}

std::string render_metrics_snapshot() {
  const MetricsSnapshot snap = snapshot_metrics();
  std::string body = "{\"type\": \"metrics\", \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) body += ", ";
    util::append_json_string(body, snap.counters[i].first);
    body += ": " + util::json_number(snap.counters[i].second);
  }
  body += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) body += ", ";
    util::append_json_string(body, snap.gauges[i].first);
    body += ": " + util::json_number(snap.gauges[i].second);
  }
  body += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i > 0) body += ", ";
    util::append_json_string(body, snap.histograms[i].first);
    const Histogram::Snapshot& h = snap.histograms[i].second;
    body += ": {\"count\": " + util::json_number(h.count) +
            ", \"sum\": " + util::json_number(h.sum) + ", \"buckets\": [";
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (b > 0) body += ", ";
      body += util::json_number(h.buckets[b]);
    }
    body += "]}";
  }
  body += "}}";
  return body;
}

/// Hands `s.pending` to the appender. Caller holds the mutex. An IO failure
/// detaches the sidecar (warn once, keep the in-memory mirror) — the
/// observability plane must never fail the publish it observes.
void write_pending_locked(LogState& s) {
  if (!s.sidecar.is_open() || s.pending.empty()) return;
  try {
    s.sidecar.append(s.pending);
    s.pending.clear();
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "warning: obs sidecar disabled: %s\n", e.what());
    s.pending.clear();
    try {
      s.sidecar.close();
    } catch (const util::IoError&) {
      // Already degrading; nothing further to report.
    }
  }
}

/// Renders span records for every span finished since the last flush plus a
/// metrics snapshot into `s.pending`. Caller holds the mutex.
void stage_spans_and_metrics_locked(LogState& s) {
  const std::vector<SpanRecord> spans = collected_spans();
  for (std::size_t i = s.spans_flushed; i < spans.size(); ++i) {
    s.pending += crc_frame(render_span(spans[i])) + '\n';
  }
  s.spans_flushed = spans.size();
  s.pending += crc_frame(render_metrics_snapshot()) + '\n';
}

}  // namespace

std::string crc_frame(const std::string& body) {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", util::crc32(body));
  return body + " crc " + hex;
}

bool crc_unframe(const std::string& line, std::string& body) {
  const std::size_t pos = line.rfind(" crc ");
  if (pos == std::string::npos) return false;
  body = line.substr(0, pos);
  return crc_frame(body) == line;
}

void log_event(std::string_view name,
               std::vector<std::pair<std::string, std::string>> fields,
               bool durable) {
  if (!metrics_enabled()) return;
  static Counter& events_ctr = counter(names::kObsEvents);
  events_ctr.add();
  EventRecord record;
  record.t = trace_clock_seconds();
  record.name = std::string(name);
  record.fields = std::move(fields);

  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.sidecar.is_open()) {
    s.pending += crc_frame(render_event(record)) + '\n';
    if (durable) write_pending_locked(s);
  }
  s.events.push_back(std::move(record));
}

void open_sidecar(const std::string& path, const SidecarInfo& info) {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  try {
    s.sidecar.open(path, /*truncate=*/true);
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "warning: cannot open obs sidecar: %s\n", e.what());
    return;
  }
  s.info = info;
  s.path = path;
  s.spans_flushed = 0;
  s.pending = crc_frame(render_process_header(info)) + '\n';
  // Events logged before the path was known (e.g. the ledger charge) are
  // part of this process's record; replay them behind the header.
  for (const EventRecord& e : s.events) {
    s.pending += crc_frame(render_event(e)) + '\n';
  }
  write_pending_locked(s);
}

bool sidecar_open() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.sidecar.is_open();
}

std::string sidecar_path() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.sidecar.is_open() ? s.path : std::string();
}

std::string sidecar_trace_id() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.info.trace_id;
}

void flush_sidecar() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.sidecar.is_open()) return;
  stage_spans_and_metrics_locked(s);
  write_pending_locked(s);
}

void close_sidecar() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.sidecar.is_open()) return;
  stage_spans_and_metrics_locked(s);
  write_pending_locked(s);
  try {
    s.sidecar.close();
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "warning: obs sidecar close failed: %s\n", e.what());
  }
}

std::vector<EventRecord> collected_events() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.events;
}

void clear_event_log() {
  LogState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
  s.pending.clear();
  s.spans_flushed = 0;
  s.info = SidecarInfo{};
  s.path.clear();
  try {
    s.sidecar.close();
  } catch (const util::IoError&) {
    // Test-isolation path; the file is about to be discarded anyway.
  }
}

std::uint64_t sidecar_pid() { return this_pid(); }

}  // namespace sgp::obs
