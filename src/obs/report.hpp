// Combined machine-readable run report: metadata + phase timings + the full
// metrics snapshot + the span forest, in one JSON document.
//
// This is the format behind both `--metrics-out` on the sgp_* tools and the
// BENCH_<id>.json files the bench harness emits (schema "sgp-obs-report v1",
// validated by tools/sgp_bench_check and obs::validate_report_json):
//
//   {
//     "schema": "sgp-obs-report v1",
//     "id": "E7",
//     "meta": {"nodes": 4000, "epsilon": 1.0, ...},
//     "phases": [{"name": "publish", "seconds": 1.23}, ...],
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "spans": [...]
//   }
//
// "phases" summarizes the root spans (name + duration, completion order) so
// consumers that only want coarse timings need not walk the span tree.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgp::util {
class JsonValue;
}  // namespace sgp::util

namespace sgp::obs {

class Report {
 public:
  explicit Report(std::string id) : id_(std::move(id)) {}

  /// Adds one metadata field (ε, δ, m, graph size, dataset name, ...).
  /// Values render as JSON numbers/strings/bools; insertion order is kept.
  Report& meta(std::string_view key, std::string_view value);
  Report& meta(std::string_view key, const char* value);
  Report& meta(std::string_view key, double value);
  Report& meta(std::string_view key, std::int64_t value);
  Report& meta(std::string_view key, std::uint64_t value);
  Report& meta(std::string_view key, bool value);

  /// Serializes the report from the *current* registry/trace state.
  void write(std::ostream& out) const;

  /// write() to `path` (truncating). Throws util::IoError on failure.
  void write_file(const std::string& path) const;

 private:
  std::string id_;
  // Pre-rendered JSON fragments, so meta() stays allocation-simple.
  std::vector<std::pair<std::string, std::string>> meta_;
};

/// Checks a parsed report against the schema above. Returns std::nullopt on
/// success, else a human-readable description of the first violation.
std::optional<std::string> validate_report_json(const util::JsonValue& doc);

}  // namespace sgp::obs
