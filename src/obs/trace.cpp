#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "util/json.hpp"

namespace sgp::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Steady and wall clocks sampled at the same instant, so relative span
/// times can be re-anchored onto Unix time across processes.
struct TraceEpoch {
  Clock::time_point steady;
  double unix_seconds;
};

const TraceEpoch& trace_epoch_pair() {
  static const TraceEpoch epoch = [] {
    TraceEpoch e;
    e.steady = Clock::now();
    e.unix_seconds = std::chrono::duration<double>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    return e;
  }();
  return epoch;
}

Clock::time_point trace_epoch() { return trace_epoch_pair().steady; }

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_thread_id{0};

std::uint32_t this_thread_trace_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Stack of open span ids on this thread; the top is the parent of the next
// span opened here.
thread_local std::vector<std::uint64_t> t_span_stack;

struct Collector {
  std::mutex mutex;
  std::vector<SpanRecord> spans;
};

Collector& collector() {
  static Collector instance;
  return instance;
}

std::string format_double(double v) { return util::json_number(v); }

struct TreeNode {
  const SpanRecord* record = nullptr;
  std::vector<std::size_t> children;  // indexes into the node vector
};

/// Builds the forest (indexes into `nodes`; roots returned separately),
/// ordered by start time.
std::vector<std::size_t> build_tree(const std::vector<SpanRecord>& spans,
                                    std::vector<TreeNode>& nodes) {
  nodes.resize(spans.size());
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    nodes[i].record = &spans[i];
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].start_seconds < spans[b].start_seconds;
  });
  // Map id -> node index for parent lookup.
  std::vector<std::pair<std::uint64_t, std::size_t>> by_id(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) by_id[i] = {spans[i].id, i};
  std::sort(by_id.begin(), by_id.end());
  const auto find_node = [&](std::uint64_t id) -> std::size_t {
    const auto it = std::lower_bound(
        by_id.begin(), by_id.end(), std::make_pair(id, std::size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == by_id.end() || it->first != id) return spans.size();
    return it->second;
  };
  std::vector<std::size_t> roots;
  for (const std::size_t i : order) {
    const std::uint64_t parent = spans[i].parent_id;
    const std::size_t parent_node =
        parent == 0 ? spans.size() : find_node(parent);
    if (parent_node == spans.size()) {
      // Root, or the parent closed before a clear_spans() — treat as root.
      roots.push_back(i);
    } else {
      nodes[parent_node].children.push_back(i);
    }
  }
  return roots;
}

void append_span_json(std::string& out, const std::vector<TreeNode>& nodes,
                      std::size_t index, int depth) {
  const SpanRecord& r = *nodes[index].record;
  const std::string pad(static_cast<std::size_t>(depth) * 2 + 2, ' ');
  out += "{\"name\": ";
  util::append_json_string(out, r.name);
  out += ", \"start\": " + format_double(r.start_seconds);
  out += ", \"duration\": " + format_double(r.duration_seconds);
  out += ", \"thread\": " + util::json_number(std::uint64_t{r.thread});
  out += ", \"attrs\": {";
  for (std::size_t i = 0; i < r.attrs.size(); ++i) {
    if (i > 0) out += ", ";
    util::append_json_string(out, r.attrs[i].first);
    out += ": ";
    util::append_json_string(out, r.attrs[i].second);
  }
  out += "}, \"children\": [";
  for (std::size_t i = 0; i < nodes[index].children.size(); ++i) {
    out += i == 0 ? "\n" + pad : ",\n" + pad;
    append_span_json(out, nodes, nodes[index].children[i], depth + 1);
  }
  out += "]}";
}

void append_span_text(std::string& out, const std::vector<TreeNode>& nodes,
                      std::size_t index, int depth) {
  const SpanRecord& r = *nodes[index].record;
  char line[256];
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  std::snprintf(line, sizeof(line), "%-40s %10.4fs",
                (indent + r.name).c_str(), r.duration_seconds);
  out += line;
  for (const auto& [key, value] : r.attrs) {
    out += "  " + key + "=" + value;
  }
  out += '\n';
  for (const std::size_t child : nodes[index].children) {
    append_span_text(out, nodes, child, depth + 1);
  }
}

}  // namespace

void set_trace_enabled(bool on) noexcept {
  if (on) trace_epoch();  // pin the epoch before the first span
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

double trace_clock_seconds() {
  return std::chrono::duration<double>(Clock::now() - trace_epoch()).count();
}

double trace_epoch_unix_seconds() { return trace_epoch_pair().unix_seconds; }

std::uint64_t current_span_id() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

Span::Span(std::string_view name) {
  if (!trace_enabled()) return;
  active_ = true;
  record_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  record_.name = std::string(name);
  record_.thread = this_thread_trace_id();
  t_span_stack.push_back(record_.id);
  start_ = trace_clock_seconds();
  record_.start_seconds = start_;
}

void Span::close() {
  if (!active_) return;
  active_ = false;
  record_.duration_seconds = trace_clock_seconds() - start_;
  // Pop this span (and anything a missing close() above us leaked).
  while (!t_span_stack.empty()) {
    const std::uint64_t top = t_span_stack.back();
    t_span_stack.pop_back();
    if (top == record_.id) break;
  }
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  c.spans.push_back(std::move(record_));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (!active_) return;
  record_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, const char* value) {
  attr(key, std::string_view(value));
}

void Span::attr(std::string_view key, std::int64_t value) {
  if (!active_) return;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  record_.attrs.emplace_back(std::string(key), buf);
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  record_.attrs.emplace_back(std::string(key), buf);
}

void Span::attr(std::string_view key, double value) {
  if (!active_) return;
  record_.attrs.emplace_back(std::string(key), format_double(value));
}

std::vector<SpanRecord> collected_spans() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  return c.spans;
}

void clear_spans() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  c.spans.clear();
}

void write_trace_json(std::ostream& out) {
  const std::vector<SpanRecord> spans = collected_spans();
  std::vector<TreeNode> nodes;
  const std::vector<std::size_t> roots = build_tree(spans, nodes);
  std::string buf = "[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    buf += i == 0 ? "\n  " : ",\n  ";
    append_span_json(buf, nodes, roots[i], 1);
  }
  buf += roots.empty() ? "]\n" : "\n]\n";
  out << buf;
}

void write_trace_text(std::ostream& out) {
  const std::vector<SpanRecord> spans = collected_spans();
  std::vector<TreeNode> nodes;
  const std::vector<std::size_t> roots = build_tree(spans, nodes);
  std::string buf;
  for (const std::size_t root : roots) {
    append_span_text(buf, nodes, root, 0);
  }
  out << buf;
}

}  // namespace sgp::obs
