// Background process-resource sampler feeding the canonical proc.* gauges.
//
// Every observed process — coordinator, workers, bench harness — runs one
// sampler thread that periodically reads /proc/self/status (VmRSS, VmHWM),
// /proc/self/stat (utime/stime) and counts /proc/self/fd entries, then
// publishes:
//
//   gauge   proc.rss_mb         resident set size, MiB
//   gauge   proc.peak_rss_mb    peak RSS (VmHWM), MiB
//   gauge   proc.utime_seconds  user CPU time consumed so far
//   gauge   proc.stime_seconds  system CPU time consumed so far
//   gauge   proc.open_fds       open file descriptors
//   counter proc.samples        samples taken
//
// plus a non-durable proc.sample event per tick (batched by the event log —
// the sampler never forces an fsync of its own). The merged v2 report keeps
// these gauges per-process under their "processes" key, which is the whole
// point: RSS readings from different processes must never be folded into
// one number.
//
// Off Linux (/proc absent) start() is a no-op that reports inactive.
// Sampling is wall-clock paced and self-terminating: stop() (or process
// exit via the owner's destructor) joins the thread.
#pragma once

#include <cstdint>

namespace sgp::obs {

class ResourceSampler {
 public:
  ResourceSampler() = default;
  ~ResourceSampler() { stop(); }

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Starts the sampler thread with the given tick interval. Takes one
  /// sample synchronously before returning (so even short-lived processes
  /// report their gauges), then samples in the background. No-op when
  /// already running, when metrics are disabled, or where /proc is
  /// unavailable.
  void start(std::uint64_t interval_ms = 200);

  /// Takes a final sample, stops and joins the thread. Idempotent.
  void stop();

  /// Whether the background thread is running.
  [[nodiscard]] bool active() const noexcept;

  /// One synchronous sample into the gauges (shared by the thread and by
  /// callers that want a reading without a thread, e.g. tests). Returns
  /// false where /proc is unavailable.
  static bool sample_once();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace sgp::obs
