// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms.
//
// Design goals (mirroring util/fault_injection's gate pattern):
//
//   * Near-free when disabled. Every instrumentation site costs exactly one
//     relaxed atomic load while metrics are off, so the calls can stay
//     compiled into production builds and hot solver loops.
//   * Contention-free when enabled. Counter and histogram cells are sharded
//     across cache-line-aligned std::atomic slots indexed by a per-thread
//     shard id, so thread_pool workers hammering the same counter never
//     bounce a single cache line.
//   * Stable handles. registry().counter("x") returns a reference that stays
//     valid for the life of the process; hot paths capture it once in a
//     function-local static and never touch the registry lock again:
//
//       static obs::Counter& iters = obs::counter("lanczos.iterations");
//       iters.add();
//
// Naming convention (docs/observability.md): lowercase dotted paths,
// "subsystem.noun[.verb]"; histograms that record durations end in
// ".seconds". Exporters: write_metrics_json() and write_metrics_prometheus()
// below, plus the combined obs::Report (obs/report.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::obs {

/// Global enable gate. Sites check it with one relaxed load; when off, no
/// cell is touched and no time is read.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Number of independent cells each counter/histogram spreads its updates
/// over. Threads map onto shards by a cheap thread-local id, so two pool
/// workers virtually never share a cell.
inline constexpr std::size_t kMetricShards = 8;

/// Shard index of the calling thread (stable for the thread's lifetime).
[[nodiscard]] std::size_t this_thread_shard() noexcept;

namespace detail {
struct alignas(64) ShardedCell {
  std::atomic<std::uint64_t> value{0};
};
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    shards_[this_thread_shard()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  /// Sum over all shards. A racing add() may or may not be included —
  /// exact once writers are quiescent.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::ShardedCell, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value. Gauges are set from configuration
/// paths (pool size, graph dimensions), not hot loops, so a single atomic
/// cell suffices. Unlike Counter/Histogram, set() ignores the enable gate:
/// gauges record set-once configuration (e.g. threadpool.threads at pool
/// construction) that must survive metrics being enabled later.
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram. Bucket i counts samples in
/// [upper_bound(i-1), upper_bound(i)) seconds with power-of-two upper
/// bounds from 1 µs up to ~16.8 s; the final bucket is the +Inf overflow.
/// Counts and the running sum are sharded like Counter.
class Histogram {
 public:
  /// 1 µs · 2^i for i in [0, kBuckets-2]; last bucket is +Inf.
  static constexpr std::size_t kBuckets = 26;
  [[nodiscard]] static double upper_bound(std::size_t bucket) noexcept;
  [[nodiscard]] static std::size_t bucket_for(double seconds) noexcept;

  void record(double seconds) noexcept {
    if (!metrics_enabled()) return;
    Shard& s = shards_[this_thread_shard()];
    s.buckets[bucket_for(seconds)].fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> compiles to a CAS loop; contention is
    // already defused by the sharding.
    s.sum.fetch_add(seconds, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Registry lookups: find-or-create by name; the returned reference is
/// stable forever. Looking the same name up as two different metric kinds
/// throws util::InternalError. Thread-safe.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Zeroes every registered metric (names stay registered, references stay
/// valid). For tests and bench harness isolation.
void reset_all_metrics();

/// Point-in-time snapshot of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Exporters. JSON:   {"counters": {...}, "gauges": {...},
///                     "histograms": {"x": {"count": c, "sum": s,
///                                          "buckets": [{"le": u, "count": n},
///                                          ...]}}}
/// Prometheus text: one "sgp_"-prefixed family per metric, dots mapped to
/// underscores, histograms as cumulative _bucket{le=...}/_sum/_count.
void write_metrics_json(std::ostream& out);
void write_metrics_prometheus(std::ostream& out);

}  // namespace sgp::obs
