#include "obs/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"
#include "util/json.hpp"

namespace sgp::obs {
namespace {

std::string jquote(std::string_view s) {
  std::string out;
  util::append_json_string(out, s);
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_string_map(
    const util::JsonValue* obj) {
  std::vector<std::pair<std::string, std::string>> out;
  if (obj == nullptr || !obj->is_object()) return out;
  for (const auto& [key, value] : obj->as_object()) {
    if (value.is_string()) out.emplace_back(key, value.as_string());
  }
  return out;
}

double number_or(const util::JsonValue* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string string_or(const util::JsonValue* v, const std::string& fallback) {
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

void apply_metrics_record(ProcessLog& log, const util::JsonValue& rec) {
  // Snapshots replace: the last full snapshot on disk is the process state.
  log.counters.clear();
  log.gauges.clear();
  log.histograms.clear();
  if (const util::JsonValue* counters = rec.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      if (value.is_number()) {
        log.counters[name] = static_cast<std::uint64_t>(value.as_number());
      }
    }
  }
  if (const util::JsonValue* gauges = rec.find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->as_object()) {
      if (value.is_number()) log.gauges[name] = value.as_number();
    }
  }
  if (const util::JsonValue* hists = rec.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, value] : hists->as_object()) {
      if (!value.is_object()) continue;
      ProcessHistogram h;
      h.count = static_cast<std::uint64_t>(number_or(value.find("count"), 0));
      h.sum = number_or(value.find("sum"), 0.0);
      const util::JsonValue* buckets = value.find("buckets");
      if (buckets != nullptr && buckets->is_array()) {
        const std::vector<util::JsonValue>& arr = buckets->as_array();
        for (std::size_t b = 0; b < arr.size() && b < Histogram::kBuckets;
             ++b) {
          if (arr[b].is_number()) {
            h.buckets[b] = static_cast<std::uint64_t>(arr[b].as_number());
          }
        }
      }
      log.histograms[name] = h;
    }
  }
}

void apply_span_record(ProcessLog& log, const util::JsonValue& rec) {
  SpanRecord span;
  span.id = static_cast<std::uint64_t>(number_or(rec.find("id"), 0));
  span.parent_id = static_cast<std::uint64_t>(number_or(rec.find("parent"), 0));
  span.name = string_or(rec.find("name"), "");
  span.start_seconds = number_or(rec.find("start"), 0.0);
  span.duration_seconds = number_or(rec.find("duration"), 0.0);
  span.thread = static_cast<std::uint32_t>(number_or(rec.find("thread"), 0));
  span.attrs = parse_string_map(rec.find("attrs"));
  log.spans.push_back(std::move(span));
}

void apply_event_record(ProcessLog& log, const util::JsonValue& rec) {
  EventRecord event;
  event.t = number_or(rec.find("t"), 0.0);
  event.name = string_or(rec.find("name"), "");
  event.fields = parse_string_map(rec.find("fields"));
  log.events.push_back(std::move(event));
}

void apply_process_record(ProcessLog& log, const util::JsonValue& rec) {
  log.pid = static_cast<std::uint64_t>(number_or(rec.find("pid"), 0));
  log.role = string_or(rec.find("role"), "worker");
  log.trace_id = string_or(rec.find("trace_id"), "");
  log.parent_span =
      static_cast<std::uint64_t>(number_or(rec.find("parent_span"), 0));
  log.worker = static_cast<std::int64_t>(number_or(rec.find("worker"), -1));
  log.gen = static_cast<std::int64_t>(number_or(rec.find("gen"), -1));
  log.epoch_unix = number_or(rec.find("epoch_unix"), 0.0);
}

/// A span plus the process it came from, after id remapping into the merged
/// id space and time shifting into the coordinator frame.
struct MergedSpan {
  SpanRecord record;
  std::uint64_t pid = 0;
};

struct MergedEvent {
  EventRecord record;
  std::uint64_t pid = 0;
};

struct MergedTreeNode {
  const MergedSpan* span = nullptr;
  std::vector<std::size_t> children;
};

/// Same forest-building contract as the single-process trace exporter:
/// unknown parents become roots, siblings ordered by start time.
std::vector<std::size_t> build_merged_tree(const std::vector<MergedSpan>& spans,
                                           std::vector<MergedTreeNode>& nodes) {
  nodes.resize(spans.size());
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    nodes[i].span = &spans[i];
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].record.start_seconds < spans[b].record.start_seconds;
  });
  std::vector<std::pair<std::uint64_t, std::size_t>> by_id(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_id[i] = {spans[i].record.id, i};
  }
  std::sort(by_id.begin(), by_id.end());
  const auto find_node = [&](std::uint64_t id) -> std::size_t {
    const auto it = std::lower_bound(
        by_id.begin(), by_id.end(), std::make_pair(id, std::size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == by_id.end() || it->first != id) return spans.size();
    return it->second;
  };
  std::vector<std::size_t> roots;
  for (const std::size_t i : order) {
    const std::uint64_t parent = spans[i].record.parent_id;
    const std::size_t parent_node =
        parent == 0 ? spans.size() : find_node(parent);
    if (parent_node == spans.size()) {
      roots.push_back(i);
    } else {
      nodes[parent_node].children.push_back(i);
    }
  }
  return roots;
}

void append_merged_span_json(std::string& out,
                             const std::vector<MergedTreeNode>& nodes,
                             std::size_t index, int depth) {
  const MergedSpan& s = *nodes[index].span;
  const std::string pad(static_cast<std::size_t>(depth) * 2 + 2, ' ');
  out += "{\"name\": " + jquote(s.record.name);
  out += ", \"start\": " + util::json_number(s.record.start_seconds);
  out += ", \"duration\": " + util::json_number(s.record.duration_seconds);
  out += ", \"thread\": " + util::json_number(std::uint64_t{s.record.thread});
  out += ", \"pid\": " + util::json_number(s.pid);
  out += ", \"attrs\": {";
  for (std::size_t i = 0; i < s.record.attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += jquote(s.record.attrs[i].first) + ": " +
           jquote(s.record.attrs[i].second);
  }
  out += "}, \"children\": [";
  for (std::size_t i = 0; i < nodes[index].children.size(); ++i) {
    out += i == 0 ? "\n" + pad : ",\n" + pad;
    append_merged_span_json(out, nodes, nodes[index].children[i], depth + 1);
  }
  out += "]}";
}

/// Renders a merged histogram the way the v1 exporter does: sparse
/// {le, count} buckets, "+Inf" for the overflow bucket.
void append_merged_histogram_json(std::string& out,
                                  const ProcessHistogram& h) {
  out += "{\"count\": " + util::json_number(h.count) +
         ", \"sum\": " + util::json_number(h.sum) + ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "{\"le\": ";
    if (b + 1 == Histogram::kBuckets) {
      out += "\"+Inf\"";
    } else {
      out += util::json_number(Histogram::upper_bound(b));
    }
    out += ", \"count\": " + util::json_number(h.buckets[b]) + "}";
  }
  out += "]}";
}

}  // namespace

ProcessHistogram merge_histograms(const ProcessHistogram& a,
                                  const ProcessHistogram& b) {
  ProcessHistogram out;
  out.count = a.count + b.count;
  out.sum = a.sum + b.sum;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    out.buckets[i] = a.buckets[i] + b.buckets[i];
  }
  return out;
}

ProcessLog read_sidecar(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::IoError("obs sidecar: cannot open " + path);
  }
  ProcessLog log;
  bool have_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string body;
    if (!crc_unframe(line, body)) {
      // Torn or bit-flipped tail: keep the truthful prefix, stop trusting
      // anything after it.
      log.torn_tail = true;
      break;
    }
    util::JsonValue rec;
    try {
      rec = util::parse_json(body);
    } catch (const util::ParseError&) {
      log.torn_tail = true;
      break;
    }
    if (!rec.is_object()) {
      log.torn_tail = true;
      break;
    }
    const std::string type = string_or(rec.find("type"), "");
    if (type == "process") {
      apply_process_record(log, rec);
      have_header = true;
    } else if (type == "event") {
      apply_event_record(log, rec);
    } else if (type == "span") {
      apply_span_record(log, rec);
    } else if (type == "metrics") {
      apply_metrics_record(log, rec);
    }
    // Unknown record types are skipped (forward compatibility).
  }
  if (!have_header) {
    throw util::IoError("obs sidecar: missing process header in " + path);
  }
  return log;
}

ProcessLog live_process_log(const std::string& role,
                            const std::string& trace_id) {
  ProcessLog log;
  log.pid = sidecar_pid();
  log.role = role;
  log.trace_id = trace_id;
  log.epoch_unix = trace_epoch_unix_seconds();
  log.events = collected_events();
  log.spans = collected_spans();
  const MetricsSnapshot snap = snapshot_metrics();
  for (const auto& [name, value] : snap.counters) log.counters[name] = value;
  for (const auto& [name, value] : snap.gauges) log.gauges[name] = value;
  for (const auto& [name, hist] : snap.histograms) {
    ProcessHistogram h;
    h.count = hist.count;
    h.sum = hist.sum;
    h.buckets = hist.buckets;
    log.histograms[name] = h;
  }
  return log;
}

std::vector<std::string> find_sidecars(const std::string& prefix) {
  namespace fs = std::filesystem;
  const fs::path as_path(prefix);
  fs::path dir = as_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string base = as_path.filename().string();
  const std::string own =
      base + std::to_string(sidecar_pid()) + ".jsonl";
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= base.size() + 6) continue;  // needs pid + ".jsonl"
    if (name.compare(0, base.size(), base) != 0) continue;
    if (name.compare(name.size() - 6, 6, ".jsonl") != 0) continue;
    if (name == own) continue;
    out.push_back((dir / name).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void write_report_v2(std::ostream& out, const std::string& id,
                     const ProcessLog& coordinator,
                     const std::vector<ProcessLog>& workers) {
  // --- metrics folds -------------------------------------------------------
  std::map<std::string, std::uint64_t> counters = coordinator.counters;
  std::map<std::string, ProcessHistogram> histograms = coordinator.histograms;
  // name -> (representative value, pid -> value)
  std::map<std::string, std::pair<double, std::map<std::uint64_t, double>>>
      gauges;
  for (const auto& [name, value] : coordinator.gauges) {
    gauges[name] = {value, {{coordinator.pid, value}}};
  }
  for (const ProcessLog& w : workers) {
    for (const auto& [name, value] : w.counters) counters[name] += value;
    for (const auto& [name, hist] : w.histograms) {
      const auto it = histograms.find(name);
      if (it == histograms.end()) {
        histograms[name] = hist;
      } else {
        it->second = merge_histograms(it->second, hist);
      }
    }
    for (const auto& [name, value] : w.gauges) {
      const auto it = gauges.find(name);
      if (it == gauges.end()) {
        // Gauge the coordinator never saw: the first process to report it
        // provides the representative value.
        gauges[name] = {value, {{w.pid, value}}};
      } else {
        it->second.second[w.pid] = value;
      }
    }
  }

  // --- span merge ----------------------------------------------------------
  std::vector<MergedSpan> merged;
  std::uint64_t max_id = 0;
  for (const SpanRecord& s : coordinator.spans) {
    merged.push_back({s, coordinator.pid});
    max_id = std::max(max_id, s.id);
  }
  for (const ProcessLog& w : workers) {
    for (const SpanRecord& s : w.spans) max_id = std::max(max_id, s.id);
  }
  std::uint64_t next_id = max_id + 1;
  int torn_tails = 0;
  for (const ProcessLog& w : workers) {
    if (w.torn_tail) ++torn_tails;
    const double shift = w.epoch_unix - coordinator.epoch_unix;
    std::map<std::uint64_t, std::uint64_t> remap;
    for (const SpanRecord& s : w.spans) remap[s.id] = next_id++;
    for (const SpanRecord& s : w.spans) {
      MergedSpan m{s, w.pid};
      m.record.id = remap[s.id];
      if (s.parent_id == 0) {
        m.record.parent_id = w.parent_span;
      } else {
        const auto it = remap.find(s.parent_id);
        // A parent that never reached the sidecar (killed before its span
        // closed) still anchors the child under the coordinator tree.
        m.record.parent_id =
            it == remap.end() ? w.parent_span : it->second;
      }
      m.record.start_seconds += shift;
      merged.push_back(std::move(m));
    }
  }

  // --- event merge ---------------------------------------------------------
  std::vector<MergedEvent> events;
  for (const EventRecord& e : coordinator.events) {
    events.push_back({e, coordinator.pid});
  }
  for (const ProcessLog& w : workers) {
    const double shift = w.epoch_unix - coordinator.epoch_unix;
    for (const EventRecord& e : w.events) {
      MergedEvent m{e, w.pid};
      m.record.t += shift;
      events.push_back(std::move(m));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.record.t < b.record.t;
                   });

  std::vector<MergedTreeNode> nodes;
  const std::vector<std::size_t> roots = build_merged_tree(merged, nodes);

  // --- serialize -----------------------------------------------------------
  std::string buf;
  buf += "{\n\"schema\": " + jquote(kReportV2Schema);
  buf += ",\n\"id\": " + jquote(id);
  buf += ",\n\"trace_id\": " + jquote(coordinator.trace_id);
  buf += ",\n\"meta\": {\"processes\": " +
         util::json_number(std::uint64_t{workers.size() + 1}) +
         ", \"torn_tails\": " +
         util::json_number(static_cast<std::uint64_t>(torn_tails)) + "}";
  buf += ",\n\"processes\": [";
  const auto append_process = [&](const ProcessLog& p, bool first) {
    buf += first ? "\n  " : ",\n  ";
    buf += "{\"pid\": " + util::json_number(p.pid);
    buf += ", \"role\": " + jquote(p.role);
    buf += ", \"worker\": " + util::json_number(static_cast<double>(p.worker));
    buf += ", \"gen\": " + util::json_number(static_cast<double>(p.gen));
    buf += ", \"epoch_offset\": " +
           util::json_number(p.epoch_unix - coordinator.epoch_unix);
    buf += ", \"torn_tail\": ";
    buf += p.torn_tail ? "true" : "false";
    buf += ", \"spans\": " + util::json_number(std::uint64_t{p.spans.size()});
    buf +=
        ", \"events\": " + util::json_number(std::uint64_t{p.events.size()});
    buf += "}";
  };
  append_process(coordinator, true);
  for (const ProcessLog& w : workers) append_process(w, false);
  buf += "\n]";
  buf += ",\n\"phases\": [";
  {
    bool first = true;
    for (const std::size_t root : roots) {
      if (!first) buf += ", ";
      first = false;
      buf += "{\"name\": " + jquote(nodes[root].span->record.name) +
             ", \"seconds\": " +
             util::json_number(nodes[root].span->record.duration_seconds) +
             "}";
    }
  }
  buf += "],\n\"metrics\": {\n\"counters\": {";
  {
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!first) buf += ", ";
      first = false;
      buf += jquote(name) + ": " + util::json_number(value);
    }
  }
  buf += "},\n\"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, entry] : gauges) {
      if (!first) buf += ", ";
      first = false;
      buf += jquote(name) + ": {\"value\": " + util::json_number(entry.first) +
             ", \"processes\": {";
      bool pfirst = true;
      for (const auto& [pid, value] : entry.second) {
        if (!pfirst) buf += ", ";
        pfirst = false;
        buf += jquote(std::to_string(pid)) + ": " + util::json_number(value);
      }
      buf += "}}";
    }
  }
  buf += "},\n\"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, hist] : histograms) {
      if (!first) buf += ", ";
      first = false;
      buf += jquote(name) + ": ";
      append_merged_histogram_json(buf, hist);
    }
  }
  buf += "}\n},\n\"events\": [";
  {
    bool first = true;
    for (const MergedEvent& e : events) {
      buf += first ? "\n  " : ",\n  ";
      first = false;
      buf += "{\"t\": " + util::json_number(e.record.t);
      buf += ", \"name\": " + jquote(e.record.name);
      buf += ", \"pid\": " + util::json_number(e.pid);
      buf += ", \"fields\": {";
      for (std::size_t i = 0; i < e.record.fields.size(); ++i) {
        if (i > 0) buf += ", ";
        buf += jquote(e.record.fields[i].first) + ": " +
               jquote(e.record.fields[i].second);
      }
      buf += "}}";
    }
    buf += first ? "]" : "\n]";
  }
  buf += ",\n\"spans\": [";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    buf += i == 0 ? "\n  " : ",\n  ";
    append_merged_span_json(buf, nodes, roots[i], 1);
  }
  buf += roots.empty() ? "]\n}\n" : "\n]\n}\n";
  out << buf;
}

void write_merged_report_file(const std::string& path, const std::string& id,
                              const std::string& sidecar_prefix,
                              const std::string& trace_id) {
  const ProcessLog coordinator = live_process_log("coordinator", trace_id);
  const std::vector<std::string> sidecar_files = find_sidecars(sidecar_prefix);
  std::vector<ProcessLog> workers;
  for (const std::string& file : sidecar_files) {
    try {
      workers.push_back(read_sidecar(file));
    } catch (const util::IoError& e) {
      std::fprintf(stderr, "warning: skipping obs sidecar: %s\n", e.what());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw util::IoError("obs report: cannot open " + path);
  }
  write_report_v2(out, id, coordinator, workers);
  out.flush();
  if (!out.good()) {
    throw util::IoError("obs report: failed writing " + path);
  }
  // The merged report now holds everything the sidecars did; only after the
  // successful write do the sidecars (including our own) stop being needed
  // for postmortems.
  std::error_code ec;
  for (const std::string& file : sidecar_files) {
    std::filesystem::remove(file, ec);
  }
  std::filesystem::remove(
      sidecar_prefix + std::to_string(sidecar_pid()) + ".jsonl", ec);
}

namespace {

std::optional<std::string> check_v2_spans(const util::JsonValue& spans,
                                          const std::string& path) {
  if (!spans.is_array()) return path + ": not an array";
  for (std::size_t i = 0; i < spans.as_array().size(); ++i) {
    const util::JsonValue& span = spans.as_array()[i];
    const std::string here = path + "[" + std::to_string(i) + "]";
    if (!span.is_object()) return here + ": not an object";
    if (span.find("name") == nullptr || !span.find("name")->is_string()) {
      return here + ": missing string 'name'";
    }
    for (const char* field : {"start", "duration", "pid"}) {
      if (span.find(field) == nullptr || !span.find(field)->is_number()) {
        return here + ": missing number '" + std::string(field) + "'";
      }
    }
    const util::JsonValue* children = span.find("children");
    if (children == nullptr) return here + ": missing 'children'";
    if (auto err = check_v2_spans(*children, here + ".children")) return err;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate_report_v2_json(
    const util::JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string 'schema'";
  }
  if (schema->as_string() != kReportV2Schema) {
    return "unknown schema '" + schema->as_string() + "' (expected '" +
           std::string(kReportV2Schema) + "')";
  }
  const util::JsonValue* id = doc.find("id");
  if (id == nullptr || !id->is_string() || id->as_string().empty()) {
    return "missing non-empty string 'id'";
  }
  const util::JsonValue* trace_id = doc.find("trace_id");
  if (trace_id == nullptr || !trace_id->is_string() ||
      trace_id->as_string().empty()) {
    return "missing non-empty string 'trace_id'";
  }
  const util::JsonValue* meta = doc.find("meta");
  if (meta == nullptr || !meta->is_object()) {
    return "missing or non-object 'meta'";
  }
  const util::JsonValue* processes = doc.find("processes");
  if (processes == nullptr || !processes->is_array() ||
      processes->as_array().empty()) {
    return "missing or empty array 'processes'";
  }
  for (std::size_t i = 0; i < processes->as_array().size(); ++i) {
    const util::JsonValue& proc = processes->as_array()[i];
    const std::string here = "processes[" + std::to_string(i) + "]";
    if (!proc.is_object()) return here + ": not an object";
    if (proc.find("pid") == nullptr || !proc.find("pid")->is_number()) {
      return here + ": missing number 'pid'";
    }
    if (proc.find("role") == nullptr || !proc.find("role")->is_string()) {
      return here + ": missing string 'role'";
    }
  }
  const util::JsonValue* phases = doc.find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return "missing or non-array 'phases'";
  }
  for (std::size_t i = 0; i < phases->as_array().size(); ++i) {
    const util::JsonValue& phase = phases->as_array()[i];
    if (!phase.is_object() || phase.find("name") == nullptr ||
        !phase.find("name")->is_string() || phase.find("seconds") == nullptr ||
        !phase.find("seconds")->is_number()) {
      return "phases[" + std::to_string(i) +
             "]: expected {name: string, seconds: number}";
    }
  }
  const util::JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return "missing or non-object 'metrics'";
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const util::JsonValue* block = metrics->find(section);
    if (block == nullptr || !block->is_object()) {
      return std::string("metrics: missing or non-object '") + section + "'";
    }
  }
  for (const auto& [name, value] : metrics->find("counters")->as_object()) {
    if (!value.is_number()) {
      return "metrics.counters." + name + ": not a number";
    }
  }
  for (const auto& [name, value] : metrics->find("gauges")->as_object()) {
    // The v2 gauge contract: explicit per-process readings, never a silent
    // last-write-wins scalar.
    if (!value.is_object() || value.find("value") == nullptr ||
        !value.find("value")->is_number() ||
        value.find("processes") == nullptr ||
        !value.find("processes")->is_object()) {
      return "metrics.gauges." + name + ": expected {value, processes{}}";
    }
    for (const auto& [pid, reading] :
         value.find("processes")->as_object()) {
      if (!reading.is_number()) {
        return "metrics.gauges." + name + ".processes." + pid +
               ": not a number";
      }
    }
  }
  for (const auto& [name, hist] : metrics->find("histograms")->as_object()) {
    if (!hist.is_object() || hist.find("count") == nullptr ||
        !hist.find("count")->is_number() || hist.find("sum") == nullptr ||
        !hist.find("sum")->is_number() || hist.find("buckets") == nullptr ||
        !hist.find("buckets")->is_array()) {
      return "metrics.histograms." + name +
             ": expected {count, sum, buckets[]}";
    }
  }
  const util::JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    return "missing or non-array 'events'";
  }
  for (std::size_t i = 0; i < events->as_array().size(); ++i) {
    const util::JsonValue& event = events->as_array()[i];
    const std::string here = "events[" + std::to_string(i) + "]";
    if (!event.is_object()) return here + ": not an object";
    if (event.find("name") == nullptr || !event.find("name")->is_string()) {
      return here + ": missing string 'name'";
    }
    for (const char* field : {"t", "pid"}) {
      if (event.find(field) == nullptr || !event.find(field)->is_number()) {
        return here + ": missing number '" + std::string(field) + "'";
      }
    }
    if (event.find("fields") == nullptr ||
        !event.find("fields")->is_object()) {
      return here + ": missing object 'fields'";
    }
  }
  const util::JsonValue* spans = doc.find("spans");
  if (spans == nullptr) return "missing 'spans'";
  return check_v2_spans(*spans, "spans");
}

namespace {

void append_chrome_args_from_strings(
    std::string& out,
    const std::map<std::string, util::JsonValue>& fields) {
  out += "\"args\": {";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!value.is_string()) continue;
    if (!first) out += ", ";
    first = false;
    out += jquote(key) + ": " + jquote(value.as_string());
  }
  out += "}";
}

void append_chrome_span(std::string& out, const util::JsonValue& span,
                        bool& first) {
  if (!span.is_object()) return;
  const util::JsonValue* name = span.find("name");
  const util::JsonValue* start = span.find("start");
  const util::JsonValue* duration = span.find("duration");
  if (name == nullptr || !name->is_string() || start == nullptr ||
      !start->is_number() || duration == nullptr || !duration->is_number()) {
    return;
  }
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\": " + jquote(name->as_string());
  out += ", \"ph\": \"X\"";
  out += ", \"ts\": " + util::json_number(start->as_number() * 1e6);
  out += ", \"dur\": " +
         util::json_number(std::max(0.0, duration->as_number() * 1e6));
  out += ", \"pid\": " +
         util::json_number(number_or(span.find("pid"), 0));
  out += ", \"tid\": " + util::json_number(number_or(span.find("thread"), 0));
  out += ", ";
  const util::JsonValue* attrs = span.find("attrs");
  static const std::map<std::string, util::JsonValue> kEmpty;
  append_chrome_args_from_strings(
      out, attrs != nullptr && attrs->is_object() ? attrs->as_object()
                                                  : kEmpty);
  out += "}";
  const util::JsonValue* children = span.find("children");
  if (children != nullptr && children->is_array()) {
    for (const util::JsonValue& child : children->as_array()) {
      append_chrome_span(out, child, first);
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const util::JsonValue& report) {
  std::string buf = "{\"traceEvents\": [\n";
  bool first = true;
  // Process-name metadata rows so the timeline labels lanes usefully.
  const util::JsonValue* processes = report.find("processes");
  if (processes != nullptr && processes->is_array()) {
    for (const util::JsonValue& proc : processes->as_array()) {
      if (!proc.is_object()) continue;
      const double pid = number_or(proc.find("pid"), 0);
      const std::string role = string_or(proc.find("role"), "process");
      const double worker = number_or(proc.find("worker"), -1);
      std::string label = role;
      if (worker >= 0) {
        label += " " + util::json_number(worker);
      }
      if (!first) buf += ",\n";
      first = false;
      buf += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
             util::json_number(pid) + ", \"tid\": 0, \"args\": {\"name\": " +
             jquote(label) + "}}";
    }
  }
  const util::JsonValue* spans = report.find("spans");
  if (spans != nullptr && spans->is_array()) {
    for (const util::JsonValue& span : spans->as_array()) {
      append_chrome_span(buf, span, first);
    }
  }
  const util::JsonValue* events = report.find("events");
  if (events != nullptr && events->is_array()) {
    for (const util::JsonValue& event : events->as_array()) {
      if (!event.is_object()) continue;
      const util::JsonValue* name = event.find("name");
      const util::JsonValue* t = event.find("t");
      if (name == nullptr || !name->is_string() || t == nullptr ||
          !t->is_number()) {
        continue;
      }
      const std::string pid =
          util::json_number(number_or(event.find("pid"), 0));
      const std::string ts = util::json_number(t->as_number() * 1e6);
      const util::JsonValue* fields = event.find("fields");
      static const std::map<std::string, util::JsonValue> kEmpty;
      const std::map<std::string, util::JsonValue>& field_map =
          fields != nullptr && fields->is_object() ? fields->as_object()
                                                   : kEmpty;
      if (!first) buf += ",\n";
      first = false;
      if (name->as_string() == "proc.sample") {
        // Resource samples become counter tracks: numeric fields only.
        buf += "  {\"name\": \"proc\", \"ph\": \"C\", \"ts\": " + ts +
               ", \"pid\": " + pid + ", \"args\": {";
        bool afirst = true;
        for (const auto& [key, value] : field_map) {
          if (!value.is_string()) continue;
          char* end = nullptr;
          const double num = std::strtod(value.as_string().c_str(), &end);
          if (end == value.as_string().c_str()) continue;
          if (!afirst) buf += ", ";
          afirst = false;
          buf += jquote(key) + ": " + util::json_number(num);
        }
        buf += "}}";
      } else {
        buf += "  {\"name\": " + jquote(name->as_string()) +
               ", \"ph\": \"i\", \"ts\": " + ts + ", \"pid\": " + pid +
               ", \"tid\": 0, \"s\": \"p\", ";
        append_chrome_args_from_strings(buf, field_map);
        buf += "}";
      }
    }
  }
  buf += "\n]}\n";
  out << buf;
}

std::optional<std::string> validate_chrome_trace_json(
    const util::JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  const util::JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return "missing or non-array 'traceEvents'";
  }
  for (std::size_t i = 0; i < events->as_array().size(); ++i) {
    const util::JsonValue& event = events->as_array()[i];
    const std::string here = "traceEvents[" + std::to_string(i) + "]";
    if (!event.is_object()) return here + ": not an object";
    const util::JsonValue* name = event.find("name");
    if (name == nullptr || !name->is_string()) {
      return here + ": missing string 'name'";
    }
    const util::JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return here + ": missing string 'ph'";
    }
    const std::string& kind = ph->as_string();
    if (kind != "X" && kind != "i" && kind != "M" && kind != "C") {
      return here + ": unsupported phase '" + kind + "'";
    }
    const util::JsonValue* pid = event.find("pid");
    if (pid == nullptr || !pid->is_number()) {
      return here + ": missing number 'pid'";
    }
    if (kind != "M") {
      const util::JsonValue* ts = event.find("ts");
      if (ts == nullptr || !ts->is_number()) {
        return here + ": missing number 'ts'";
      }
    }
    if (kind == "X") {
      const util::JsonValue* dur = event.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_number() < 0) {
        return here + ": missing non-negative number 'dur'";
      }
    }
  }
  return std::nullopt;
}

namespace {

struct ShardRow {
  std::string shard;
  double pid = 0;
  double start = 0.0;
  double duration = 0.0;
};

void collect_shard_rows(const util::JsonValue& span,
                        std::vector<ShardRow>& rows) {
  if (!span.is_object()) return;
  const util::JsonValue* name = span.find("name");
  if (name != nullptr && name->is_string() &&
      name->as_string() == "publish.shard") {
    ShardRow row;
    const util::JsonValue* attrs = span.find("attrs");
    if (attrs != nullptr) {
      if (const util::JsonValue* shard = attrs->find("shard");
          shard != nullptr && shard->is_string()) {
        row.shard = shard->as_string();
      }
    }
    row.pid = number_or(span.find("pid"), 0);
    row.start = number_or(span.find("start"), 0.0);
    row.duration = number_or(span.find("duration"), 0.0);
    rows.push_back(std::move(row));
  }
  const util::JsonValue* children = span.find("children");
  if (children != nullptr && children->is_array()) {
    for (const util::JsonValue& child : children->as_array()) {
      collect_shard_rows(child, rows);
    }
  }
}

/// The deepest-latest chain: from the longest root, repeatedly descend into
/// the child whose end time is latest.
void append_critical_path(std::string& out, const util::JsonValue& span,
                          int depth) {
  if (!span.is_object()) return;
  char line[256];
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  std::snprintf(line, sizeof(line), "  %s%-36s %10.4fs\n", indent.c_str(),
                string_or(span.find("name"), "?").c_str(),
                number_or(span.find("duration"), 0.0));
  out += line;
  const util::JsonValue* children = span.find("children");
  if (children == nullptr || !children->is_array() ||
      children->as_array().empty()) {
    return;
  }
  const util::JsonValue* latest = nullptr;
  double latest_end = -1.0;
  for (const util::JsonValue& child : children->as_array()) {
    const double end = number_or(child.find("start"), 0.0) +
                       number_or(child.find("duration"), 0.0);
    if (end > latest_end) {
      latest_end = end;
      latest = &child;
    }
  }
  if (latest != nullptr) append_critical_path(out, *latest, depth + 1);
}

}  // namespace

void write_trace_summary(std::ostream& out, const util::JsonValue& report) {
  std::string buf;
  buf += "trace " + string_or(report.find("trace_id"), "?") + "\n";
  const util::JsonValue* processes = report.find("processes");
  if (processes != nullptr && processes->is_array()) {
    char line[256];
    std::snprintf(line, sizeof(line), "processes: %zu\n",
                  processes->as_array().size());
    buf += line;
    for (const util::JsonValue& proc : processes->as_array()) {
      if (!proc.is_object()) continue;
      std::snprintf(
          line, sizeof(line),
          "  pid %.0f  %-11s worker=%.0f gen=%.0f spans=%.0f events=%.0f%s\n",
          number_or(proc.find("pid"), 0),
          string_or(proc.find("role"), "?").c_str(),
          number_or(proc.find("worker"), -1),
          number_or(proc.find("gen"), -1), number_or(proc.find("spans"), 0),
          number_or(proc.find("events"), 0),
          proc.find("torn_tail") != nullptr &&
                  proc.find("torn_tail")->is_bool() &&
                  proc.find("torn_tail")->as_bool()
              ? "  [torn tail]"
              : "");
      buf += line;
    }
  }

  // Per-shard Gantt over the publish.shard spans.
  std::vector<ShardRow> rows;
  const util::JsonValue* spans = report.find("spans");
  if (spans != nullptr && spans->is_array()) {
    for (const util::JsonValue& span : spans->as_array()) {
      collect_shard_rows(span, rows);
    }
  }
  if (!rows.empty()) {
    std::sort(rows.begin(), rows.end(),
              [](const ShardRow& a, const ShardRow& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.shard < b.shard;
              });
    double t0 = rows.front().start;
    double t1 = t0;
    for (const ShardRow& r : rows) {
      t0 = std::min(t0, r.start);
      t1 = std::max(t1, r.start + r.duration);
    }
    const double span_total = std::max(t1 - t0, 1e-9);
    constexpr int kWidth = 40;
    buf += "\nshard timeline (" + util::json_number(span_total) + "s)\n";
    for (const ShardRow& r : rows) {
      const int begin = static_cast<int>((r.start - t0) / span_total * kWidth);
      int len = static_cast<int>(r.duration / span_total * kWidth + 0.5);
      len = std::max(len, 1);
      len = std::min(len, kWidth - begin);
      std::string bar(static_cast<std::size_t>(kWidth), '.');
      for (int i = begin; i < begin + len && i < kWidth; ++i) bar[i] = '#';
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  shard %-4s [%s] pid %.0f  %8.4fs\n", r.shard.c_str(),
                    bar.c_str(), r.pid, r.duration);
      buf += line;
    }
  }

  // Reclaim gaps: lease.reclaimed -> the same shard's commit.
  const util::JsonValue* events = report.find("events");
  if (events != nullptr && events->is_array()) {
    const std::vector<util::JsonValue>& list = events->as_array();
    bool header = false;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (!list[i].is_object()) continue;
      if (string_or(list[i].find("name"), "") != "lease.reclaimed") continue;
      const util::JsonValue* fields = list[i].find("fields");
      if (fields == nullptr) continue;
      const std::string shard =
          fields->find("shard") != nullptr &&
                  fields->find("shard")->is_string()
              ? fields->find("shard")->as_string()
              : "?";
      const double t_reclaim = number_or(list[i].find("t"), 0.0);
      double t_commit = -1.0;
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (!list[j].is_object()) continue;
        if (string_or(list[j].find("name"), "") != "shard.committed") {
          continue;
        }
        const util::JsonValue* cfields = list[j].find("fields");
        if (cfields == nullptr || cfields->find("shard") == nullptr ||
            !cfields->find("shard")->is_string() ||
            cfields->find("shard")->as_string() != shard) {
          continue;
        }
        t_commit = number_or(list[j].find("t"), 0.0);
        break;
      }
      if (!header) {
        buf += "\nreclaim gaps\n";
        header = true;
      }
      char line[256];
      if (t_commit >= 0.0) {
        std::snprintf(line, sizeof(line),
                      "  shard %-4s reclaimed at %8.4fs, recommitted after "
                      "%8.4fs\n",
                      shard.c_str(), t_reclaim, t_commit - t_reclaim);
      } else {
        std::snprintf(line, sizeof(line),
                      "  shard %-4s reclaimed at %8.4fs, never recommitted\n",
                      shard.c_str(), t_reclaim);
      }
      buf += line;
    }
  }

  // Critical path from the longest-running root span.
  if (spans != nullptr && spans->is_array() && !spans->as_array().empty()) {
    const util::JsonValue* longest = nullptr;
    double longest_dur = -1.0;
    for (const util::JsonValue& span : spans->as_array()) {
      const double dur = number_or(span.find("duration"), 0.0);
      if (dur > longest_dur) {
        longest_dur = dur;
        longest = &span;
      }
    }
    if (longest != nullptr) {
      buf += "\ncritical path\n";
      append_critical_path(buf, *longest, 0);
    }
  }
  out << buf;
}

}  // namespace sgp::obs
