// Per-process observability sidecar: structured lifecycle events, flushed
// spans, and metric snapshots appended as CRC-framed JSONL records.
//
// The distributed publish (core/distributed_publish.hpp) runs one process
// per worker, and a SIGKILLed worker takes its in-memory metrics registry
// and span collector with it. The event log is the crash-tolerant escape
// hatch: each process appends records to its own sidecar file
// (`<out>.obs.<pid>.jsonl`) through util::DurableAppender, so whatever
// prefix survived the kill is exactly what the process had durably done —
// no more, no less. The coordinator merges every sidecar into one
// "sgp-obs-report v2" document at assembly time (obs/aggregate.hpp).
//
// Record framing reuses the checkpoint/lease idiom: each line is
// `<json> crc <8-hex-crc32>`; a torn or bit-flipped trailing line is
// detected and dropped by the reader, never trusted. Record types:
//
//   {"type":"process", "pid":…, "role":"coordinator"|"worker",
//    "trace_id":…, "parent_span":…, "worker":…, "gen":…, "epoch_unix":…}
//   {"type":"event",  "t":…, "name":"shard.committed", "fields":{…}}
//   {"type":"span",   "id":…, "parent":…, "name":…, "start":…,
//    "duration":…, "thread":…, "attrs":{…}}
//   {"type":"metrics","counters":{…}, "gauges":{…},
//    "histograms":{"x":{"count":…,"sum":…,"buckets":[c0,…,c25]}}}
//
// `metrics` records are full snapshots (the last one per process wins at
// merge time): a snapshot is idempotent under replay, which a delta stream
// after a torn tail is not. Histogram buckets travel as the dense
// 26-element count array indexed like obs::Histogram — lossless to merge.
//
// The log is process-global and gated exactly like the metrics registry:
// while metrics are disabled, log_event() costs one relaxed load. Events
// logged before a sidecar is opened are buffered in memory and written out
// by open_sidecar() — the ledger charge, for example, happens before the
// coordinator knows its sidecar path. All sidecar IO is best-effort: a
// failing disk disables the sidecar (with a stderr warning) instead of
// failing the publish it observes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgp::obs {

/// One structured lifecycle event. `t` is seconds on the process trace
/// clock (obs/trace.hpp); fields are flat string key/values, rendered as a
/// JSON object in the sidecar.
struct EventRecord {
  double t = 0.0;
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Identity block written as the sidecar's `process` header record.
struct SidecarInfo {
  std::string role;           ///< "coordinator" or "worker"
  std::string trace_id;       ///< release-level trace id (coordinator-minted)
  std::uint64_t parent_span = 0;  ///< coordinator span worker roots attach to
  std::int64_t worker = -1;   ///< worker slot id, -1 for the coordinator
  std::int64_t gen = -1;      ///< worker generation, -1 for the coordinator
};

/// Records an event (no-op while metrics are disabled). Thread-safe. When a
/// sidecar is open the record is appended durably before returning; pass
/// `durable = false` for high-rate records (resource samples) that may
/// batch until the next durable write or flush. Never throws — sidecar IO
/// failures disable the sidecar and keep the in-memory mirror.
void log_event(std::string_view name,
               std::vector<std::pair<std::string, std::string>> fields = {},
               bool durable = true);

/// Opens (truncating) the sidecar at `path`, writes the process header and
/// any buffered events, and switches log_event() to write-through.
void open_sidecar(const std::string& path, const SidecarInfo& info);

[[nodiscard]] bool sidecar_open();
[[nodiscard]] std::string sidecar_path();
[[nodiscard]] std::string sidecar_trace_id();

/// Durably appends every span finished since the last flush plus a full
/// metrics snapshot, in one fsynced write. Call at shard boundaries: after
/// this returns, a SIGKILL loses nothing the process had completed.
void flush_sidecar();

/// flush_sidecar() then closes the file. Idempotent.
void close_sidecar();

/// In-memory mirror of every event logged so far (whether or not a sidecar
/// is open), in log order. The coordinator merges from this mirror rather
/// than re-reading its own sidecar.
[[nodiscard]] std::vector<EventRecord> collected_events();

/// Drops buffered events and detaches any open sidecar without flushing.
/// For tests and per-run harness isolation.
void clear_event_log();

/// This process's pid as the sidecar reports it (0 where unavailable).
[[nodiscard]] std::uint64_t sidecar_pid();

/// CRC framing shared with the sidecar reader (obs/aggregate.hpp):
/// `frame` -> `<body> crc <8-hex-crc32>`; `unframe` validates a line and
/// strips the trailer into `body`, returning false for torn/corrupt lines.
[[nodiscard]] std::string crc_frame(const std::string& body);
[[nodiscard]] bool crc_unframe(const std::string& line, std::string& body);

}  // namespace sgp::obs
