// Canonical registry of every metric, gauge, histogram, and span name the
// sgp library and tools emit — the single source of truth referenced by
// instrumentation sites, the tools' pre-registration lists, the
// docs/observability.md drift test, and the sgp-lint R3 metric-registry
// rule (a string literal passed to obs::counter/gauge/histogram/Span/
// ScopedTimer inside src/ or tools/ must appear here, so a typo can no
// longer fork a metric silently).
//
// Adding an instrument: add a constant AND a kAllNames entry, use the
// constant at the call site, and document it in docs/observability.md.
// Naming rules (docs/observability.md): lowercase dotted
// "subsystem.noun[.verb]"; duration histograms end in ".seconds".
// ScopedTimer(kX) automatically records into "<kX>.seconds" — those
// derived names are canonical by construction (see is_canonical_name).
#pragma once

#include <string_view>

namespace sgp::obs::names {

// --- counters ------------------------------------------------------------
inline constexpr std::string_view kBetweennessBfsSources =
    "betweenness.bfs_sources";
inline constexpr std::string_view kFaultTrips = "fault.trips";
inline constexpr std::string_view kIoEdgesRead = "io.edges_read";
inline constexpr std::string_view kIoEdgesWritten = "io.edges_written";
inline constexpr std::string_view kIoLinesRead = "io.lines_read";
inline constexpr std::string_view kJacobiSolves = "jacobi.solves";
inline constexpr std::string_view kJacobiSweeps = "jacobi.sweeps";
inline constexpr std::string_view kKmeansIterations = "kmeans.iterations";
inline constexpr std::string_view kKmeansReseeds = "kmeans.reseeds";
inline constexpr std::string_view kKmeansRuns = "kmeans.runs";
inline constexpr std::string_view kLanczosFailures = "lanczos.failures";
inline constexpr std::string_view kLanczosIterations = "lanczos.iterations";
inline constexpr std::string_view kLanczosRestarts = "lanczos.restarts";
inline constexpr std::string_view kLanczosSolves = "lanczos.solves";
inline constexpr std::string_view kLedgerAppendAttempts =
    "ledger.append_attempts";
inline constexpr std::string_view kLedgerAppends = "ledger.appends";
inline constexpr std::string_view kLedgerCrcFailures = "ledger.crc_failures";
inline constexpr std::string_view kLedgerRecoveredRecords =
    "ledger.recovered_records";
inline constexpr std::string_view kLedgerRecoveries = "ledger.recoveries";
inline constexpr std::string_view kLinalgFusedTiles = "linalg.fused_tiles";
inline constexpr std::string_view kMechanismReleases = "mechanism.releases";
inline constexpr std::string_view kMechanismSyntheticEdges =
    "mechanism.synthetic_edges";
inline constexpr std::string_view kObsEvents = "obs.events";
inline constexpr std::string_view kProcSamples = "proc.samples";
inline constexpr std::string_view kPublishCells = "publish.cells";
inline constexpr std::string_view kPublishEmbeds = "publish.embeds";
inline constexpr std::string_view kPublishLeasesReclaimed =
    "publish.leases_reclaimed";
inline constexpr std::string_view kPublishReleases = "publish.releases";
inline constexpr std::string_view kPublishShards = "publish.shards";
inline constexpr std::string_view kPublishShardsResumed =
    "publish.shards_resumed";
inline constexpr std::string_view kRetryAttempts = "retry.attempts";
inline constexpr std::string_view kSessionBudgetRefusals =
    "session.budget_refusals";
inline constexpr std::string_view kSessionPublishes = "session.publishes";
inline constexpr std::string_view kSpectralDenseFallbacks =
    "spectral.dense_fallbacks";
inline constexpr std::string_view kSpectralLanczosRetries =
    "spectral.lanczos_retries";
inline constexpr std::string_view kThreadpoolTasks = "threadpool.tasks";

// --- gauges --------------------------------------------------------------
inline constexpr std::string_view kGraphNodes = "graph.nodes";
inline constexpr std::string_view kMechanismCommunities =
    "mechanism.communities";
inline constexpr std::string_view kProcOpenFds = "proc.open_fds";
inline constexpr std::string_view kProcPeakRssMb = "proc.peak_rss_mb";
inline constexpr std::string_view kProcRssMb = "proc.rss_mb";
inline constexpr std::string_view kProcStimeSeconds = "proc.stime_seconds";
inline constexpr std::string_view kProcUtimeSeconds = "proc.utime_seconds";
inline constexpr std::string_view kPublishKernelVariant =
    "publish.kernel_variant";
inline constexpr std::string_view kPublishShardRows = "publish.shard_rows";
inline constexpr std::string_view kPublishSigma = "publish.sigma";
inline constexpr std::string_view kPublishWorkers = "publish.workers";
inline constexpr std::string_view kThreadpoolThreads = "threadpool.threads";

// --- lifecycle event names (obs::log_event) ------------------------------
// Structured events appended to the per-process observability sidecar
// (obs/event_log.hpp) and surfaced in the merged sgp-obs-report v2
// "events" array; R3 holds these to the same single-source-of-truth rule
// as metric names.
inline constexpr std::string_view kEventLeaseReclaimed = "lease.reclaimed";
inline constexpr std::string_view kEventLedgerCharge = "ledger.charge";
inline constexpr std::string_view kEventProcSample = "proc.sample";
inline constexpr std::string_view kEventShardCommitted = "shard.committed";
inline constexpr std::string_view kEventShardLeased = "shard.leased";
inline constexpr std::string_view kEventShardResumed = "shard.resumed";
inline constexpr std::string_view kEventWorkerExit = "worker.exit";
inline constexpr std::string_view kEventWorkerShardDone = "worker.shard_done";
inline constexpr std::string_view kEventWorkerShardStart =
    "worker.shard_start";
inline constexpr std::string_view kEventWorkerSpawned = "worker.spawned";

// --- histograms recorded directly (not via ScopedTimer) ------------------
inline constexpr std::string_view kLedgerAppendSeconds =
    "ledger.append.seconds";

// --- span / ScopedTimer base names ---------------------------------------
// Each timer also owns the derived "<name>.seconds" histogram.
inline constexpr std::string_view kBetweennessApprox = "betweenness.approx";
inline constexpr std::string_view kBetweennessExact = "betweenness.exact";
inline constexpr std::string_view kIoLoadRelease = "io.load_release";
inline constexpr std::string_view kIoReadEdges = "io.read_edges";
inline constexpr std::string_view kIoReadShard = "io.read_shard";
inline constexpr std::string_view kIoSaveRelease = "io.save_release";
inline constexpr std::string_view kIoWriteEdges = "io.write_edges";
inline constexpr std::string_view kKmeans = "kmeans";
inline constexpr std::string_view kLanczos = "lanczos";
inline constexpr std::string_view kMechanismPartition = "mechanism.partition";
inline constexpr std::string_view kMechanismPerturb = "mechanism.perturb";
inline constexpr std::string_view kMechanismPublish = "mechanism.publish";
inline constexpr std::string_view kMechanismResample = "mechanism.resample";
inline constexpr std::string_view kPublish = "publish";
inline constexpr std::string_view kPublishDistributed = "publish.distributed";
inline constexpr std::string_view kPublishEmbed = "publish.embed";
inline constexpr std::string_view kPublishPerturb = "publish.perturb";
inline constexpr std::string_view kPublishProject = "publish.project";
inline constexpr std::string_view kPublishShard = "publish.shard";
inline constexpr std::string_view kPublishSharded = "publish.sharded";
inline constexpr std::string_view kPublishStream = "publish.stream";
inline constexpr std::string_view kSessionBeginRelease =
    "session.begin_release";
inline constexpr std::string_view kSessionPublish = "session.publish";
inline constexpr std::string_view kSpectralEmbed = "spectral.embed";
inline constexpr std::string_view kToolCompareMechanisms =
    "tool.compare_mechanisms";
inline constexpr std::string_view kToolGenerate = "tool.generate";
inline constexpr std::string_view kToolLoadGraph = "tool.load_graph";
inline constexpr std::string_view kToolPublish = "tool.publish";
inline constexpr std::string_view kToolStats = "tool.stats";

/// Every canonical name, sorted. The lint R3 rule and the registry tests
/// consume this; keep it in sync with the constants above (the
/// metric_names test enforces sortedness, uniqueness, and naming rules).
inline constexpr std::string_view kAllNames[] = {
    kBetweennessApprox,
    kBetweennessBfsSources,
    kBetweennessExact,
    kFaultTrips,
    kGraphNodes,
    kIoEdgesRead,
    kIoEdgesWritten,
    kIoLinesRead,
    kIoLoadRelease,
    kIoReadEdges,
    kIoReadShard,
    kIoSaveRelease,
    kIoWriteEdges,
    kJacobiSolves,
    kJacobiSweeps,
    kKmeans,
    kKmeansIterations,
    kKmeansReseeds,
    kKmeansRuns,
    kLanczos,
    kLanczosFailures,
    kLanczosIterations,
    kLanczosRestarts,
    kLanczosSolves,
    kEventLeaseReclaimed,
    kLedgerAppendSeconds,
    kLedgerAppendAttempts,
    kLedgerAppends,
    kEventLedgerCharge,
    kLedgerCrcFailures,
    kLedgerRecoveredRecords,
    kLedgerRecoveries,
    kLinalgFusedTiles,
    kMechanismCommunities,
    kMechanismPartition,
    kMechanismPerturb,
    kMechanismPublish,
    kMechanismReleases,
    kMechanismResample,
    kMechanismSyntheticEdges,
    kObsEvents,
    kProcOpenFds,
    kProcPeakRssMb,
    kProcRssMb,
    kEventProcSample,
    kProcSamples,
    kProcStimeSeconds,
    kProcUtimeSeconds,
    kPublish,
    kPublishCells,
    kPublishDistributed,
    kPublishEmbed,
    kPublishEmbeds,
    kPublishKernelVariant,
    kPublishLeasesReclaimed,
    kPublishPerturb,
    kPublishProject,
    kPublishReleases,
    kPublishShard,
    kPublishShardRows,
    kPublishSharded,
    kPublishShards,
    kPublishShardsResumed,
    kPublishSigma,
    kPublishStream,
    kPublishWorkers,
    kRetryAttempts,
    kSessionBeginRelease,
    kSessionBudgetRefusals,
    kSessionPublish,
    kSessionPublishes,
    kEventShardCommitted,
    kEventShardLeased,
    kEventShardResumed,
    kSpectralDenseFallbacks,
    kSpectralEmbed,
    kSpectralLanczosRetries,
    kThreadpoolTasks,
    kThreadpoolThreads,
    kToolCompareMechanisms,
    kToolGenerate,
    kToolLoadGraph,
    kToolPublish,
    kToolStats,
    kEventWorkerExit,
    kEventWorkerShardDone,
    kEventWorkerShardStart,
    kEventWorkerSpawned,
};

/// True when `name` is in kAllNames, or is the "<base>.seconds" histogram
/// a ScopedTimer derives from a canonical base name.
[[nodiscard]] constexpr bool is_canonical_name(std::string_view name) {
  for (std::string_view n : kAllNames) {
    if (n == name) return true;
  }
  constexpr std::string_view kSuffix = ".seconds";
  if (name.size() > kSuffix.size() &&
      name.substr(name.size() - kSuffix.size()) == kSuffix) {
    const std::string_view base =
        name.substr(0, name.size() - kSuffix.size());
    for (std::string_view n : kAllNames) {
      if (n == base) return true;
    }
  }
  return false;
}

}  // namespace sgp::obs::names
