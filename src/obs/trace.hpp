// Hierarchical RAII trace spans.
//
// A Span measures one region of work. Spans opened while another span is
// live *on the same thread* become its children (each thread keeps its own
// span stack; work handed to thread_pool workers starts a new root on that
// worker — cross-thread parenting is intentionally not inferred). Finished
// spans land in a process-wide collector that the exporters turn into a
// parent/child tree.
//
// Like the metrics registry, tracing is compiled in but gated: while
// trace_enabled() is false a Span is inert and construction costs one
// relaxed atomic load, so library code can open spans unconditionally.
//
//   obs::Span span("publish.project");
//   span.attr("rows", n);
//   ... work ...
//   // destructor records the span
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgp::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Global trace gate, independent of the metrics gate.
inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) noexcept;

/// A finished span as stored by the collector. Times are seconds relative
/// to the process trace epoch (first touch of the trace clock).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::uint32_t thread = 0;  ///< small sequential id, not the OS tid
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Span {
 public:
  /// Opens a span named `name` (no-op while tracing is disabled).
  explicit Span(std::string_view name);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key=value attribute (no-op on an inert or closed span).
  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, const char* value);
  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, std::uint64_t value);
  void attr(std::string_view key, double value);

  /// Ends the span now (idempotent; the destructor calls it too).
  void close();

  /// Whether this span is live and recording (false when tracing was off at
  /// construction or after close()).
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  double start_ = 0.0;
  SpanRecord record_;
};

/// All spans finished so far, in completion order. Thread-safe.
[[nodiscard]] std::vector<SpanRecord> collected_spans();

/// Drops every collected span (open spans are unaffected and will still be
/// recorded when they close). For tests and per-run harness isolation.
void clear_spans();

/// Seconds since the trace epoch — the clock Span uses internally.
[[nodiscard]] double trace_clock_seconds();

/// Unix time (seconds since 1970, system clock) of the trace epoch. Spans
/// and events carry times relative to the per-process epoch; this anchor
/// lets the cross-process aggregator (obs/aggregate.hpp) shift worker
/// timelines into the coordinator's frame.
[[nodiscard]] double trace_epoch_unix_seconds();

/// Id of the innermost span open on the calling thread, or 0 when none is.
/// The distributed coordinator passes this to workers as the parent under
/// which their span forests are re-attached at merge time.
[[nodiscard]] std::uint64_t current_span_id();

/// Writes the span forest as JSON:
///   [{"name": ..., "start": s, "duration": d, "thread": t,
///     "attrs": {...}, "children": [...]}, ...]
/// Roots are ordered by start time, children likewise.
void write_trace_json(std::ostream& out);

/// Human-readable indented tree ("--trace" output), one span per line:
///   publish                         1.234s
///     publish.project               0.801s  rows=5000 cols=100
void write_trace_text(std::ostream& out);

}  // namespace sgp::obs
