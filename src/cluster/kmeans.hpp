// Lloyd's k-means with k-means++ seeding and multi-restart — the final stage
// of the spectral-clustering pipeline used in the paper's node-clustering
// utility evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::cluster {

struct KMeansOptions {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when inertia improves less than this
  std::uint64_t seed = 7;
  std::size_t restarts = 4;  ///< independent k-means++ runs; best kept
};

struct KMeansResult {
  std::vector<std::uint32_t> assignments;  ///< cluster id per point
  linalg::DenseMatrix centroids;           ///< k × d
  double inertia = 0.0;                    ///< Σ point-to-centroid squared dist
  std::size_t iterations = 0;              ///< Lloyd iterations of best run
};

/// Clusters the rows of `points` (n×d) into `k` groups.
/// Requires 1 <= k <= n. Deterministic for a fixed seed.
KMeansResult kmeans(const linalg::DenseMatrix& points,
                    const KMeansOptions& options);

}  // namespace sgp::cluster
