#include "cluster/select_k.hpp"

#include <algorithm>

#include "cluster/kmeans.hpp"
#include "cluster/silhouette.hpp"
#include "util/check.hpp"

namespace sgp::cluster {

std::size_t eigengap_k(const std::vector<double>& values, double tol) {
  util::require(values.size() >= 2, "eigengap: need at least two values");
  // Ignore the trailing ~zero tail (rank-deficient releases).
  std::size_t effective = values.size();
  const double scale = std::max(values.front(), tol);
  while (effective > 2 && values[effective - 1] <= tol * scale) --effective;

  std::size_t best_k = 1;
  double best_ratio = 0.0;
  for (std::size_t k = 1; k < effective; ++k) {
    util::require(values[k] <= values[k - 1] + tol * scale,
                  "eigengap: values must be non-increasing");
    const double denom = std::max(values[k], tol * scale);
    const double ratio = values[k - 1] / denom;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_k = k;
    }
  }
  return best_k;
}

KSelection silhouette_select_k(const linalg::DenseMatrix& points,
                               std::size_t k_min, std::size_t k_max,
                               std::size_t sample_size, std::uint64_t seed) {
  util::require(k_min >= 2, "select_k: k_min must be >= 2");
  util::require(k_max >= k_min, "select_k: k_max must be >= k_min");
  util::require(k_max <= points.rows(), "select_k: k_max must be <= #points");

  KSelection out;
  double best = -2.0;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeansOptions opt;
    opt.k = k;
    opt.seed = seed;
    const auto result = kmeans(points, opt);
    const double score =
        silhouette_score(points, result.assignments, sample_size, seed);
    out.silhouette_per_k.push_back(score);
    if (score > best) {
      best = score;
      out.best_k = k;
    }
  }
  return out;
}

}  // namespace sgp::cluster
