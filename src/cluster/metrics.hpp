// External clustering-quality metrics against ground-truth labels — the
// paper's node-clustering utility is reported as agreement between clusters
// found on the published graph and the true community structure.
#pragma once

#include <cstdint>
#include <vector>

namespace sgp::cluster {

/// Normalized mutual information in [0, 1]:
///   NMI(A, B) = I(A; B) / sqrt(H(A) · H(B)).
/// 1 for identical partitions (up to relabeling), ~0 for independent ones.
/// If either partition has zero entropy (single cluster), returns 1 when the
/// partitions are identical and 0 otherwise.
double normalized_mutual_information(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b);

/// Adjusted Rand index in [-1, 1]; expected 0 for random labelings,
/// 1 for identical partitions.
double adjusted_rand_index(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b);

/// Purity in (0, 1]: each predicted cluster votes for its dominant true
/// label; the fraction of correctly covered points.
double purity(const std::vector<std::uint32_t>& predicted,
              const std::vector<std::uint32_t>& truth);

}  // namespace sgp::cluster
