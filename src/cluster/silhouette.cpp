#include "cluster/silhouette.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "linalg/vector_ops.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::cluster {

double silhouette_score(const linalg::DenseMatrix& points,
                        const std::vector<std::uint32_t>& assignments,
                        std::size_t sample_size, std::uint64_t seed) {
  const std::size_t n = points.rows();
  util::require(assignments.size() == n,
                "silhouette: assignments must match point count");
  util::require(n >= 2, "silhouette: need at least two points");

  std::uint32_t num_clusters = 0;
  for (std::uint32_t a : assignments) {
    num_clusters = std::max(num_clusters, a + 1);
  }
  if (num_clusters < 2) return 0.0;

  std::vector<std::size_t> cluster_size(num_clusters, 0);
  for (std::uint32_t a : assignments) ++cluster_size[a];

  // Optionally evaluate only a sample of anchor points (distances still go
  // to every point, so the estimate is unbiased over anchors).
  std::vector<std::size_t> anchors;
  if (sample_size == 0 || sample_size >= n) {
    anchors.resize(n);
    for (std::size_t i = 0; i < n; ++i) anchors[i] = i;
  } else {
    random::Rng rng(seed);
    anchors = random::sample_without_replacement(rng, n, sample_size);
  }

  double total = 0.0;
  std::vector<double> dist_sum(num_clusters);
  for (std::size_t i : anchors) {
    if (cluster_size[assignments[i]] <= 1) continue;  // convention: s = 0
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist_sum[assignments[j]] +=
          linalg::distance2(points.row(i), points.row(j));
    }
    const std::uint32_t own = assignments[i];
    const double a =
        dist_sum[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::uint32_t c = 0; c < num_clusters; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(cluster_size[c]));
    }
    if (b == std::numeric_limits<double>::max()) continue;
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(anchors.size());
}

}  // namespace sgp::cluster
