#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/check.hpp"

namespace sgp::cluster {
namespace {

struct Contingency {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> joint;
  std::map<std::uint32_t, std::size_t> row;  // counts per label in a
  std::map<std::uint32_t, std::size_t> col;  // counts per label in b
  std::size_t n = 0;
};

Contingency build(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b) {
  util::require(a.size() == b.size(),
                "cluster metrics: label vectors must have equal size");
  util::require(!a.empty(), "cluster metrics: label vectors must be non-empty");
  Contingency t;
  t.n = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++t.joint[{a[i], b[i]}];
    ++t.row[a[i]];
    ++t.col[b[i]];
  }
  return t;
}

double entropy(const std::map<std::uint32_t, std::size_t>& counts,
               std::size_t n) {
  double h = 0.0;
  for (const auto& [label, c] : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(n);
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double normalized_mutual_information(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b) {
  const Contingency t = build(a, b);
  const double n = static_cast<double>(t.n);
  const double ha = entropy(t.row, t.n);
  const double hb = entropy(t.col, t.n);
  if (ha == 0.0 || hb == 0.0) {
    // Degenerate single-cluster partition(s): identical ⇒ 1, else 0.
    return (ha == 0.0 && hb == 0.0) ? 1.0 : 0.0;
  }
  double mi = 0.0;
  for (const auto& [labels, c] : t.joint) {
    const double pij = static_cast<double>(c) / n;
    const double pi = static_cast<double>(t.row.at(labels.first)) / n;
    const double pj = static_cast<double>(t.col.at(labels.second)) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  const double nmi = mi / std::sqrt(ha * hb);
  return std::clamp(nmi, 0.0, 1.0);
}

double adjusted_rand_index(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  const Contingency t = build(a, b);
  auto choose2 = [](std::size_t x) {
    return 0.5 * static_cast<double>(x) * static_cast<double>(x > 0 ? x - 1 : 0);
  };
  double sum_ij = 0.0;
  for (const auto& [labels, c] : t.joint) sum_ij += choose2(c);
  double sum_i = 0.0;
  for (const auto& [label, c] : t.row) sum_i += choose2(c);
  double sum_j = 0.0;
  for (const auto& [label, c] : t.col) sum_j += choose2(c);
  const double total = choose2(t.n);
  if (total == 0.0) return 1.0;  // single point: any partitions agree
  const double expected = sum_i * sum_j / total;
  const double maximum = 0.5 * (sum_i + sum_j);
  if (maximum == expected) return 1.0;  // both partitions trivial
  return (sum_ij - expected) / (maximum - expected);
}

double purity(const std::vector<std::uint32_t>& predicted,
              const std::vector<std::uint32_t>& truth) {
  const Contingency t = build(predicted, truth);
  // For each predicted cluster (row label), take its max joint count.
  std::map<std::uint32_t, std::size_t> best;
  for (const auto& [labels, c] : t.joint) {
    auto& cur = best[labels.first];
    cur = std::max(cur, c);
  }
  std::size_t covered = 0;
  for (const auto& [label, c] : best) covered += c;
  return static_cast<double>(covered) / static_cast<double>(t.n);
}

}  // namespace sgp::cluster
