// Spectral clustering pipeline.
//
// Ground truth side: embed nodes with the top-k eigenvectors of the sparse
// adjacency matrix (Lanczos). Published side: the analyst receives only the
// projected+perturbed n×m matrix, embeds with its top-k left singular
// vectors, and runs the same k-means — that is exactly the paper's
// clustering-utility experiment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/kmeans.hpp"
#include "graph/graph.hpp"
#include "linalg/dense_matrix.hpp"

namespace sgp::cluster {

/// Which operator supplies the spectral embedding.
enum class SpectralMatrix {
  kAdjacency,            ///< top eigenvectors of A (matches the publisher)
  kNormalizedAdjacency,  ///< top of D^{-1/2} A D^{-1/2} (Ng–Jordan–Weiss)
};

struct SpectralOptions {
  std::size_t num_clusters = 2;
  /// Embedding dimension; 0 → num_clusters.
  std::size_t embedding_dim = 0;
  std::uint64_t seed = 7;
  /// Row-normalize the embedding before k-means (standard for spectral
  /// clustering on adjacency/laplacian embeddings).
  bool normalize_rows = true;
  SpectralMatrix matrix = SpectralMatrix::kAdjacency;
};

/// Top-`dim` adjacency eigenvector embedding of a graph (n × dim), computed
/// matrix-free with Lanczos.
linalg::DenseMatrix adjacency_spectral_embedding(const graph::Graph& g,
                                                 std::size_t dim,
                                                 std::uint64_t seed = 7);

/// Top-`dim` eigenvectors of the normalized adjacency D^{-1/2} A D^{-1/2} —
/// the classic normalized-spectral-clustering embedding, robust to degree
/// heterogeneity (hubs don't dominate the leading directions).
linalg::DenseMatrix normalized_spectral_embedding(const graph::Graph& g,
                                                  std::size_t dim,
                                                  std::uint64_t seed = 7);

/// k-means over a (optionally row-normalized) spectral embedding.
/// Rows whose norm is ~0 are left unnormalized (isolated nodes).
KMeansResult cluster_embedding(const linalg::DenseMatrix& embedding,
                               const SpectralOptions& options);

/// Full pipeline on the *original* graph: embed + cluster. This is the
/// non-private reference that published-graph clustering is scored against.
KMeansResult spectral_cluster_graph(const graph::Graph& g,
                                    const SpectralOptions& options);

}  // namespace sgp::cluster
