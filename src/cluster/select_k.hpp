// Choosing the number of clusters from a published graph.
//
// The analyst rarely knows k. Two standard signals, both computable from
// the release alone (post-processing):
//  - eigengap heuristic: k = argmax of the relative gap in the top singular
//    values of Ỹ (a planted k-community graph shows k large values then a
//    drop to the noise bulk);
//  - silhouette sweep: run k-means for each candidate k and keep the best
//    silhouette.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::cluster {

/// Index of the largest *relative* gap in a non-increasing positive
/// sequence of spectral values: returns k such that values[k-1]/values[k]
/// is maximal (1 <= k < values.size()). Values must be positive and
/// non-increasing up to `tol`; trailing ~zero values are ignored.
std::size_t eigengap_k(const std::vector<double>& values, double tol = 1e-9);

/// Sweep k over [k_min, k_max], clustering `points` and scoring silhouettes
/// (subsampled to `sample_size` anchors for speed); returns the best k.
struct KSelection {
  std::size_t best_k = 2;
  std::vector<double> silhouette_per_k;  ///< aligned with k_min..k_max
};
KSelection silhouette_select_k(const linalg::DenseMatrix& points,
                               std::size_t k_min, std::size_t k_max,
                               std::size_t sample_size = 200,
                               std::uint64_t seed = 7);

}  // namespace sgp::cluster
