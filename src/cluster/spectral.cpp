#include "cluster/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "graph/laplacian.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace sgp::cluster {

namespace {

/// Graceful-degradation ladder for the embedding eigensolve:
///   1. Lanczos with the default iteration budget (the fast path);
///   2. on ConvergenceError, Lanczos again with the full Krylov budget
///      (max_iterations = n) and a reseeded start vector;
///   3. on a second failure, the dense symmetric eigensolver — O(n³) but
///      unconditionally convergent.
/// Anything other than a convergence failure propagates unchanged.
linalg::DenseMatrix embedding_from_matrix(const linalg::CsrMatrix& a,
                                          std::size_t n, std::size_t dim,
                                          std::uint64_t seed) {
  obs::ScopedTimer embed_timer(obs::names::kSpectralEmbed);
  embed_timer.attr("n", n).attr("dim", dim);
  linalg::SymmetricOperator op{
      n, [&a](std::span<const double> x, std::span<double> y) {
        const auto r = a.multiply_vector(x);
        std::copy(r.begin(), r.end(), y.begin());
      }};
  linalg::LanczosOptions opt;
  opt.k = dim;
  opt.seed = seed;
  opt.order = linalg::EigenOrder::kDescending;
  try {
    return linalg::lanczos_topk(op, opt).vectors;
  } catch (const util::ConvergenceError& e) {
    obs::counter(obs::names::kSpectralLanczosRetries).add();
    util::LogStream(util::LogLevel::kWarn)
        .with("n", n)
        << "spectral: lanczos failed (" << e.what()
        << "); retrying with max_iterations=" << n;
  }
  try {
    opt.max_iterations = n;
    opt.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    return linalg::lanczos_topk(op, opt).vectors;
  } catch (const util::ConvergenceError& e) {
    obs::counter(obs::names::kSpectralDenseFallbacks).add();
    util::LogStream(util::LogLevel::kWarn)
        .with("n", n)
        << "spectral: lanczos retry failed (" << e.what()
        << "); falling back to the dense eigensolver (O(n^3))";
  }
  const linalg::EigenResult full =
      linalg::jacobi_eigen(a.to_dense(), linalg::EigenOrder::kDescending);
  return full.vectors.first_columns(dim);
}

}  // namespace

linalg::DenseMatrix normalized_spectral_embedding(const graph::Graph& g,
                                                  std::size_t dim,
                                                  std::uint64_t seed) {
  util::require(dim >= 1 && dim <= g.num_nodes(),
                "spectral embedding: dim must be in [1, n]");
  const linalg::CsrMatrix norm = graph::normalized_adjacency_matrix(g);
  return embedding_from_matrix(norm, g.num_nodes(), dim, seed);
}

linalg::DenseMatrix adjacency_spectral_embedding(const graph::Graph& g,
                                                 std::size_t dim,
                                                 std::uint64_t seed) {
  util::require(dim >= 1 && dim <= g.num_nodes(),
                "spectral embedding: dim must be in [1, n]");
  // Spectral clustering wants the algebraically largest eigenvectors of A
  // (community indicators); magnitude order would drag in the bipartite-like
  // negative extreme.
  const linalg::CsrMatrix a = g.adjacency_matrix();
  return embedding_from_matrix(a, g.num_nodes(), dim, seed);
}

KMeansResult cluster_embedding(const linalg::DenseMatrix& embedding,
                               const SpectralOptions& options) {
  util::require(options.num_clusters >= 1,
                "spectral: num_clusters must be >= 1");
  linalg::DenseMatrix points = embedding;
  if (options.embedding_dim != 0 && options.embedding_dim < embedding.cols()) {
    points = embedding.first_columns(options.embedding_dim);
  }
  if (options.normalize_rows) {
    for (std::size_t i = 0; i < points.rows(); ++i) {
      auto row = points.row(i);
      const double nrm = linalg::norm2(row);
      if (nrm > 1e-12) linalg::scale(row, 1.0 / nrm);
    }
  }
  KMeansOptions km;
  km.k = options.num_clusters;
  km.seed = options.seed;
  return kmeans(points, km);
}

KMeansResult spectral_cluster_graph(const graph::Graph& g,
                                    const SpectralOptions& options) {
  const std::size_t dim =
      options.embedding_dim == 0 ? options.num_clusters : options.embedding_dim;
  const auto embedding =
      options.matrix == SpectralMatrix::kNormalizedAdjacency
          ? normalized_spectral_embedding(g, dim, options.seed)
          : adjacency_spectral_embedding(g, dim, options.seed);
  return cluster_embedding(embedding, options);
}

}  // namespace sgp::cluster
