#include "cluster/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "graph/laplacian.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "util/check.hpp"

namespace sgp::cluster {

namespace {

linalg::DenseMatrix embedding_from_matrix(const linalg::CsrMatrix& a,
                                          std::size_t n, std::size_t dim,
                                          std::uint64_t seed) {
  linalg::SymmetricOperator op{
      n, [&a](std::span<const double> x, std::span<double> y) {
        const auto r = a.multiply_vector(x);
        std::copy(r.begin(), r.end(), y.begin());
      }};
  linalg::LanczosOptions opt;
  opt.k = dim;
  opt.seed = seed;
  opt.order = linalg::EigenOrder::kDescending;
  return linalg::lanczos_topk(op, opt).vectors;
}

}  // namespace

linalg::DenseMatrix normalized_spectral_embedding(const graph::Graph& g,
                                                  std::size_t dim,
                                                  std::uint64_t seed) {
  util::require(dim >= 1 && dim <= g.num_nodes(),
                "spectral embedding: dim must be in [1, n]");
  const linalg::CsrMatrix norm = graph::normalized_adjacency_matrix(g);
  return embedding_from_matrix(norm, g.num_nodes(), dim, seed);
}

linalg::DenseMatrix adjacency_spectral_embedding(const graph::Graph& g,
                                                 std::size_t dim,
                                                 std::uint64_t seed) {
  util::require(dim >= 1 && dim <= g.num_nodes(),
                "spectral embedding: dim must be in [1, n]");
  const linalg::CsrMatrix a = g.adjacency_matrix();
  linalg::SymmetricOperator op{
      g.num_nodes(),
      [&a](std::span<const double> x, std::span<double> y) {
        const auto r = a.multiply_vector(x);
        std::copy(r.begin(), r.end(), y.begin());
      }};
  linalg::LanczosOptions opt;
  opt.k = dim;
  opt.seed = seed;
  // Spectral clustering wants the algebraically largest eigenvectors of A
  // (community indicators); magnitude order would drag in the bipartite-like
  // negative extreme.
  opt.order = linalg::EigenOrder::kDescending;
  const linalg::LanczosResult res = linalg::lanczos_topk(op, opt);
  return res.vectors;
}

KMeansResult cluster_embedding(const linalg::DenseMatrix& embedding,
                               const SpectralOptions& options) {
  util::require(options.num_clusters >= 1,
                "spectral: num_clusters must be >= 1");
  linalg::DenseMatrix points = embedding;
  if (options.embedding_dim != 0 && options.embedding_dim < embedding.cols()) {
    points = embedding.first_columns(options.embedding_dim);
  }
  if (options.normalize_rows) {
    for (std::size_t i = 0; i < points.rows(); ++i) {
      auto row = points.row(i);
      const double nrm = linalg::norm2(row);
      if (nrm > 1e-12) linalg::scale(row, 1.0 / nrm);
    }
  }
  KMeansOptions km;
  km.k = options.num_clusters;
  km.seed = options.seed;
  return kmeans(points, km);
}

KMeansResult spectral_cluster_graph(const graph::Graph& g,
                                    const SpectralOptions& options) {
  const std::size_t dim =
      options.embedding_dim == 0 ? options.num_clusters : options.embedding_dim;
  const auto embedding =
      options.matrix == SpectralMatrix::kNormalizedAdjacency
          ? normalized_spectral_embedding(g, dim, options.seed)
          : adjacency_spectral_embedding(g, dim, options.seed);
  return cluster_embedding(embedding, options);
}

}  // namespace sgp::cluster
