// Louvain modularity-maximization community detection.
//
// A graph-native clustering baseline: unlike the spectral pipeline it needs
// no eigenvectors, so it can run directly on graph-shaped releases (e.g. the
// randomized-response baseline's flipped graph) and serves as an independent
// check on the spectral results. Standard two-phase algorithm (Blondel et
// al. 2008): local moves to the neighboring community with the best
// modularity gain, then graph aggregation; repeat until Q stops improving.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sgp::cluster {

struct LouvainOptions {
  std::size_t max_levels = 16;       ///< aggregation rounds
  std::size_t max_sweeps = 32;       ///< local-move sweeps per level
  double min_modularity_gain = 1e-7;  ///< stop when a full sweep gains less
  std::uint64_t seed = 7;            ///< node-visit order shuffling
};

struct LouvainResult {
  std::vector<std::uint32_t> assignments;  ///< community id per node, dense
  double modularity = 0.0;                 ///< Q of the final partition
  std::size_t num_communities = 0;
  std::size_t levels = 0;  ///< aggregation levels actually used
};

/// Runs Louvain on an unweighted graph. Deterministic for a fixed seed.
LouvainResult louvain_cluster(const graph::Graph& g,
                              const LouvainOptions& options = {});

/// One weighted undirected edge (u != v, u < v). Negative weights are
/// allowed: the signed noisy adjacencies of DP community detection
/// (core/mechanism.cpp) rely on Laplace noise cancelling inside the
/// aggregate sums modularity is computed from.
struct WeightedEdge {
  std::uint32_t u;
  std::uint32_t v;
  double weight;
};

/// Runs Louvain on a weighted graph given as an edge list (duplicate pairs
/// accumulate). Deterministic for a fixed seed; reuses the same local-move
/// and aggregation machinery as the unweighted entry point. The reported
/// modularity is the weighted Q of the final partition.
LouvainResult louvain_cluster_weighted(std::size_t num_nodes,
                                       const std::vector<WeightedEdge>& edges,
                                       const LouvainOptions& options = {});

}  // namespace sgp::cluster
