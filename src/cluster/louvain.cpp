#include "cluster/louvain.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "graph/metrics.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"

namespace sgp::cluster {
namespace {

/// Weighted graph in adjacency-list form used for the aggregation levels.
struct WeightedGraph {
  // adjacency[u] = sorted (neighbor, weight) pairs; self loops allowed and
  // carry intra-community weight after aggregation.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  double total_weight = 0.0;  ///< sum of all edge weights (2m counting)

  [[nodiscard]] std::size_t size() const { return adjacency.size(); }
};

WeightedGraph from_simple(const graph::Graph& g) {
  WeightedGraph wg;
  wg.adjacency.resize(g.num_nodes());
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (std::uint32_t v : g.neighbors(u)) {
      wg.adjacency[u].emplace_back(v, 1.0);
    }
  }
  wg.total_weight = 2.0 * static_cast<double>(g.num_edges());
  return wg;
}

double weighted_degree(const WeightedGraph& wg, std::size_t u) {
  double d = 0.0;
  for (const auto& [v, w] : wg.adjacency[u]) {
    d += w;
    if (v == u) d += w;  // self loop counts twice in the degree
  }
  return d;
}

/// One level of local moving. Returns (assignments, modularity gain made).
struct LocalMoveResult {
  std::vector<std::uint32_t> community;
  bool moved_any = false;
};

LocalMoveResult local_move(const WeightedGraph& wg,
                           const LouvainOptions& options, random::Rng& rng) {
  const std::size_t n = wg.size();
  LocalMoveResult result;
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);

  std::vector<double> node_degree(n);
  for (std::size_t u = 0; u < n; ++u) node_degree[u] = weighted_degree(wg, u);
  std::vector<double> community_degree = node_degree;  // Σ degrees per comm

  const double m2 = std::max(wg.total_weight, 1e-300);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  random::shuffle(rng, order);

  std::map<std::uint32_t, double> links_to;  // weight from u to community
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double sweep_gain = 0.0;
    for (std::size_t u : order) {
      const std::uint32_t current = result.community[u];
      links_to.clear();
      double self_weight = 0.0;
      for (const auto& [v, w] : wg.adjacency[u]) {
        if (v == u) {
          self_weight += w;
          continue;
        }
        links_to[result.community[v]] += w;
      }
      (void)self_weight;

      // Remove u from its community.
      community_degree[current] -= node_degree[u];
      const double base_links = links_to.count(current) ? links_to[current] : 0.0;

      // Gain of joining community c: links(u,c)/m − deg(u)·Σdeg(c)/(2m²)
      // (constant terms cancel when comparing).
      std::uint32_t best = current;
      double best_gain =
          base_links / m2 -
          node_degree[u] * community_degree[current] / (m2 * m2);
      for (const auto& [c, w] : links_to) {
        if (c == current) continue;
        const double gain =
            w / m2 - node_degree[u] * community_degree[c] / (m2 * m2);
        if (gain > best_gain + 1e-15) {
          best_gain = gain;
          best = c;
        }
      }
      community_degree[best] += node_degree[u];
      if (best != current) {
        result.community[u] = best;
        result.moved_any = true;
        sweep_gain += best_gain;
      }
    }
    if (sweep_gain < options.min_modularity_gain) break;
  }
  return result;
}

/// Renumbers community labels to a dense 0..k-1 range.
std::size_t compact_labels(std::vector<std::uint32_t>& labels) {
  std::map<std::uint32_t, std::uint32_t> remap;
  for (std::uint32_t& l : labels) {
    const auto [it, inserted] =
        remap.emplace(l, static_cast<std::uint32_t>(remap.size()));
    l = it->second;
  }
  return remap.size();
}

/// Builds the aggregated graph whose nodes are the communities.
WeightedGraph aggregate(const WeightedGraph& wg,
                        const std::vector<std::uint32_t>& community,
                        std::size_t num_communities) {
  WeightedGraph out;
  out.adjacency.resize(num_communities);
  out.total_weight = wg.total_weight;
  std::vector<std::map<std::uint32_t, double>> merged(num_communities);
  for (std::size_t u = 0; u < wg.size(); ++u) {
    const std::uint32_t cu = community[u];
    for (const auto& [v, w] : wg.adjacency[u]) {
      const std::uint32_t cv = community[v];
      if (v == u) {
        // Existing self loop: stored once, passes through at full weight.
        merged[cu][cu] += w;
      } else if (cu == cv) {
        // Intra-community edge: each direction contributes half to the new
        // self loop, so the undirected edge adds weight w in total.
        merged[cu][cu] += w * 0.5;
      } else {
        merged[cu][cv] += w;
      }
    }
  }
  for (std::size_t c = 0; c < num_communities; ++c) {
    out.adjacency[c].assign(merged[c].begin(), merged[c].end());
  }
  return out;
}

/// Weighted modularity Q = Σ_c [ w_in(c)/2m − (deg(c)/2m)² ] of a partition
/// of `wg` — the weighted entry point has no simple graph to hand to
/// graph::modularity.
double weighted_modularity(const WeightedGraph& wg,
                           const std::vector<std::uint32_t>& labels) {
  const double m2 = wg.total_weight;
  if (m2 == 0.0) return 0.0;
  std::size_t k = 0;
  for (std::uint32_t c : labels) k = std::max<std::size_t>(k, c + 1);
  std::vector<double> intra(k, 0.0), degree(k, 0.0);
  for (std::size_t u = 0; u < wg.size(); ++u) {
    degree[labels[u]] += weighted_degree(wg, u);
    for (const auto& [v, w] : wg.adjacency[u]) {
      if (v == u) {
        intra[labels[u]] += 2.0 * w;  // self loop: full weight, stored once
      } else if (labels[v] == labels[u]) {
        intra[labels[u]] += w;  // counted once per direction
      }
    }
  }
  double q = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    q += intra[c] / m2 - (degree[c] / m2) * (degree[c] / m2);
  }
  return q;
}

/// The shared multi-level loop: local moves + aggregation until Q stops
/// improving. Fills assignments/levels/num_communities; modularity is the
/// caller's business (simple vs weighted formula).
void run_levels(WeightedGraph level_graph, const LouvainOptions& options,
                LouvainResult& result) {
  random::Rng rng(options.seed);
  // node -> community-at-current-level mapping, composed across levels.
  std::vector<std::uint32_t> global = result.assignments;

  for (std::size_t level = 0; level < options.max_levels; ++level) {
    LocalMoveResult moved = local_move(level_graph, options, rng);
    const std::size_t k = compact_labels(moved.community);
    result.levels = level + 1;
    // Compose into the node-level assignment.
    for (std::uint32_t& c : global) c = moved.community[c];
    if (!moved.moved_any || k == level_graph.size()) break;
    level_graph = aggregate(level_graph, moved.community, k);
  }

  result.assignments = global;
  result.num_communities = compact_labels(result.assignments);
}

}  // namespace

LouvainResult louvain_cluster(const graph::Graph& g,
                              const LouvainOptions& options) {
  util::require(options.max_levels >= 1, "louvain: max_levels must be >= 1");
  util::require(options.max_sweeps >= 1, "louvain: max_sweeps must be >= 1");

  LouvainResult result;
  result.assignments.resize(g.num_nodes());
  std::iota(result.assignments.begin(), result.assignments.end(), 0);
  if (g.num_nodes() == 0) return result;
  if (g.num_edges() == 0) {
    result.num_communities = g.num_nodes();
    return result;
  }

  run_levels(from_simple(g), options, result);
  result.modularity = graph::modularity(g, result.assignments);
  return result;
}

LouvainResult louvain_cluster_weighted(std::size_t num_nodes,
                                       const std::vector<WeightedEdge>& edges,
                                       const LouvainOptions& options) {
  util::require(options.max_levels >= 1, "louvain: max_levels must be >= 1");
  util::require(options.max_sweeps >= 1, "louvain: max_sweeps must be >= 1");

  LouvainResult result;
  result.assignments.resize(num_nodes);
  std::iota(result.assignments.begin(), result.assignments.end(), 0);
  if (num_nodes == 0) return result;
  if (edges.empty()) {
    result.num_communities = num_nodes;
    return result;
  }

  WeightedGraph wg;
  wg.adjacency.resize(num_nodes);
  {
    // Accumulate duplicates, then emit sorted adjacency in both directions.
    std::vector<std::map<std::uint32_t, double>> merged(num_nodes);
    for (const auto& e : edges) {
      util::require(e.u < num_nodes && e.v < num_nodes,
                    "louvain: edge endpoint out of range");
      util::require(e.u != e.v, "louvain: self loops are invalid");
      merged[e.u][e.v] += e.weight;
      merged[e.v][e.u] += e.weight;
      wg.total_weight += 2.0 * e.weight;
    }
    for (std::size_t u = 0; u < num_nodes; ++u) {
      wg.adjacency[u].assign(merged[u].begin(), merged[u].end());
    }
  }
  const WeightedGraph original = wg;
  run_levels(std::move(wg), options, result);
  result.modularity = weighted_modularity(original, result.assignments);
  return result;
}

}  // namespace sgp::cluster
