#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace sgp::cluster {
namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// k-means++ seeding: first centroid uniform, subsequent ones sampled with
/// probability proportional to squared distance from the nearest chosen one.
linalg::DenseMatrix seed_centroids(const linalg::DenseMatrix& points,
                                   std::size_t k, random::Rng& rng) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  linalg::DenseMatrix centroids(k, d);

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::size_t first = rng.next_below(n);
  std::copy(points.row(first).begin(), points.row(first).end(),
            centroids.row(0).begin());

  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] =
          std::min(dist2[i], squared_distance(points.row(i),
                                              centroids.row(c - 1)));
      total += dist2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.next_below(n);  // all points identical to a centroid
    }
    std::copy(points.row(chosen).begin(), points.row(chosen).end(),
              centroids.row(c).begin());
  }
  return centroids;
}

KMeansResult lloyd_run(const linalg::DenseMatrix& points,
                       const KMeansOptions& options, random::Rng& rng) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = options.k;

  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignments.assign(n, 0);
  double previous_inertia = std::numeric_limits<double>::max();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step (parallel over points).
    double inertia = 0.0;
    {
      std::vector<double> point_cost(n, 0.0);
      util::parallel_for(
          0, n,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              double best = std::numeric_limits<double>::max();
              std::uint32_t best_c = 0;
              for (std::size_t c = 0; c < k; ++c) {
                const double d2 =
                    squared_distance(points.row(i), result.centroids.row(c));
                if (d2 < best) {
                  best = d2;
                  best_c = static_cast<std::uint32_t>(c);
                }
              }
              result.assignments[i] = best_c;
              point_cost[i] = best;
            }
          },
          512);
      for (double pc : point_cost) inertia += pc;
    }
    result.inertia = inertia;

    // Update step.
    linalg::DenseMatrix sums(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = result.assignments[i];
      ++counts[c];
      auto srow = sums.row(c);
      const auto prow = points.row(i);
      for (std::size_t j = 0; j < d; ++j) srow[j] += prow[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point: keeps k clusters alive.
        static obs::Counter& reseeds = obs::counter(obs::names::kKmeansReseeds);
        reseeds.add();
        const std::size_t pick = rng.next_below(n);
        std::copy(points.row(pick).begin(), points.row(pick).end(),
                  result.centroids.row(c).begin());
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      auto crow = result.centroids.row(c);
      const auto srow = sums.row(c);
      for (std::size_t j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }

    if (previous_inertia - inertia <= options.tolerance) break;
    previous_inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const linalg::DenseMatrix& points,
                    const KMeansOptions& options) {
  const std::size_t n = points.rows();
  util::require(n > 0, "kmeans: need at least one point");
  util::require(options.k >= 1 && options.k <= n,
                "kmeans: k must be in [1, #points]");
  util::require(options.restarts >= 1, "kmeans: restarts must be >= 1");

  random::Rng rng(options.seed);
  obs::ScopedTimer timer(obs::names::kKmeans);
  timer.attr("points", n).attr("k", options.k);
  static obs::Counter& runs = obs::counter(obs::names::kKmeansRuns);
  static obs::Counter& iterations = obs::counter(obs::names::kKmeansIterations);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult candidate = lloyd_run(points, options, rng);
    runs.add();
    iterations.add(candidate.iterations);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

}  // namespace sgp::cluster
