// Silhouette score — internal clustering quality needing no ground-truth
// labels, which is the analyst's situation when clustering a *published*
// graph: there is nothing to compare against, but silhouettes still say
// whether the embedding separated anything.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace sgp::cluster {

/// Mean silhouette coefficient over all points, in [-1, 1]:
///   s(i) = (b_i − a_i) / max(a_i, b_i),
/// a_i = mean distance to own cluster, b_i = mean distance to the nearest
/// other cluster. Points in singleton clusters score 0 (standard
/// convention); returns 0 if every point is in one cluster. O(n²·d) — use
/// `sample_size` to bound cost on large inputs (0 = exact).
double silhouette_score(const linalg::DenseMatrix& points,
                        const std::vector<std::uint32_t>& assignments,
                        std::size_t sample_size = 0, std::uint64_t seed = 7);

}  // namespace sgp::cluster
