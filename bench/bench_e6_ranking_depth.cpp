// E6 (paper Fig. "ranking depth profile"): how far down the ranking does the
// published graph stay faithful? Overlap and Jaccard of the top-k% shortlist
// for k% from 0.5 to 20, at fixed budget.
//
// Expected shape: overlap grows with depth (deeper shortlists are easier to
// hit — at k = 100% overlap is 1 by definition); the interesting signal is
// how quickly the curve leaves the random-guess diagonal (overlap = k%).
#include <cstdio>

#include "common.hpp"
#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"

int main() {
  sgp::bench::banner(
      "E6: ranking utility vs shortlist depth",
      "pokec-deg-sim (BA) at eps in {4, 16}; random-guess overlap equals the depth "
      "fraction itself.");

  // Heavy-tailed degree stand-in (see E5 note: ranking utility lives in the
  // degree tail, so this experiment uses the BA degree profile).
  const std::uint64_t seed = 31;
  sgp::random::Rng graph_rng(seed);
  const auto g = sgp::graph::barabasi_albert(40000, 14, graph_rng);
  sgp::bench::BenchReport report("E6");
  report.meta("nodes", static_cast<std::uint64_t>(g.num_nodes()))
      .meta("edges", static_cast<std::uint64_t>(g.num_edges()))
      .meta("m", static_cast<std::uint64_t>(100))
      .meta("epsilon_grid", "4,16")
      .meta("delta", 1e-6)
      .meta("seed", seed);
  sgp::obs::ScopedTimer truth_timer("bench.ground_truth");
  const auto true_degree = sgp::ranking::degree_centrality(g);
  std::fprintf(stderr, "[e6] ground truth in %.1fs\n", truth_timer.stop());

  sgp::util::TextTable table({"top_percent", "k", "overlap_eps4",
                              "jaccard_eps4", "overlap_eps16",
                              "jaccard_eps16", "random_guess"});

  std::vector<std::vector<double>> estimates;
  for (double epsilon : {4.0, 16.0}) {
    sgp::obs::ScopedTimer timer("bench.publish");
    timer.attr("epsilon", epsilon);
    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = 100;
    opt.params = {epsilon, 1e-6};
    opt.seed = seed;
    const auto pub = sgp::core::RandomProjectionPublisher(opt).publish(g);
    estimates.push_back(sgp::core::degree_scores(pub));
    std::fprintf(stderr, "[e6] published at eps=%.0f\n", epsilon);
  }

  for (double pct : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(g.num_nodes()) * pct /
                                    100.0));
    table.new_row().add(pct, 1).add(k);
    for (const auto& est : estimates) {
      table.add(sgp::ranking::top_k_overlap(true_degree, est, k), 3)
          .add(sgp::ranking::top_k_jaccard(true_degree, est, k), 3);
    }
    table.add(pct / 100.0, 3);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
