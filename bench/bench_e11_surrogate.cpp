// E11 (extension): utility of a *graph-shaped* surrogate sampled from the
// release (RDPG fit), versus analyzing the release directly.
//
// Consumers that only speak edge lists pay a price for the extra modeling
// step; this experiment quantifies it: NMI of (a) clustering the release
// directly, (b) spectral clustering of the surrogate, (c) Louvain on the
// surrogate — across ε. Expected shape: surrogate tracks direct analysis
// with a gap that closes as ε grows.
#include <cstdio>

#include "cluster/louvain.hpp"
#include "common.hpp"
#include "core/publisher.hpp"
#include "core/surrogate.hpp"
#include "graph/metrics.hpp"

int main() {
  sgp::bench::banner(
      "E11: surrogate-graph utility vs direct release analysis",
      "facebook-sim; NMI against planted communities. 'direct' = cluster the "
      "n x m release; 'surrogate-*' = sample an RDPG graph first.");

  const auto dataset = sgp::graph::facebook_sim();
  const std::uint64_t seed = 59;
  sgp::bench::BenchReport report("E11");
  report.meta("dataset", dataset.name)
      .meta("nodes",
            static_cast<std::uint64_t>(dataset.planted.graph.num_nodes()))
      .meta("m", static_cast<std::uint64_t>(100))
      .meta("delta", 1e-6)
      .meta("seed", seed);

  sgp::util::TextTable table({"epsilon", "direct_nmi", "surrogate_spectral",
                              "surrogate_louvain", "surrogate_edges"});
  for (double eps : {4.0, 8.0, 16.0, 32.0}) {
    sgp::obs::ScopedTimer timer("bench.sweep");
    timer.attr("epsilon", eps);
    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = 100;
    opt.params = {eps, 1e-6};
    opt.seed = seed;
    const auto pub =
        sgp::core::RandomProjectionPublisher(opt).publish(dataset.planted.graph);

    const auto direct =
        sgp::core::cluster_published(pub, dataset.num_communities, seed);

    sgp::core::SurrogateOptions sopt;
    sopt.rank = dataset.num_communities;
    sopt.seed = seed;
    const auto surrogate = sgp::core::sample_surrogate_graph(pub, sopt);

    sgp::cluster::SpectralOptions copt;
    copt.num_clusters = dataset.num_communities;
    copt.seed = seed;
    const auto spec = sgp::cluster::spectral_cluster_graph(surrogate, copt);
    const auto louv = sgp::cluster::louvain_cluster(surrogate);

    table.new_row()
        .add(eps, 1)
        .add(sgp::cluster::normalized_mutual_information(
                 direct.assignments, dataset.planted.labels),
             3)
        .add(sgp::cluster::normalized_mutual_information(
                 spec.assignments, dataset.planted.labels),
             3)
        .add(sgp::cluster::normalized_mutual_information(
                 louv.assignments, dataset.planted.labels),
             3)
        .add(surrogate.num_edges());
    std::fprintf(stderr, "[e11] eps=%.0f done in %.1fs\n", eps,
                 timer.stop());
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\noriginal graph edges: %zu\n",
              dataset.planted.graph.num_edges());
  return 0;
}
