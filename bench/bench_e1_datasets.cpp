// E1 (paper Table 1): evaluation datasets and their structural statistics.
//
// The paper's table lists SNAP Facebook / Pokec / LiveJournal; offline we
// print the synthetic stand-ins (see DESIGN.md "Substitutions") with the
// statistics a reader would use to sanity-check comparability: size,
// density, degree profile, clustering coefficient, community count.
#include <cstdio>

#include "common.hpp"
#include "graph/metrics.hpp"

int main() {
  sgp::bench::BenchReport report("E1");
  sgp::bench::banner(
      "E1 / Table 1: dataset statistics",
      "Synthetic stand-ins for the SNAP graphs used in the paper.");

  sgp::util::TextTable table({"dataset", "nodes", "edges", "avg_deg",
                              "max_deg", "global_cc", "communities"});
  std::uint64_t total_nodes = 0;
  for (const auto& dataset : sgp::graph::standard_datasets()) {
    sgp::obs::ScopedTimer timer("bench.dataset");
    timer.attr("dataset", dataset.name);
    const auto& g = dataset.planted.graph;
    total_nodes += g.num_nodes();
    const auto stats = sgp::graph::degree_stats(g);
    const double cc = sgp::graph::global_clustering_coefficient(g);
    table.new_row()
        .add(dataset.name)
        .add(g.num_nodes())
        .add(g.num_edges())
        .add(stats.mean, 1)
        .add(stats.max)
        .add(cc, 4)
        .add(dataset.num_communities);
    std::fprintf(stderr, "[e1] %s done in %.1fs\n", dataset.name.c_str(),
                 timer.stop());
  }
  report.meta("total_nodes", total_nodes);
  std::printf("%s", table.to_string().c_str());
  return 0;
}
