// E14: mechanism comparison over the standard scenario grid — every
// registered mechanism publishes every scenario graph at every (ε, δ) point
// and is scored on every analyst task (core/scenario.hpp).
//
// Claim under test: the mechanism family trades utility coherently — the
// community-profile mechanisms preserve graph-shaped statistics (degree
// distribution, conductance at high ε) that the projection release cannot,
// while the projection stays the embedding-task baseline; no mechanism
// pretends to preserve what its release shape discards.
//
// Usage: bench_e14_mechanisms [--nodes N]   (default: the grid's standard
// 240). The ctest schema fixture runs a smaller N so validating
// BENCH_E14.json stays fast; the meta axes and per-cell score keys
// ("score.<generator>.<mechanism>.e<epsilon>.<task>") are emitted
// regardless of size, and `sgp_analyze --compare-mechanisms BENCH_E14.json`
// renders the same table from the report alone.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "core/mechanism.hpp"
#include "core/scenario.hpp"
#include "dp/defaults.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// The value of `key` inside a scenario cell label ("generator=sbm/...").
std::string label_part(const std::string& label, const std::string& key) {
  const std::string needle = key + "=";
  const std::size_t at = label.find(needle);
  const std::size_t begin = at + needle.size();
  return label.substr(begin, label.find('/', begin) - begin);
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ",";
    out += p;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp::core::scenario;
  const sgp::util::CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", static_cast<int>(kScenarioNodes)));

  sgp::bench::BenchReport report("E14");
  sgp::bench::banner(
      "E14: mechanism comparison on the scenario grid",
      "Every mechanism x generator x (eps, delta) x task cell, scored in "
      "[0, 1] against the non-private reference; release shape decides "
      "which tasks survive.");

  sgp::util::TextTable table({"generator", "mechanism", "epsilon", "task",
                              "score", "reference"});
  std::vector<std::string> epsilon_labels;
  for (const auto& cell : standard_grid()) {
    const auto planted =
        make_scenario_graph(cell.generator, cell.seed, nodes);
    sgp::obs::ScopedTimer timer("bench.cell");
    timer.attr("cell", cell.label);
    const auto release = sgp::core::make_mechanism(cell.mechanism)
                             ->publish(planted.graph, cell_options(cell));
    const double score = run_task(release, cell.task, planted, cell.seed);
    const double reference = reference_score(cell.task, planted, cell.seed);
    const std::string epsilon = label_part(cell.label, "epsilon");
    if (epsilon_labels.empty() || epsilon_labels.back() != epsilon) {
      bool seen = false;
      for (const auto& e : epsilon_labels) seen = seen || e == epsilon;
      if (!seen) epsilon_labels.push_back(epsilon);
    }
    table.new_row()
        .add(to_string(cell.generator))
        .add(sgp::core::to_string(cell.mechanism))
        .add(epsilon)
        .add(to_string(cell.task))
        .add(score, 3)
        .add(reference, 3);
    report.meta("score." + to_string(cell.generator) + "." +
                    sgp::core::to_string(cell.mechanism) + ".e" + epsilon +
                    "." + to_string(cell.task),
                score);
  }
  std::printf("%s", table.to_string().c_str());

  report.meta("mechanisms", join(sgp::core::known_mechanism_names()))
      .meta("generators", join(known_generator_names()))
      .meta("epsilons", join(epsilon_labels))
      .meta("tasks", join(known_task_names()))
      .meta("delta", sgp::dp::kScenarioDelta)
      .meta("nodes", static_cast<std::uint64_t>(nodes))
      .meta("base_seed", static_cast<std::uint64_t>(kScenarioBaseSeed));
  return 0;
}
