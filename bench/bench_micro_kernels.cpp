// Micro-benchmarks of the kernels the publish/analyze pipelines spend their
// time in — regression guardrails for performance work (google-benchmark
// with proper auto-iteration, unlike the one-shot macro timings of E7).
//
// The BM_Obs* group measures the observability primitives themselves: the
// disabled paths are the cost every instrumented call site pays when no one
// asked for metrics (one relaxed atomic load — the docs/observability.md
// overhead numbers come from here), the enabled paths bound the cost of
// running with --metrics-out / --trace.
#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>

#include "cluster/kmeans.hpp"
#include "common.hpp"
#include "core/projection.hpp"
#include "graph/generators.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "random/counter_rng_simd.hpp"
#include "random/distributions.hpp"
#include "random/kernel_variant.hpp"
#include "ranking/metrics.hpp"

namespace {

sgp::linalg::DenseMatrix random_dense(std::size_t r, std::size_t c,
                                      std::uint64_t seed) {
  sgp::random::Rng rng(seed);
  sgp::linalg::DenseMatrix m(r, c);
  for (auto& v : m.data()) v = sgp::random::normal(rng);
  return m;
}

const sgp::graph::Graph& bench_graph() {
  static const sgp::graph::Graph g = [] {
    sgp::random::Rng rng(3);
    return sgp::graph::erdos_renyi(5000, 0.01, rng);
  }();
  return g;
}

void BM_SpMM(benchmark::State& state) {
  const auto a = bench_graph().adjacency_matrix();
  const auto p = random_dense(5000, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto y = a.multiply_dense(p);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_SpMM)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_GaussianProjection(benchmark::State& state) {
  sgp::random::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto p = sgp::core::gaussian_projection(n, 100, rng);
    benchmark::DoNotOptimize(p.data().data());
  }
}
BENCHMARK(BM_GaussianProjection)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_AchlioptasProjection(benchmark::State& state) {
  sgp::random::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto p = sgp::core::achlioptas_projection(n, 100, rng);
    benchmark::DoNotOptimize(p.data().data());
  }
}
BENCHMARK(BM_AchlioptasProjection)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// --- counter-RNG / fused-publish kernels ----------------------------------

void BM_CounterBits(benchmark::State& state) {
  const sgp::random::CounterRng rng(2, 0);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bits(c++));
  }
}
BENCHMARK(BM_CounterBits);

void BM_CounterNormal(benchmark::State& state) {
  const sgp::random::CounterRng rng(2, 0);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(c++));
  }
}
BENCHMARK(BM_CounterNormal);

void BM_ProjectionTileFill(benchmark::State& state) {
  const sgp::random::CounterRng rng = sgp::core::projection_counter_rng(2);
  const auto kind = static_cast<sgp::core::ProjectionKind>(state.range(0));
  constexpr std::size_t kM = 100;
  std::vector<double> tile(512 * 64);
  for (auto _ : state) {
    sgp::core::fill_projection_tile(rng, kM, kind, 0, 512, 0, 64, tile.data());
    benchmark::DoNotOptimize(tile.data());
  }
  state.SetItemsProcessed(state.iterations() * 512 * 64);
}
BENCHMARK(BM_ProjectionTileFill)
    ->Arg(static_cast<int>(sgp::core::ProjectionKind::kGaussian))
    ->Arg(static_cast<int>(sgp::core::ProjectionKind::kAchlioptas));

void BM_FusedSpMM(benchmark::State& state) {
  const auto a = bench_graph().adjacency_matrix();
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const sgp::random::CounterRng rng = sgp::core::projection_counter_rng(2);
  for (auto _ : state) {
    auto y = a.multiply_generated(
        m, [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1,
               double* out) {
          sgp::core::fill_projection_tile(
              rng, m, sgp::core::ProjectionKind::kGaussian, r0, r1, c0, c1,
              out);
        });
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_FusedSpMM)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

// --- kernel-variant axis ---------------------------------------------------
// The same tile-fill / batch-normal / fused-SpMM workloads, once per
// dispatchable kernel variant (random/kernel_variant.hpp). Variants the
// machine can't run are skipped, not failed — the BENCH_MICRO.json speedup
// meta below is what sgp_bench_check gates on.

void BM_NormalBatchKernel(benchmark::State& state) {
  const auto variant =
      static_cast<sgp::random::KernelVariant>(state.range(0));
  if (!sgp::random::kernel_supported(variant)) {
    state.SkipWithError("kernel variant not supported on this machine");
    return;
  }
  const sgp::random::CounterRng rng(2, 1);
  std::vector<double> out(4096);
  std::uint64_t base = 0;
  for (auto _ : state) {
    sgp::random::normal_batch(rng, base, out.size(), out.data(), variant);
    benchmark::DoNotOptimize(out.data());
    base += out.size();  // fresh counters each iteration, like a real publish
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_NormalBatchKernel)
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kScalar))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kGeneric))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kAvx2))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kAvx512));

void BM_ProjectionTileFillKernel(benchmark::State& state) {
  const auto variant =
      static_cast<sgp::random::KernelVariant>(state.range(0));
  if (!sgp::random::kernel_supported(variant)) {
    state.SkipWithError("kernel variant not supported on this machine");
    return;
  }
  const sgp::random::CounterRng rng = sgp::core::projection_counter_rng(2);
  constexpr std::size_t kM = 100;
  std::vector<double> tile(512 * kM);
  for (auto _ : state) {
    sgp::core::fill_projection_tile(rng, kM,
                                    sgp::core::ProjectionKind::kGaussian, 0,
                                    512, 0, kM, tile.data(), variant);
    benchmark::DoNotOptimize(tile.data());
  }
  state.SetItemsProcessed(state.iterations() * 512 * kM);
}
BENCHMARK(BM_ProjectionTileFillKernel)
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kScalar))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kGeneric))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kAvx2))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kAvx512));

void BM_FusedSpMMKernel(benchmark::State& state) {
  const auto variant =
      static_cast<sgp::random::KernelVariant>(state.range(0));
  if (!sgp::random::kernel_supported(variant)) {
    state.SkipWithError("kernel variant not supported on this machine");
    return;
  }
  const auto a = bench_graph().adjacency_matrix();
  constexpr std::size_t kM = 128;
  const sgp::random::CounterRng rng = sgp::core::projection_counter_rng(2);
  for (auto _ : state) {
    auto y = a.multiply_generated(
        kM, [&](std::size_t r0, std::size_t r1, std::size_t c0,
                std::size_t c1, double* out) {
          sgp::core::fill_projection_tile(
              rng, kM, sgp::core::ProjectionKind::kGaussian, r0, r1, c0, c1,
              out, variant);
        });
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_FusedSpMMKernel)
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kScalar))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kGeneric))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kAvx2))
    ->Arg(static_cast<int>(sgp::random::KernelVariant::kAvx512))
    ->Unit(benchmark::kMillisecond);

void BM_SvdGram(benchmark::State& state) {
  const auto a = random_dense(4000, static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto svd = sgp::linalg::svd_gram(a, 8);
    benchmark::DoNotOptimize(svd.singular_values.data());
  }
}
BENCHMARK(BM_SvdGram)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_HouseholderQr(benchmark::State& state) {
  const auto a = random_dense(2000, static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto qr = sgp::linalg::qr_decompose(a);
    benchmark::DoNotOptimize(qr.q.data().data());
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_JacobiEigen(benchmark::State& state) {
  const auto base = random_dense(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(0)), 6);
  const auto sym = base.gram();
  for (auto _ : state) {
    auto eig = sgp::linalg::jacobi_eigen(sym);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const auto pts = random_dense(static_cast<std::size_t>(state.range(0)), 8, 7);
  sgp::cluster::KMeansOptions opt;
  opt.k = 8;
  opt.restarts = 1;
  for (auto _ : state) {
    auto res = sgp::cluster::kmeans(pts, opt);
    benchmark::DoNotOptimize(res.assignments.data());
  }
}
BENCHMARK(BM_KMeans)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_KendallTau(benchmark::State& state) {
  sgp::random::Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = sgp::random::normal(rng);
    b[i] = sgp::random::normal(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sgp::ranking::kendall_tau(a, b));
  }
}
BENCHMARK(BM_KendallTau)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

// --- observability primitives ---------------------------------------------
// Each benchmark saves and restores the global gates so it composes with
// the harness state (main enables both for the BENCH_MICRO.json report).

class GateGuard {
 public:
  GateGuard(bool metrics, bool trace)
      : metrics_was_(sgp::obs::metrics_enabled()),
        trace_was_(sgp::obs::trace_enabled()) {
    sgp::obs::set_metrics_enabled(metrics);
    sgp::obs::set_trace_enabled(trace);
  }
  ~GateGuard() {
    sgp::obs::set_metrics_enabled(metrics_was_);
    sgp::obs::set_trace_enabled(trace_was_);
  }

 private:
  bool metrics_was_;
  bool trace_was_;
};

void BM_ObsCounterDisabled(benchmark::State& state) {
  const GateGuard guard(false, false);
  auto& c = sgp::obs::counter("bench.obs.counter");
  for (auto _ : state) {
    c.add();
  }
}
BENCHMARK(BM_ObsCounterDisabled);

void BM_ObsCounterEnabled(benchmark::State& state) {
  const GateGuard guard(true, false);
  auto& c = sgp::obs::counter("bench.obs.counter");
  for (auto _ : state) {
    c.add();
  }
}
BENCHMARK(BM_ObsCounterEnabled);

void BM_ObsHistogramEnabled(benchmark::State& state) {
  const GateGuard guard(true, false);
  auto& h = sgp::obs::histogram("bench.obs.histogram");
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v *= 1.0000001;  // vary the bucket a little
  }
}
BENCHMARK(BM_ObsHistogramEnabled);

void BM_ObsSpanDisabled(benchmark::State& state) {
  const GateGuard guard(false, false);
  for (auto _ : state) {
    sgp::obs::Span span("bench.obs.span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  const GateGuard guard(true, true);
  for (auto _ : state) {
    sgp::obs::Span span("bench.obs.span");
    benchmark::DoNotOptimize(&span);
  }
  // Spans are collected globally; drop the pile this loop produced so the
  // emitted BENCH_MICRO.json stays small.
  sgp::obs::clear_spans();
}
// Fixed iteration count: every enabled span is materialized in memory until
// the clear above, so don't let the auto-tuner pick millions.
BENCHMARK(BM_ObsSpanEnabled)->Iterations(100000);

// Hand-timed speedup measurement for the BENCH_MICRO.json meta (gated by
// sgp_bench_check): best-of-N wall time of the tile-fill and fused-SpMM
// workloads under the scalar kernel vs the best vector variant. Kept apart
// from the google-benchmark loops so the meta is a single number per axis
// regardless of which --benchmark_filter the run used.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

double tile_fill_seconds(sgp::random::KernelVariant variant) {
  const sgp::random::CounterRng rng = sgp::core::projection_counter_rng(2);
  constexpr std::size_t kM = 100;
  std::vector<double> tile(512 * kM);
  return best_seconds(5, [&] {
    for (int i = 0; i < 20; ++i) {
      sgp::core::fill_projection_tile(rng, kM,
                                      sgp::core::ProjectionKind::kGaussian, 0,
                                      512, 0, kM, tile.data(), variant);
      benchmark::DoNotOptimize(tile.data());
    }
  });
}

double fused_spmm_seconds(sgp::random::KernelVariant variant) {
  const auto a = bench_graph().adjacency_matrix();
  constexpr std::size_t kM = 128;
  const sgp::random::CounterRng rng = sgp::core::projection_counter_rng(2);
  return best_seconds(3, [&] {
    auto y = a.multiply_generated(
        kM, [&](std::size_t r0, std::size_t r1, std::size_t c0,
                std::size_t c1, double* out) {
          sgp::core::fill_projection_tile(
              rng, kM, sgp::core::ProjectionKind::kGaussian, r0, r1, c0, c1,
              out, variant);
        });
    benchmark::DoNotOptimize(y.data().data());
  });
}

}  // namespace

int main(int argc, char** argv) {
  sgp::bench::BenchReport report("MICRO");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    sgp::obs::ScopedTimer timer("bench.google_benchmark");
    benchmark::RunSpecifiedBenchmarks();
  }

  // Kernel-variant meta axis: which vector kernel this machine dispatches
  // to, and its measured tile-fill / fused-SpMM speedups over the scalar
  // reference. sgp_bench_check requires >= 1.5x on both whenever a vector
  // variant is available; "scalar" means no vector hardware and the
  // speedups are reported as 1.
  using sgp::random::KernelVariant;
  KernelVariant best = KernelVariant::kScalar;
  if (sgp::random::kernel_supported(KernelVariant::kAvx512)) {
    best = KernelVariant::kAvx512;
  } else if (sgp::random::kernel_supported(KernelVariant::kAvx2)) {
    best = KernelVariant::kAvx2;
  }
  double tile_speedup = 1.0;
  double fused_speedup = 1.0;
  if (best != KernelVariant::kScalar) {
    tile_speedup =
        tile_fill_seconds(KernelVariant::kScalar) / tile_fill_seconds(best);
    fused_speedup =
        fused_spmm_seconds(KernelVariant::kScalar) / fused_spmm_seconds(best);
  }
  report.meta("kernel_variant", std::string(sgp::random::to_string(best)))
      .meta("tile_fill_speedup", tile_speedup)
      .meta("fused_spmm_speedup", fused_speedup);
  std::fprintf(stderr,
               "kernel_variant=%s tile_fill_speedup=%.2f "
               "fused_spmm_speedup=%.2f\n",
               std::string(sgp::random::to_string(best)).c_str(), tile_speedup,
               fused_speedup);

  benchmark::Shutdown();
  return 0;
}
