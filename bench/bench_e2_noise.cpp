// E2 (paper Fig. "noise is small"): the Gaussian noise σ required for
// (ε, δ)-DP under random projection, across ε, δ and projection dimension m.
//
// Validates the abstract's second theoretical claim: the projected-row
// sensitivity is ≈ 1 (independent of graph size n), so σ is a small
// constant. The last column shows the total noise energy a *dense* release
// would need at the same budget — larger by the factor n/m in cells alone.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/theory.hpp"
#include "dp/mechanisms.hpp"

int main() {
  sgp::bench::BenchReport report("E2");
  report.meta("m_max", static_cast<std::uint64_t>(200))
      .meta("epsilon_max", 10.0)
      .meta("delta_min", 1e-6);
  sgp::bench::banner(
      "E2: calibrated noise vs privacy budget",
      "sigma per entry of the published n x m matrix; sensitivity -> 1 as m "
      "grows (independent of n).");

  {
    sgp::obs::ScopedTimer timer("bench.sigma_table");
    sgp::util::TextTable table({"epsilon", "delta", "m", "sensitivity",
                                "sigma_analytic", "sigma_classic"});
    for (double delta : {1e-4, 1e-5, 1e-6}) {
      for (double epsilon : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        for (std::size_t m : {50, 100, 200}) {
          const sgp::dp::PrivacyParams params{epsilon, delta};
          const auto analytic = sgp::core::calibrate_noise(m, params, true);
          const auto classic = sgp::core::calibrate_noise(m, params, false);
          table.new_row()
              .add(epsilon, 2)
              .add(delta, 6)
              .add(m)
              .add(analytic.sensitivity, 4)
              .add(analytic.sigma, 3)
              .add(classic.sigma, 3);
        }
      }
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  {
    sgp::obs::ScopedTimer timer("bench.noise_energy");
    std::printf(
        "Noise energy comparison at eps=1, delta=1e-6 (Frobenius norm of the "
        "added noise):\n");
    sgp::util::TextTable table(
        {"n", "rp_cells(m=100)", "rp_noise_frob", "dense_cells",
         "dense_noise_frob", "dense/rp"});
    const sgp::dp::PrivacyParams params{1.0, 1e-6};
    const std::size_t m = 100;
    const auto cal = sgp::core::calibrate_noise(m, params);
    const double dense_sigma = sgp::dp::analytic_gaussian_sigma(
        sgp::core::dense_row_sensitivity(), params);
    for (std::size_t n : {4000, 40000, 400000, 4000000}) {
      const double nd = static_cast<double>(n);
      const double md = static_cast<double>(m);
      const double rp_frob = cal.sigma * std::sqrt(nd * md);
      const double dense_frob = dense_sigma * nd;
      table.new_row()
          .add(n)
          .add(static_cast<std::size_t>(nd * md))
          .add(rp_frob, 1)
          .add(static_cast<std::size_t>(nd * nd))
          .add(dense_frob, 1)
          .add(dense_frob / rp_frob, 1);
    }
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
