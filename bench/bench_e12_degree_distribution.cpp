// E12 (extension): degree-distribution fidelity across publishers.
//
// Degree distributions are the most commonly reported OSN statistic. We
// compare three DP routes at the same ε:
//   (a) row norms of the projected release (free post-processing),
//   (b) the Hay-style DP degree sequence (isotonic-cleaned Laplace; the
//       budget buys *only* degrees),
//   (c) the randomized-response graph's degrees.
// Metric: total-variation distance between the released degree histogram
// (bins of 10) and the truth. Expected shape: the dedicated sequence (b)
// wins on its own statistic; the projected release (a) is competitive while
// also carrying the spectral structure; (c) is poor until large ε because
// flip noise inflates every degree.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/baselines.hpp"
#include "core/publisher.hpp"
#include "core/reconstruction.hpp"
#include "graph/metrics.hpp"

namespace {

constexpr std::uint64_t kSeed = 61;
constexpr double kBinWidth = 10.0;
constexpr std::size_t kBins = 40;

std::vector<double> normalized_hist_from_degrees(
    const std::vector<double>& degrees) {
  std::vector<double> hist(kBins, 0.0);
  for (double d : degrees) {
    const double clamped = std::max(d, 0.0);
    const auto bin = std::min<std::size_t>(
        kBins - 1, static_cast<std::size_t>(clamped / kBinWidth));
    hist[bin] += 1.0;
  }
  for (double& v : hist) v /= static_cast<double>(degrees.size());
  return hist;
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double tv = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) tv += std::fabs(a[i] - b[i]);
  return 0.5 * tv;
}

}  // namespace

int main() {
  sgp::bench::banner(
      "E12: degree-distribution fidelity (total variation, lower is better)",
      "facebook-sim, histogram bins of 10. rp = release row norms; hay = DP "
      "degree sequence (Laplace + isotonic); flip = randomized response.");

  const auto dataset = sgp::graph::facebook_sim();
  const auto& g = dataset.planted.graph;
  sgp::bench::BenchReport report("E12");
  report.meta("dataset", dataset.name)
      .meta("nodes", static_cast<std::uint64_t>(g.num_nodes()))
      .meta("m", static_cast<std::uint64_t>(100))
      .meta("delta", 1e-6)
      .meta("seed", static_cast<std::uint64_t>(kSeed));

  std::vector<double> truth_degrees(g.num_nodes());
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    truth_degrees[u] = static_cast<double>(g.degree(u));
  }
  const auto truth_hist = normalized_hist_from_degrees(truth_degrees);

  sgp::util::TextTable table({"epsilon", "tv_rp", "tv_hay", "tv_edgeflip"});
  for (double eps : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    sgp::obs::ScopedTimer timer("bench.sweep");
    timer.attr("epsilon", eps);
    // (a) projected release row norms.
    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = 100;
    opt.params = {eps, 1e-6};
    opt.seed = kSeed;
    const auto pub = sgp::core::RandomProjectionPublisher(opt).publish(g);
    const auto rp_hist =
        normalized_hist_from_degrees(sgp::core::degree_scores(pub));

    // (b) dedicated DP degree sequence.
    const sgp::core::DegreeSequencePublisher hay(eps, kSeed);
    const auto hay_hist =
        normalized_hist_from_degrees(hay.publish(g).noisy_sorted_degrees);

    // (c) randomized response graph.
    const sgp::core::EdgeFlipPublisher flip(eps, kSeed);
    const auto flipped = flip.publish(g);
    std::vector<double> flip_degrees(flipped.num_nodes());
    for (std::size_t u = 0; u < flipped.num_nodes(); ++u) {
      flip_degrees[u] = static_cast<double>(flipped.degree(u));
    }
    const auto flip_hist = normalized_hist_from_degrees(flip_degrees);

    table.new_row()
        .add(eps, 1)
        .add(total_variation(truth_hist, rp_hist), 3)
        .add(total_variation(truth_hist, hay_hist), 3)
        .add(total_variation(truth_hist, flip_hist), 3);
    std::fprintf(stderr, "[e12] eps=%.1f done in %.1fs\n", eps,
                 timer.stop());
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
