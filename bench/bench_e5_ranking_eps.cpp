// E5 (paper Fig. "ranking utility vs epsilon"): fraction of the true top-1%
// most-central nodes recovered from the published graph, across budgets.
//
// Two centrality notions: degree (row-norm estimator from the release) and
// eigenvector centrality (top left singular vector of the release). LNPP's
// noisy top eigenvector is the baseline. Expected shape: RP curves rise with
// ε toward the projection-limited ceiling; LNPP stays near the random-guess
// floor.
#include <cstdio>

#include "common.hpp"
#include "core/baselines.hpp"
#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"

namespace {

constexpr std::uint64_t kSeed = 29;
constexpr std::size_t kProjectionDim = 100;

struct RankingDataset {
  std::string name;
  sgp::graph::Graph graph;
};

// Ranking utility lives in the degree tail, so the stand-ins for this
// experiment match the *degree profile* of the SNAP graphs (preferential
// attachment, average degree ≈ Facebook's 44 / Pokec's 27) rather than the
// community structure the clustering stand-ins are tuned for. See DESIGN.md
// "Substitutions".
std::vector<RankingDataset> ranking_datasets() {
  std::vector<RankingDataset> out;
  {
    sgp::random::Rng rng(kSeed);
    out.push_back({"facebook-deg-sim (BA n=4000, avg deg ~44)",
                   sgp::graph::barabasi_albert(4000, 22, rng)});
  }
  {
    sgp::random::Rng rng(kSeed + 1);
    out.push_back({"pokec-deg-sim (BA n=40000, avg deg ~28)",
                   sgp::graph::barabasi_albert(40000, 14, rng)});
  }
  return out;
}

}  // namespace

int main() {
  sgp::bench::BenchReport report("E5");
  report.meta("m", static_cast<std::uint64_t>(kProjectionDim))
      .meta("delta", 1e-6)
      .meta("seed", static_cast<std::uint64_t>(kSeed));
  sgp::bench::banner(
      "E5: ranking utility (top-1% overlap) vs epsilon",
      "Overlap of the top-1% node shortlist computed from the release vs the "
      "original graph. random-guess floor = 0.01.");

  for (const auto& dataset : ranking_datasets()) {
    const auto& g = dataset.graph;
    const std::size_t top_k = std::max<std::size_t>(1, g.num_nodes() / 100);
    sgp::obs::ScopedTimer truth_timer("bench.ground_truth");
    truth_timer.attr("dataset", dataset.name);
    const auto true_degree = sgp::ranking::degree_centrality(g);
    const auto true_eigen = sgp::ranking::eigenvector_centrality(g);
    std::fprintf(stderr, "[e5] %s ground truth in %.1fs\n",
                 dataset.name.c_str(), truth_timer.stop());
    std::printf("dataset %s (n=%zu), top-k=%zu\n", dataset.name.c_str(),
                g.num_nodes(), top_k);

    sgp::util::TextTable table({"epsilon", "deg_overlap_rp", "eig_overlap_rp",
                                "eig_overlap_lnpp", "deg_kendall_rp"});
    for (double epsilon : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      sgp::obs::ScopedTimer timer("bench.sweep");
      timer.attr("dataset", dataset.name).attr("epsilon", epsilon);
      sgp::core::RandomProjectionPublisher::Options opt;
      opt.projection_dim = kProjectionDim;
      opt.params = {epsilon, 1e-6};
      opt.seed = kSeed;
      const auto pub = sgp::core::RandomProjectionPublisher(opt).publish(g);
      const auto est_degree = sgp::core::degree_scores(pub);
      const auto est_eigen = sgp::core::centrality_scores(pub);

      sgp::core::LnppPublisher::Options lopt;
      lopt.k = 2;  // ranking needs the dominant eigenvector only
      lopt.epsilon = epsilon;
      lopt.seed = kSeed;
      const auto lnpp = sgp::core::LnppPublisher(lopt).publish(g);
      const auto lnpp_eigen =
          sgp::ranking::centrality_from_embedding(lnpp.eigenvectors);

      table.new_row()
          .add(epsilon, 1)
          .add(sgp::ranking::top_k_overlap(true_degree, est_degree, top_k), 3)
          .add(sgp::ranking::top_k_overlap(true_eigen, est_eigen, top_k), 3)
          .add(sgp::ranking::top_k_overlap(true_eigen, lnpp_eigen, top_k), 3)
          .add(sgp::ranking::kendall_tau(true_degree, est_degree), 3);
      std::fprintf(stderr, "[e5] %s eps=%.1f done in %.1fs\n",
                   dataset.name.c_str(), epsilon, timer.stop());
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
