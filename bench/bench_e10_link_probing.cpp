// E10 (extension): link-probing utility and the privacy-utility tension.
//
// With the projection regenerable from public metadata, an analyst can score
// individual node pairs (edge_score ≈ a_uv ± cross-talk). This experiment
// measures the AUC of that probe as a function of ε — it is BOTH a utility
// curve (link prediction from the release) and an empirical privacy check:
// at small ε the AUC must approach 0.5 (individual edges are hidden, which
// is exactly what edge-level DP promises) even while E3 shows aggregate
// community structure surviving.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/reconstruction.hpp"
#include "graph/generators.hpp"
#include "ranking/metrics.hpp"

namespace {

constexpr std::uint64_t kSeed = 53;

/// AUC of edge scores: probability that a random true edge outscores a
/// random non-edge.
double edge_auc(const sgp::graph::Graph& g,
                const sgp::core::PublishedGraph& pub,
                const sgp::linalg::DenseMatrix& projection) {
  sgp::random::Rng rng(kSeed + 1);
  const std::size_t n = g.num_nodes();
  std::vector<double> edge_scores_list, non_edge_scores;
  const auto edges = g.edges();
  for (int i = 0; i < 2000; ++i) {
    const auto& e = edges[rng.next_below(edges.size())];
    edge_scores_list.push_back(
        sgp::core::edge_score(pub, projection, e.u, e.v));
  }
  while (non_edge_scores.size() < 2000) {
    const auto u = rng.next_below(n);
    const auto v = rng.next_below(n);
    if (u == v || g.has_edge(u, v)) continue;
    non_edge_scores.push_back(sgp::core::edge_score(pub, projection, u, v));
  }
  // AUC by counting score pairs (ties count half).
  std::sort(non_edge_scores.begin(), non_edge_scores.end());
  double auc = 0.0;
  for (double s : edge_scores_list) {
    const auto lo = std::lower_bound(non_edge_scores.begin(),
                                     non_edge_scores.end(), s);
    const auto hi =
        std::upper_bound(non_edge_scores.begin(), non_edge_scores.end(), s);
    auc += static_cast<double>(lo - non_edge_scores.begin()) +
           0.5 * static_cast<double>(hi - lo);
  }
  return auc / (static_cast<double>(edge_scores_list.size()) *
                static_cast<double>(non_edge_scores.size()));
}

}  // namespace

int main() {
  sgp::bench::banner(
      "E10: link-probing AUC vs epsilon (extension)",
      "AUC 0.5 = individual edges fully hidden (the DP promise at small "
      "eps); AUC -> 1 = edges recoverable. Aggregate utility (E3/E5) arrives "
      "at much smaller eps than per-edge recovery.");

  sgp::random::Rng rng(kSeed);
  const auto g = sgp::graph::erdos_renyi(2000, 0.02, rng);
  sgp::bench::BenchReport report("E10");
  report.meta("nodes", static_cast<std::uint64_t>(g.num_nodes()))
      .meta("edges", static_cast<std::uint64_t>(g.num_edges()))
      .meta("m", static_cast<std::uint64_t>(128))
      .meta("delta", 1e-6)
      .meta("seed", static_cast<std::uint64_t>(kSeed));
  std::printf("graph: n=%zu, |E|=%zu, m=128\n\n", g.num_nodes(),
              g.num_edges());

  sgp::util::TextTable table({"epsilon", "sigma", "link_auc"});
  for (double eps : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    sgp::obs::ScopedTimer timer("bench.sweep");
    timer.attr("epsilon", eps);
    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = 128;
    opt.params = {eps, 1e-6};
    opt.seed = kSeed;
    const auto pub = sgp::core::RandomProjectionPublisher(opt).publish(g);
    const auto projection = sgp::core::regenerate_projection(pub, kSeed);
    table.new_row()
        .add(eps, 1)
        .add(pub.calibration.sigma, 3)
        .add(edge_auc(g, pub, projection), 3);
    std::fprintf(stderr, "[e10] eps=%.1f done\n", eps);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
