// E7 (paper Fig. "storage and computational efficiency"): publish time and
// release size vs graph size, for the random-projection mechanism vs the
// dense-matrix baselines.
//
// Expected shape: RP time grows ~linearly in |E| and its release is n·m
// doubles; the dense Gaussian release grows as n² in both time and bytes and
// falls off the chart past a few thousand nodes (the abstract's
// "computationally impractical" claim); LNPP pays an eigensolve per release.
//
// Timing uses the google-benchmark harness (one fixed iteration per size —
// these are multi-second macro benchmarks); the storage table is printed
// after the timings.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "common.hpp"
#include "core/baselines.hpp"
#include "core/projection.hpp"
#include "core/publisher.hpp"
#include "core/theory.hpp"
#include "dp/defaults.hpp"
#include "dp/mechanisms.hpp"
#include "random/kernel_variant.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr std::size_t kProjectionDim = 100;
constexpr std::size_t kCommunitySize = 500;

const sgp::graph::Graph& cached_graph(std::size_t n) {
  static std::map<std::size_t, sgp::graph::Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    sgp::random::Rng rng(41);
    auto planted = sgp::graph::stochastic_block_model(
        std::vector<std::size_t>(n / kCommunitySize, kCommunitySize), 0.2,
        2000.0 / (static_cast<double>(n) * static_cast<double>(n)), rng);
    it = cache.emplace(n, std::move(planted.graph)).first;
  }
  return it->second;
}

void BM_RandomProjectionPublish(benchmark::State& state) {
  const auto& g = cached_graph(static_cast<std::size_t>(state.range(0)));
  sgp::core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = kProjectionDim;
  opt.params = {1.0, 1e-6};
  opt.seed = 43;
  const sgp::core::RandomProjectionPublisher publisher(opt);
  for (auto _ : state) {
    auto pub = publisher.publish(g);
    benchmark::DoNotOptimize(pub.data.data().data());
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
}

// The pre-counter-RNG publish pipeline, kept here as the baseline the fused
// kernel (BM_RandomProjectionPublish above) is measured against: materialize
// the full n×m P with the sequential Rng, SpMM, then perturb serially.
void BM_LegacyMaterializedPublish(benchmark::State& state) {
  const auto& g = cached_graph(static_cast<std::size_t>(state.range(0)));
  const std::size_t m = kProjectionDim;
  for (auto _ : state) {
    sgp::random::Rng rng(43);
    const sgp::linalg::DenseMatrix p =
        sgp::core::make_projection(g.num_nodes(), m,
                                   sgp::core::ProjectionKind::kGaussian, rng);
    sgp::linalg::DenseMatrix y = g.adjacency_matrix().multiply_dense(p);
    const auto calibration = sgp::core::calibrate_noise(m, {1.0, 1e-6});
    sgp::random::Rng noise_rng = rng.split(1);
    sgp::dp::add_gaussian_noise(y.data(), calibration.sigma, noise_rng);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
}

// Thread-scaling of the fused Y = A·P kernel alone: same graph, explicit
// pools of 1/2/4/8 workers (the host core count does not gate correctness —
// results are bit-identical per thread count; only wall-clock moves).
void BM_FusedProjectThreads(benchmark::State& state) {
  const auto& g = cached_graph(10000);
  const sgp::linalg::CsrMatrix a = g.adjacency_matrix();
  const std::size_t m = kProjectionDim;
  sgp::util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const sgp::random::CounterRng p_rng = sgp::core::projection_counter_rng(43);
  sgp::linalg::GeneratedTileOptions opts;
  opts.pool = &pool;
  for (auto _ : state) {
    sgp::linalg::DenseMatrix y = a.multiply_generated(
        m,
        [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1,
            double* out) {
          sgp::core::fill_projection_tile(
              p_rng, m, sgp::core::ProjectionKind::kGaussian, r0, r1, c0, c1,
              out);
        },
        opts);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.counters["threads"] = static_cast<double>(pool.size());
}

void BM_DenseGaussianPublish(benchmark::State& state) {
  const auto& g = cached_graph(static_cast<std::size_t>(state.range(0)));
  const sgp::core::DenseGaussianPublisher publisher({1.0, 1e-6}, 43);
  for (auto _ : state) {
    auto pub = publisher.publish(g);
    benchmark::DoNotOptimize(pub.data.data().data());
  }
}

void BM_LnppPublish(benchmark::State& state) {
  const auto& g = cached_graph(static_cast<std::size_t>(state.range(0)));
  sgp::core::LnppPublisher::Options opt;
  opt.k = 8;
  opt.epsilon = sgp::dp::kDefaultEpsilon;
  opt.seed = 43;
  const sgp::core::LnppPublisher publisher(opt);
  for (auto _ : state) {
    auto rel = publisher.publish(g);
    benchmark::DoNotOptimize(rel.eigenvalues.data());
  }
}

void BM_EdgeFlipPublish(benchmark::State& state) {
  const auto& g = cached_graph(static_cast<std::size_t>(state.range(0)));
  const sgp::core::EdgeFlipPublisher publisher(1.0, 43);
  for (auto _ : state) {
    auto flipped = publisher.publish(g);
    benchmark::DoNotOptimize(flipped.num_edges());
  }
}

BENCHMARK(BM_RandomProjectionPublish)
    ->Arg(1000)->Arg(2000)->Arg(5000)->Arg(10000)->Arg(20000)->Arg(50000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_LegacyMaterializedPublish)
    ->Arg(1000)->Arg(2000)->Arg(5000)->Arg(10000)->Arg(20000)->Arg(50000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_FusedProjectThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_DenseGaussianPublish)
    ->Arg(1000)->Arg(2000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_LnppPublish)
    ->Arg(1000)->Arg(2000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_EdgeFlipPublish)
    ->Arg(1000)->Arg(2000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void print_storage_table() {
  std::printf("\nRelease size (MiB) by method and graph size:\n");
  sgp::util::TextTable table(
      {"n", "rp_m100", "dense_gaussian", "lnpp_k8", "edge_flip_eps1"});
  for (std::size_t n : {1000, 5000, 10000, 50000, 1000000}) {
    const double nd = static_cast<double>(n);
    const double mib = 8.0 / (1 << 20);
    // Edge-flip at eps=1 keeps ~n²/2·(1-keep) spurious pairs; stored as two
    // 32-bit endpoints each.
    const double flip = 1.0 - std::exp(1.0) / (1.0 + std::exp(1.0));
    table.new_row()
        .add(n)
        .add(nd * 100.0 * mib, 1)
        .add(nd * nd * mib, 1)
        .add((8.0 + nd * 8.0) * mib, 2)
        .add(nd * nd / 2.0 * flip * 8.0 / (1 << 20), 1);
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  sgp::bench::BenchReport report("E7");
  report.meta("m", static_cast<std::uint64_t>(kProjectionDim))
      .meta("epsilon", 1.0)
      .meta("delta", 1e-6)
      .meta("max_nodes", static_cast<std::uint64_t>(50000))
      .meta("projection_rng",
            sgp::core::to_string(sgp::core::ProjectionRngKind::kCounterV1))
      // Which normal-mapping kernel the timings below were generated with
      // (the resolved default: scalar unless SGP_FORCE_KERNEL overrides).
      .meta("kernel_variant",
            std::string(sgp::random::to_string(
                sgp::random::resolve_normal_kernel(
                    sgp::random::KernelVariant::kAuto))))
      .meta("threads",
            static_cast<std::uint64_t>(sgp::util::global_pool().size()));
  sgp::bench::banner(
      "E7: publishing cost vs graph size",
      "Wall-clock publish time (google-benchmark, 1 iteration per size) and "
      "release bytes. RP scales with |E|*m; dense baselines scale with n^2.");
  benchmark::Initialize(&argc, argv);
  {
    sgp::obs::ScopedTimer timer("bench.google_benchmark");
    benchmark::RunSpecifiedBenchmarks();
  }
  {
    sgp::obs::ScopedTimer timer("bench.storage_table");
    print_storage_table();
  }
  return 0;
}
