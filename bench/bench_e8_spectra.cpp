// E8 (paper Fig. "projection preserves spectral structure" / JL validation):
// how well the top-k spectrum of the adjacency matrix survives projection
// (and projection + noise), as a function of projection dimension m, for
// Gaussian vs Achlioptas projections (the DESIGN.md ablation).
//
// Metrics: mean relative error of the top-k singular values of the release
// vs the top-k |eigenvalues| of A, and the mean cosine of principal angles
// between the released left singular subspace and the true eigenspace.
//
// Expected shape: both errors shrink like ~1/sqrt(m); adding calibrated
// noise at eps=8 costs a near-constant offset; Achlioptas tracks Gaussian.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/publisher.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/svd.hpp"

namespace {

constexpr std::size_t kTopK = 8;
constexpr std::uint64_t kSeed = 37;

struct SpectrumStats {
  double value_rel_error = 0.0;
  double subspace_cosine = 0.0;
};

/// Compares the top-k SVD of the published matrix against the true top-k
/// eigenpairs (by magnitude) of A.
SpectrumStats compare(const sgp::core::PublishedGraph& pub,
                      const std::vector<double>& true_values,
                      const sgp::linalg::DenseMatrix& true_vectors) {
  const auto svd = sgp::linalg::svd_gram(pub.data, kTopK);
  SpectrumStats stats;
  for (std::size_t i = 0; i < kTopK; ++i) {
    stats.value_rel_error +=
        std::fabs(svd.singular_values[i] - std::fabs(true_values[i])) /
        std::fabs(true_values[i]);
  }
  stats.value_rel_error /= static_cast<double>(kTopK);

  // Mean cosine of principal angles = mean singular value of U_pubᵀ V_true.
  const auto overlap = svd.u.transpose_multiply(true_vectors);  // k × k
  const auto overlap_svd = sgp::linalg::svd_gram(overlap, kTopK);
  for (double s : overlap_svd.singular_values) stats.subspace_cosine += s;
  stats.subspace_cosine /= static_cast<double>(kTopK);
  return stats;
}

}  // namespace

int main() {
  sgp::bench::banner(
      "E8: spectra preservation vs projection dimension",
      "facebook-sim, top-8 spectrum. rel_err: mean |sigma_i - |lambda_i|| / "
      "|lambda_i|. cos: mean principal-angle cosine of the top-8 subspace "
      "(1 = perfectly preserved).");

  const auto dataset = sgp::graph::facebook_sim();
  const auto& g = dataset.planted.graph;
  sgp::bench::BenchReport report("E8");
  report.meta("dataset", dataset.name)
      .meta("nodes", static_cast<std::uint64_t>(g.num_nodes()))
      .meta("top_k", static_cast<std::uint64_t>(kTopK))
      .meta("epsilon_noisy", 8.0)
      .meta("delta", 1e-6)
      .meta("seed", static_cast<std::uint64_t>(kSeed));

  // Ground-truth top-k eigenpairs by magnitude (the SVD of the projected
  // matrix approximates |lambda|).
  sgp::obs::ScopedTimer timer("bench.ground_truth");
  const auto a = g.adjacency_matrix();
  sgp::linalg::SymmetricOperator op{
      g.num_nodes(), [&a](std::span<const double> x, std::span<double> y) {
        const auto r = a.multiply_vector(x);
        std::copy(r.begin(), r.end(), y.begin());
      }};
  sgp::linalg::LanczosOptions lopt;
  lopt.k = kTopK;
  lopt.seed = kSeed;
  lopt.order = sgp::linalg::EigenOrder::kDescendingMagnitude;
  const auto truth = sgp::linalg::lanczos_topk(op, lopt);
  std::fprintf(stderr, "[e8] ground-truth spectrum in %.1fs\n",
               timer.stop());
  std::printf("true |lambda| top-%zu: ", kTopK);
  for (double v : truth.values) std::printf("%.1f ", std::fabs(v));
  std::printf("\n\n");

  sgp::util::TextTable table({"m", "projection", "rel_err_noiseless",
                              "cos_noiseless", "rel_err_eps8", "cos_eps8"});
  for (std::size_t m : {25, 50, 100, 200, 400}) {
    for (auto kind : {sgp::core::ProjectionKind::kGaussian,
                      sgp::core::ProjectionKind::kAchlioptas}) {
      sgp::obs::ScopedTimer row_timer("bench.sweep");
      row_timer.attr("m", static_cast<std::uint64_t>(m))
          .attr("projection", sgp::core::to_string(kind));
      // Noiseless projection: enormous epsilon drives sigma to ~0.
      sgp::core::RandomProjectionPublisher::Options clean;
      clean.projection_dim = m;
      clean.params = {1e6, 1e-6};
      clean.projection = kind;
      clean.seed = kSeed;
      const auto pub_clean =
          sgp::core::RandomProjectionPublisher(clean).publish(g);
      const auto clean_stats = compare(pub_clean, truth.values, truth.vectors);

      sgp::core::RandomProjectionPublisher::Options noisy = clean;
      noisy.params = {8.0, 1e-6};
      const auto pub_noisy =
          sgp::core::RandomProjectionPublisher(noisy).publish(g);
      const auto noisy_stats = compare(pub_noisy, truth.values, truth.vectors);

      table.new_row()
          .add(m)
          .add(sgp::core::to_string(kind))
          .add(clean_stats.value_rel_error, 4)
          .add(clean_stats.subspace_cosine, 4)
          .add(noisy_stats.value_rel_error, 4)
          .add(noisy_stats.subspace_cosine, 4);
      std::fprintf(stderr, "[e8] m=%zu %s done in %.1fs\n", m,
                   sgp::core::to_string(kind).c_str(), row_timer.stop());
    }
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
