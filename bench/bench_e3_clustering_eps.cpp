// E3 (paper Fig. "clustering utility vs epsilon"): NMI of node clustering on
// the published graph against the planted communities, for the random-
// projection mechanism vs the prior-work baselines, across privacy budgets.
//
// Expected shape (the paper's headline utility result): RP rises to the
// non-private ceiling as ε grows; LNPP stays near zero (eigengap-driven
// noise); randomized response and the dense Gaussian release only work where
// they are computationally feasible at all (smallest dataset) and need much
// larger ε.
#include <cstdio>
#include <optional>

#include "common.hpp"
#include "core/baselines.hpp"
#include "core/publisher.hpp"

namespace {

constexpr std::size_t kProjectionDim = 100;
constexpr std::uint64_t kSeed = 17;
// Dense n×n baselines are only feasible on the smallest tier — that
// infeasibility is itself part of the reproduced claim.
constexpr std::size_t kDenseBaselineMaxNodes = 5000;

double rp_nmi(const sgp::graph::Dataset& dataset, double epsilon) {
  sgp::core::RandomProjectionPublisher::Options opt;
  opt.projection_dim =
      std::min(kProjectionDim, dataset.planted.graph.num_nodes());
  opt.params = {epsilon, 1e-6};
  opt.seed = kSeed;
  const auto pub =
      sgp::core::RandomProjectionPublisher(opt).publish(dataset.planted.graph);
  const auto res =
      sgp::core::cluster_published(pub, dataset.num_communities, kSeed);
  return sgp::cluster::normalized_mutual_information(res.assignments,
                                                     dataset.planted.labels);
}

double lnpp_nmi(const sgp::graph::Dataset& dataset, double epsilon) {
  sgp::core::LnppPublisher::Options opt;
  opt.k = dataset.num_communities;
  opt.epsilon = epsilon;
  opt.seed = kSeed;
  const auto release =
      sgp::core::LnppPublisher(opt).publish(dataset.planted.graph);
  sgp::cluster::SpectralOptions copt;
  copt.num_clusters = dataset.num_communities;
  copt.seed = kSeed;
  const auto res = sgp::cluster::cluster_embedding(release.eigenvectors, copt);
  return sgp::cluster::normalized_mutual_information(res.assignments,
                                                     dataset.planted.labels);
}

std::optional<double> edge_flip_nmi(const sgp::graph::Dataset& dataset,
                                    double epsilon) {
  if (dataset.planted.graph.num_nodes() > kDenseBaselineMaxNodes) {
    return std::nullopt;
  }
  const sgp::core::EdgeFlipPublisher publisher(epsilon, kSeed);
  const auto flipped = publisher.publish(dataset.planted.graph);
  sgp::cluster::SpectralOptions copt;
  copt.num_clusters = dataset.num_communities;
  copt.seed = kSeed;
  const auto res = sgp::cluster::spectral_cluster_graph(flipped, copt);
  return sgp::cluster::normalized_mutual_information(res.assignments,
                                                     dataset.planted.labels);
}

std::optional<double> dense_gaussian_nmi(const sgp::graph::Dataset& dataset,
                                         double epsilon) {
  if (dataset.planted.graph.num_nodes() > kDenseBaselineMaxNodes) {
    return std::nullopt;
  }
  const sgp::core::DenseGaussianPublisher publisher({epsilon, 1e-6}, kSeed);
  const auto pub = publisher.publish(dataset.planted.graph);
  const auto emb =
      sgp::core::dense_spectral_embedding(pub, dataset.num_communities, kSeed);
  sgp::cluster::SpectralOptions copt;
  copt.num_clusters = dataset.num_communities;
  copt.seed = kSeed;
  const auto res = sgp::cluster::cluster_embedding(emb, copt);
  return sgp::cluster::normalized_mutual_information(res.assignments,
                                                     dataset.planted.labels);
}

void add_optional(sgp::util::TextTable& table, std::optional<double> value) {
  if (value) {
    table.add(*value, 3);
  } else {
    table.add("n/a");
  }
}

}  // namespace

int main() {
  sgp::bench::BenchReport report("E3");
  report.meta("m", static_cast<std::uint64_t>(kProjectionDim))
      .meta("delta", 1e-6)
      .meta("seed", static_cast<std::uint64_t>(kSeed));
  sgp::bench::banner(
      "E3: clustering utility (NMI) vs epsilon",
      "Higher is better; 'reference' is the non-private spectral pipeline. "
      "n/a = baseline infeasible at that scale (n^2 release).");

  for (const auto& dataset : sgp::graph::standard_datasets()) {
    const auto reference = sgp::bench::non_private_reference(dataset, kSeed);
    std::printf("dataset %s (n=%zu, |E|=%zu, k=%zu): non-private NMI = %.3f\n",
                dataset.name.c_str(), dataset.planted.graph.num_nodes(),
                dataset.planted.graph.num_edges(), dataset.num_communities,
                reference.nmi_vs_truth);

    sgp::util::TextTable table(
        {"epsilon", "nmi_rp", "nmi_lnpp", "nmi_edgeflip", "nmi_densegauss"});
    const bool small = dataset.planted.graph.num_nodes() <= 5000;
    const std::vector<double> epsilons =
        small ? std::vector<double>{1.0, 2.0, 4.0, 8.0, 16.0}
              : std::vector<double>{2.0, 4.0, 8.0, 16.0};
    for (double epsilon : epsilons) {
      sgp::obs::ScopedTimer timer("bench.sweep");
      timer.attr("dataset", dataset.name).attr("epsilon", epsilon);
      table.new_row().add(epsilon, 1).add(rp_nmi(dataset, epsilon), 3);
      table.add(lnpp_nmi(dataset, epsilon), 3);
      add_optional(table, edge_flip_nmi(dataset, epsilon));
      add_optional(table, dense_gaussian_nmi(dataset, epsilon));
      std::fprintf(stderr, "[e3] %s eps=%.1f done in %.1fs\n",
                   dataset.name.c_str(), epsilon, timer.stop());
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
