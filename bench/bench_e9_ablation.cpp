// E9 (DESIGN.md ablations): end-to-end effect of the calibration choices on
// clustering utility, at fixed budget.
//
//  (a) analytic vs classic Gaussian calibration — the analytic mechanism
//      buys a smaller σ at the same (ε, δ), which shows up directly as NMI;
//  (b) δ split between the sensitivity-bound failure and the Gaussian
//      mechanism — the paper's proof needs both, and the split is a free
//      parameter; the curve is flat near 0.5 (the default) and degrades at
//      the extremes;
//  (c) Gaussian vs Achlioptas projection under noise (E8 covers the
//      noiseless spectra; this is the task-level check).
#include <cstdio>

#include "common.hpp"
#include "core/publisher.hpp"

namespace {

constexpr std::uint64_t kSeed = 47;

double nmi_for(const sgp::graph::Dataset& dataset,
               const sgp::core::RandomProjectionPublisher::Options& opt) {
  const auto pub =
      sgp::core::RandomProjectionPublisher(opt).publish(dataset.planted.graph);
  const auto res =
      sgp::core::cluster_published(pub, dataset.num_communities, kSeed);
  return sgp::cluster::normalized_mutual_information(res.assignments,
                                                     dataset.planted.labels);
}

}  // namespace

int main() {
  sgp::bench::banner(
      "E9: calibration ablations (clustering NMI on facebook-sim)",
      "Effect of the analytic mechanism, the delta split, and the "
      "projection family at fixed (eps, delta).");

  const auto dataset = sgp::graph::facebook_sim();
  sgp::bench::BenchReport report("E9");
  report.meta("dataset", dataset.name)
      .meta("m", static_cast<std::uint64_t>(100))
      .meta("delta", 1e-6)
      .meta("seed", static_cast<std::uint64_t>(kSeed));

  {
    sgp::obs::ScopedTimer timer("bench.calibration");
    std::printf("(a) analytic vs classic Gaussian calibration, m=100:\n");
    sgp::util::TextTable table(
        {"epsilon", "sigma_analytic", "nmi_analytic", "sigma_classic",
         "nmi_classic"});
    for (double eps : {3.0, 4.0, 6.0, 8.0}) {
      sgp::core::RandomProjectionPublisher::Options opt;
      opt.projection_dim = 100;
      opt.params = {eps, 1e-6};
      opt.seed = kSeed;
      opt.analytic_calibration = true;
      const auto cal_a = sgp::core::calibrate_noise(100, opt.params, true);
      const double nmi_a = nmi_for(dataset, opt);
      opt.analytic_calibration = false;
      const auto cal_c = sgp::core::calibrate_noise(100, opt.params, false);
      const double nmi_c = nmi_for(dataset, opt);
      table.new_row()
          .add(eps, 1)
          .add(cal_a.sigma, 3)
          .add(nmi_a, 3)
          .add(cal_c.sigma, 3)
          .add(nmi_c, 3);
      std::fprintf(stderr, "[e9a] eps=%.1f done\n", eps);
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  {
    sgp::obs::ScopedTimer timer("bench.delta_split");
    std::printf("(b) delta split (fraction spent on the sensitivity bound), "
                "eps=6, m=100:\n");
    sgp::util::TextTable table({"delta_split", "sensitivity", "sigma", "nmi"});
    for (double split : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
      sgp::core::RandomProjectionPublisher::Options opt;
      opt.projection_dim = 100;
      opt.params = {6.0, 1e-6};
      opt.seed = kSeed;
      opt.delta_split = split;
      const auto cal =
          sgp::core::calibrate_noise(100, opt.params, true, split);
      table.new_row()
          .add(split, 2)
          .add(cal.sensitivity, 4)
          .add(cal.sigma, 4)
          .add(nmi_for(dataset, opt), 3);
      std::fprintf(stderr, "[e9b] split=%.2f done\n", split);
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  {
    sgp::obs::ScopedTimer timer("bench.projection_family");
    std::printf("(c) projection family under noise, m=100:\n");
    sgp::util::TextTable table({"epsilon", "nmi_gaussian", "nmi_achlioptas"});
    for (double eps : {4.0, 6.0, 8.0}) {
      sgp::core::RandomProjectionPublisher::Options opt;
      opt.projection_dim = 100;
      opt.params = {eps, 1e-6};
      opt.seed = kSeed;
      opt.projection = sgp::core::ProjectionKind::kGaussian;
      const double g_nmi = nmi_for(dataset, opt);
      opt.projection = sgp::core::ProjectionKind::kAchlioptas;
      const double a_nmi = nmi_for(dataset, opt);
      table.new_row().add(eps, 1).add(g_nmi, 3).add(a_nmi, 3);
      std::fprintf(stderr, "[e9c] eps=%.1f done\n", eps);
    }
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
