// Shared plumbing for the experiment harnesses (bench_e1 … bench_e8).
//
// Each bench binary regenerates one table/figure of the evaluation: it
// prints a header naming the experiment, then an aligned table whose rows
// are the series the paper reports. Progress/status goes to stderr so stdout
// stays machine-readable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "graph/datasets.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sgp::bench {

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

/// Spectral clustering of the original (non-private) graph — the reference
/// that published-graph clustering is scored against, plus its NMI vs the
/// planted labels (the ceiling any private method can reach).
struct Reference {
  std::vector<std::uint32_t> assignments;
  double nmi_vs_truth = 0.0;
};

inline Reference non_private_reference(const graph::Dataset& dataset,
                                       std::uint64_t seed = 7) {
  cluster::SpectralOptions opt;
  opt.num_clusters = dataset.num_communities;
  opt.seed = seed;
  util::WallTimer timer;
  const auto result =
      cluster::spectral_cluster_graph(dataset.planted.graph, opt);
  util::LogStream(util::LogLevel::kInfo)
      << dataset.name << ": non-private spectral reference in "
      << timer.seconds() << "s";
  Reference ref;
  ref.assignments = result.assignments;
  ref.nmi_vs_truth = cluster::normalized_mutual_information(
      result.assignments, dataset.planted.labels);
  return ref;
}

}  // namespace sgp::bench
