// Shared plumbing for the experiment harnesses (bench_e1 … bench_e8).
//
// Each bench binary regenerates one table/figure of the evaluation: it
// prints a header naming the experiment, then an aligned table whose rows
// are the series the paper reports. Progress/status goes to stderr so stdout
// stays machine-readable.
//
// In addition every bench emits BENCH_<id>.json (schema "sgp-obs-report v1",
// see obs/report.hpp): declare a BenchReport at the top of main and the
// destructor writes phase timings, counter snapshots, and metadata to the
// working directory — or $SGP_BENCH_JSON_DIR when set. Validate with
// tools/sgp_bench_check.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "graph/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sgp::bench {

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

/// RAII harness state for one experiment: enables metrics + tracing on
/// construction and writes BENCH_<id>.json on destruction (or on an explicit
/// emit()), so the report lands even if the bench exits through an early
/// return. Metadata added via meta() ends up in the report's "meta" object.
class BenchReport {
 public:
  explicit BenchReport(std::string id) : id_(std::move(id)), report_(id_) {
    obs::set_metrics_enabled(true);
    obs::set_trace_enabled(true);
    // Resource sampling (proc.* gauges) so every BENCH_*.json carries RSS
    // and CPU readings alongside the phase timings.
    sampler_.start();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { emit(); }

  template <typename T>
  BenchReport& meta(std::string_view key, const T& value) {
    report_.meta(key, value);
    return *this;
  }

  /// Destination: $SGP_BENCH_JSON_DIR/BENCH_<id>.json, or ./BENCH_<id>.json.
  std::string path() const {
    std::string dir;
    if (const char* env = std::getenv("SGP_BENCH_JSON_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    return dir + "BENCH_" + id_ + ".json";
  }

  /// Writes the report now (idempotent; later calls are no-ops). A write
  /// failure warns on stderr instead of throwing — the bench's tables are
  /// the primary output and must not be lost to a read-only directory.
  void emit() {
    if (emitted_) return;
    emitted_ = true;
    sampler_.stop();  // final proc.* reading before the snapshot is written
    const std::string out = path();
    try {
      report_.write_file(out);
      std::fprintf(stderr, "[bench] wrote %s\n", out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] warning: %s\n", e.what());
    }
  }

 private:
  std::string id_;
  obs::Report report_;
  bool emitted_ = false;
  obs::ResourceSampler sampler_;
};

/// Spectral clustering of the original (non-private) graph — the reference
/// that published-graph clustering is scored against, plus its NMI vs the
/// planted labels (the ceiling any private method can reach).
struct Reference {
  std::vector<std::uint32_t> assignments;
  double nmi_vs_truth = 0.0;
};

inline Reference non_private_reference(const graph::Dataset& dataset,
                                       std::uint64_t seed = 7) {
  cluster::SpectralOptions opt;
  opt.num_clusters = dataset.num_communities;
  opt.seed = seed;
  obs::ScopedTimer timer("bench.reference");
  timer.attr("dataset", dataset.name);
  const auto result =
      cluster::spectral_cluster_graph(dataset.planted.graph, opt);
  util::LogStream(util::LogLevel::kInfo)
      .with("dataset", dataset.name)
      .with("seconds", timer.stop())
      << "non-private spectral reference";
  Reference ref;
  ref.assignments = result.assignments;
  ref.nmi_vs_truth = cluster::normalized_mutual_information(
      result.assignments, dataset.planted.labels);
  return ref;
}

}  // namespace sgp::bench
