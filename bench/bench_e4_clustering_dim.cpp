// E4 (paper Fig. "clustering utility vs projection dimension"): NMI as a
// function of m at fixed budget, on facebook-sim.
//
// Expected shape: too-small m loses the community subspace (JL distortion);
// larger m helps until the extra noisy columns stop adding signal — the
// curve rises steeply then saturates (and can dip slightly as the noise
// spectral norm grows like √m).
#include <cstdio>

#include "common.hpp"
#include "core/publisher.hpp"

int main() {
  sgp::bench::banner(
      "E4: clustering utility (NMI) vs projection dimension m",
      "facebook-sim at eps in {4, 8}; reference = non-private pipeline.");

  const auto dataset = sgp::graph::facebook_sim();
  const std::uint64_t seed = 23;
  sgp::bench::BenchReport report("E4");
  report.meta("dataset", dataset.name)
      .meta("nodes",
            static_cast<std::uint64_t>(dataset.planted.graph.num_nodes()))
      .meta("epsilon_grid", "4,8")
      .meta("delta", 1e-6)
      .meta("seed", seed);
  const auto reference = sgp::bench::non_private_reference(dataset, seed);
  std::printf("non-private NMI = %.3f\n", reference.nmi_vs_truth);

  sgp::util::TextTable table({"m", "nmi_eps4", "nmi_eps8", "sigma_eps4",
                              "published_MiB"});
  for (std::size_t m : {16, 32, 64, 128, 256, 512}) {
    sgp::obs::ScopedTimer timer("bench.sweep");
    timer.attr("m", static_cast<std::uint64_t>(m));
    double nmi[2] = {0.0, 0.0};
    double sigma4 = 0.0;
    double mib = 0.0;
    const double eps_grid[2] = {4.0, 8.0};
    for (int i = 0; i < 2; ++i) {
      sgp::core::RandomProjectionPublisher::Options opt;
      opt.projection_dim = m;
      opt.params = {eps_grid[i], 1e-6};
      opt.seed = seed;
      const auto pub =
          sgp::core::RandomProjectionPublisher(opt).publish(dataset.planted.graph);
      const auto res =
          sgp::core::cluster_published(pub, dataset.num_communities, seed);
      nmi[i] = sgp::cluster::normalized_mutual_information(
          res.assignments, dataset.planted.labels);
      if (i == 0) sigma4 = pub.calibration.sigma;
      mib = static_cast<double>(pub.published_bytes()) / (1 << 20);
    }
    table.new_row()
        .add(m)
        .add(nmi[0], 3)
        .add(nmi[1], 3)
        .add(sigma4, 3)
        .add(mib, 2);
    std::fprintf(stderr, "[e4] m=%zu done in %.1fs\n", m, timer.stop());
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
