// E13: out-of-core shard-parallel publishing — peak memory and thread
// scaling for publish_sharded (core/sharded_publish.hpp).
//
// Claim under test: working memory is O(rows_per_shard·m + |E_shard|), not
// the O(n·m) of a materialized release, while the output stays byte-
// identical across shard heights and thread counts. Peak RSS is read from
// the kernel's VmHWM high-water mark (/proc/self/status), which is monotone
// over the process lifetime — so shard heights run in ascending footprint
// order and each row's reading reflects the largest footprint so far.
//
// Usage: bench_e13_sharded [--nodes N] [--dim M]   (defaults 20000 / 100).
// The ctest schema fixture runs it with a tiny --nodes so validating
// BENCH_E13.json stays fast; the meta keys (shard_rows, peak_rss_mb,
// threads) are emitted regardless of size.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/distributed_publish.hpp"
#include "core/sharded_publish.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/shard_loader.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Peak resident set (MiB) so far, from /proc/self/status VmHWM. Returns 0
/// where /proc is unavailable (non-Linux) — the table then shows 0 rather
/// than lying.
double peak_rss_mb() {
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      fields >> kb;
      return kb / 1024.0;
    }
  }
#endif
  return 0.0;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("nodes", 20000));
  const auto m = static_cast<std::size_t>(args.get_int("dim", 100));

  sgp::bench::BenchReport report("E13");
  sgp::bench::banner(
      "E13: out-of-core sharded publish",
      "Peak RSS vs shard height (bounded by rows_per_shard*m, not n*m) and "
      "thread scaling at fixed shard height; output bytes identical "
      "throughout.");

  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string edges_path = dir + "/sgp_bench_e13.edges";
  const std::string out_path = dir + "/sgp_bench_e13.bin";
  {
    // Scope the generated graph so only the on-disk edge list survives —
    // from here on the bench works out of core, like the tool would.
    sgp::obs::ScopedTimer timer("bench.generate");
    sgp::random::Rng rng(41);
    const sgp::graph::Graph g = sgp::graph::barabasi_albert(n, 5, rng);
    sgp::graph::write_edge_list_file(g, edges_path);
    std::fprintf(stderr, "[bench] %zu nodes / %zu edges -> %s\n",
                 g.num_nodes(), g.num_edges(), edges_path.c_str());
  }

  const sgp::graph::EdgeListShardReader reader(edges_path,
                                               sgp::graph::IdPolicy::kPreserve);
  sgp::core::ShardedPublishOptions opt;
  opt.publish.projection_dim = m;
  opt.publish.seed = 43;

  const double full_release_mb =
      static_cast<double>(n) * static_cast<double>(m) * 8.0 / (1 << 20);
  const std::size_t meta_shard_rows = std::max<std::size_t>(1, n / 16);

  std::printf("Shard-height scaling (n=%zu, m=%zu, 1 thread):\n", n, m);
  sgp::util::TextTable shard_table(
      {"shard_rows", "shards", "seconds", "tile_mb", "vm_hwm_mb", "full_mb"});
  opt.threads = 1;
  for (const std::size_t shard_rows :
       {meta_shard_rows, std::max<std::size_t>(1, n / 4), n}) {
    opt.shard_rows = shard_rows;
    sgp::obs::ScopedTimer timer("bench.shard_height");
    timer.attr("shard_rows", shard_rows);
    const auto result = sgp::core::publish_sharded(reader, opt, out_path);
    const double seconds = timer.stop();
    shard_table.new_row()
        .add(shard_rows)
        .add(result.shards_total)
        .add(seconds, 3)
        .add(static_cast<double>(shard_rows) * static_cast<double>(m) * 8.0 /
                 (1 << 20),
             2)
        .add(peak_rss_mb(), 1)
        .add(full_release_mb, 1);
  }
  std::printf("%s\n", shard_table.to_string().c_str());

  std::printf("Thread scaling (shard_rows=%zu):\n",
              std::max<std::size_t>(1, n / 4));
  sgp::util::TextTable thread_table(
      {"threads", "seconds", "identical_bytes"});
  opt.shard_rows = std::max<std::size_t>(1, n / 4);
  std::string reference_bytes;
  std::size_t max_threads = 1;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    opt.threads = threads;
    sgp::obs::ScopedTimer timer("bench.thread_scaling");
    timer.attr("threads", threads);
    sgp::core::publish_sharded(reader, opt, out_path);
    const double seconds = timer.stop();
    const std::string bytes = read_bytes(out_path);
    if (reference_bytes.empty()) reference_bytes = bytes;
    thread_table.new_row()
        .add(threads)
        .add(seconds, 3)
        .add(bytes == reference_bytes ? "yes" : "NO");
    max_threads = threads;
  }
  std::printf("%s", thread_table.to_string().c_str());

  // Process scaling: the distributed coordinator/worker path over real
  // sgp_publish child processes (core/distributed_publish.hpp). processes=1
  // runs the shards in the coordinator itself (no worker program), so the
  // axis shares a baseline with the tables above.
  std::printf("\nProcess scaling (shard_rows=%zu, 2 threads/worker):\n",
              std::max<std::size_t>(1, n / 16));
  sgp::util::TextTable process_table(
      {"processes", "seconds", "spawned", "identical_bytes"});
  reference_bytes.clear();
  std::size_t max_processes = 1;
  for (const std::size_t processes : {1, 2, 4}) {
    sgp::core::DistributedPublishOptions dopt;
    dopt.sharded = opt;
    dopt.sharded.shard_rows = std::max<std::size_t>(1, n / 16);
    dopt.sharded.threads = 2;
    dopt.workers = processes;
    if (processes > 1) dopt.worker_program = SGP_PUBLISH_BIN;
    dopt.edges_path = edges_path;
    dopt.id_policy = sgp::graph::IdPolicy::kPreserve;
    sgp::obs::ScopedTimer timer("bench.process_scaling");
    timer.attr("processes", processes);
    const auto result = sgp::core::publish_distributed(reader, dopt, out_path);
    const double seconds = timer.stop();
    const std::string bytes = read_bytes(out_path);
    if (reference_bytes.empty()) reference_bytes = bytes;
    process_table.new_row()
        .add(processes)
        .add(seconds, 3)
        .add(result.workers_spawned)
        .add(bytes == reference_bytes ? "yes" : "NO");
    max_processes = processes;
  }
  std::printf("%s", process_table.to_string().c_str());

  report.meta("nodes", static_cast<std::uint64_t>(n))
      .meta("m", static_cast<std::uint64_t>(m))
      .meta("shard_rows", static_cast<std::uint64_t>(meta_shard_rows))
      .meta("peak_rss_mb", peak_rss_mb())
      .meta("threads", static_cast<std::uint64_t>(max_threads))
      .meta("processes", static_cast<std::uint64_t>(max_processes))
      // Kernel axis: the variant the shard tiles were generated under (the
      // resolved default unless SGP_FORCE_KERNEL says otherwise); byte
      // identity across threads/processes holds per variant.
      .meta("kernel_variant",
            std::string(sgp::random::to_string(
                sgp::random::resolve_normal_kernel(
                    sgp::random::KernelVariant::kAuto))))
      // This BENCH file itself is a v1 report; the flag records which
      // observability schema distributed runs of this configuration merge
      // into (sgp_bench_check enforces a known value).
      .meta("obs_schema", "sgp-obs-report v2");

  std::error_code ec;
  std::filesystem::remove(edges_path, ec);
  std::filesystem::remove(out_path, ec);
  return 0;
}
