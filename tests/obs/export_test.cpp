// Exporter golden tests. This suite is its own test binary on purpose: the
// metrics registry is process-global and append-only, so exact-output tests
// are only deterministic when every test in the process registers the same
// fixed set of metrics (alpha.count / beta.level / gamma.seconds).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sgp::obs::set_metrics_enabled(true);
    sgp::obs::set_trace_enabled(true);
    sgp::obs::reset_all_metrics();
    sgp::obs::clear_spans();
    sgp::obs::counter("alpha.count").add(3);
    sgp::obs::gauge("beta.level").set(2.5);
    sgp::obs::histogram("gamma.seconds").record(0.5);
  }
  void TearDown() override {
    sgp::obs::reset_all_metrics();
    sgp::obs::clear_spans();
    sgp::obs::set_metrics_enabled(false);
    sgp::obs::set_trace_enabled(false);
  }
};

TEST_F(ExportTest, JsonGolden) {
  std::ostringstream out;
  sgp::obs::write_metrics_json(out);
  // The bucket bound for a 0.5 s sample, rendered exactly as the exporter
  // renders numbers (bounds are powers of two times 1e-6, not integers).
  const std::string le = sgp::util::json_number(
      sgp::obs::Histogram::upper_bound(sgp::obs::Histogram::bucket_for(0.5)));
  const std::string expected = std::string("{\n") +
      "  \"counters\": {\n"
      "    \"alpha.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"beta.level\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"gamma.seconds\": {\"count\": 1, \"sum\": 0.5, \"buckets\": "
      "[{\"le\": " + le + ", \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST_F(ExportTest, JsonOutputParses) {
  std::ostringstream out;
  sgp::obs::write_metrics_json(out);
  const auto doc = sgp::util::parse_json(out.str());
  ASSERT_TRUE(doc.is_object());
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("alpha.count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("beta.level")->as_number(), 2.5);
  const auto* hist = doc.find("histograms")->find("gamma.seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 0.5);
  EXPECT_EQ(hist->find("buckets")->as_array().size(), 1u);
}

TEST_F(ExportTest, PrometheusGolden) {
  std::ostringstream out;
  sgp::obs::write_metrics_prometheus(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE sgp_alpha_count counter\nsgp_alpha_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sgp_beta_level gauge\nsgp_beta_level 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sgp_gamma_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: 0 below the sample's bucket, 1 from it onward.
  const std::size_t b = sgp::obs::Histogram::bucket_for(0.5);
  const std::string below = sgp::util::json_number(
      sgp::obs::Histogram::upper_bound(b - 1));
  const std::string at =
      sgp::util::json_number(sgp::obs::Histogram::upper_bound(b));
  EXPECT_NE(text.find("sgp_gamma_seconds_bucket{le=\"" + below + "\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgp_gamma_seconds_bucket{le=\"" + at + "\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgp_gamma_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sgp_gamma_seconds_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("sgp_gamma_seconds_count 1\n"), std::string::npos);
}

TEST_F(ExportTest, ReportRoundTripValidates) {
  {
    sgp::obs::Span phase("test.export.phase");
    phase.attr("n", std::uint64_t{12});
  }
  sgp::obs::Report report("export-test");
  report.meta("epsilon", 1.5)
      .meta("dataset", "unit")
      .meta("nodes", std::uint64_t{500})
      .meta("streaming", false);

  std::ostringstream out;
  report.write(out);
  const auto doc = sgp::util::parse_json(out.str());
  EXPECT_EQ(sgp::obs::validate_report_json(doc), std::nullopt);

  EXPECT_EQ(doc.find("id")->as_string(), "export-test");
  const auto* meta = doc.find("meta");
  EXPECT_DOUBLE_EQ(meta->find("epsilon")->as_number(), 1.5);
  EXPECT_EQ(meta->find("dataset")->as_string(), "unit");
  EXPECT_DOUBLE_EQ(meta->find("nodes")->as_number(), 500.0);
  const auto& phases = doc.find("phases")->as_array();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].find("name")->as_string(), "test.export.phase");
  const auto& spans = doc.find("spans")->as_array();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].find("attrs")->find("n")->as_string(), "12");
}

TEST_F(ExportTest, ValidatorRejectsMalformedReports) {
  const auto expect_error = [](const std::string& json) {
    const auto doc = sgp::util::parse_json(json);
    EXPECT_NE(sgp::obs::validate_report_json(doc), std::nullopt) << json;
  };
  expect_error("{}");
  expect_error("{\"schema\": \"bogus v9\", \"id\": \"x\"}");
  expect_error(
      "{\"schema\": \"sgp-obs-report v1\", \"id\": \"x\", \"meta\": {}, "
      "\"phases\": [], \"metrics\": {\"counters\": {}, \"gauges\": {}}, "
      "\"spans\": []}");  // histograms missing
  expect_error(
      "{\"schema\": \"sgp-obs-report v1\", \"id\": \"x\", \"meta\": {}, "
      "\"phases\": [{\"name\": \"p\"}], \"metrics\": {\"counters\": {}, "
      "\"gauges\": {}, \"histograms\": {}}, \"spans\": []}");  // no seconds
}

TEST_F(ExportTest, TraceTextTreeIndentsChildren) {
  {
    sgp::obs::Span outer("outer.phase");
    sgp::obs::Span inner("inner.step");
    inner.attr("k", "v");
  }
  std::ostringstream out;
  sgp::obs::write_trace_text(out);
  const std::string text = out.str();
  const auto outer_pos = text.find("outer.phase");
  const auto inner_pos = text.find("inner.step");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(text.find("k=v"), std::string::npos);
}

}  // namespace
