// Concurrency and correctness tests for the sharded metrics registry.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sgp::obs::set_metrics_enabled(true);
    sgp::obs::reset_all_metrics();
  }
  void TearDown() override {
    sgp::obs::reset_all_metrics();
    sgp::obs::set_metrics_enabled(false);
  }
};

TEST_F(MetricsTest, CounterCountsExactly) {
  auto& c = sgp::obs::counter("test.metrics.basic");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, DisabledCounterIsNoOp) {
  auto& c = sgp::obs::counter("test.metrics.disabled");
  sgp::obs::set_metrics_enabled(false);
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  sgp::obs::set_metrics_enabled(true);
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  auto& a = sgp::obs::counter("test.metrics.stable");
  auto& b = sgp::obs::counter("test.metrics.stable");
  EXPECT_EQ(&a, &b);
}

TEST_F(MetricsTest, CrossKindNameCollisionThrows) {
  sgp::obs::counter("test.metrics.collision");
  EXPECT_THROW(sgp::obs::gauge("test.metrics.collision"),
               sgp::util::InternalError);
  EXPECT_THROW(sgp::obs::histogram("test.metrics.collision"),
               sgp::util::InternalError);
}

TEST_F(MetricsTest, ThreadPoolWorkersCountExactly) {
  // The acceptance test for the sharded design: many pool workers hammer
  // one counter; after the futures drain, the total must be exact.
  constexpr int kTasks = 32;
  constexpr int kAddsPerTask = 100000;
  auto& c = sgp::obs::counter("test.metrics.hammer");
  sgp::util::ThreadPool pool(8);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.submit([&c] {
      for (int i = 0; i < kAddsPerTask; ++i) c.add();
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

TEST_F(MetricsTest, ThreadsLandOnStableShards) {
  const std::size_t here = sgp::obs::this_thread_shard();
  EXPECT_LT(here, sgp::obs::kMetricShards);
  EXPECT_EQ(here, sgp::obs::this_thread_shard());  // stable per thread
  std::size_t other = sgp::obs::kMetricShards;
  std::thread([&other] { other = sgp::obs::this_thread_shard(); }).join();
  EXPECT_LT(other, sgp::obs::kMetricShards);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  auto& g = sgp::obs::gauge("test.metrics.gauge");
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST_F(MetricsTest, HistogramBucketsArePowerOfTwoMicros) {
  using H = sgp::obs::Histogram;
  EXPECT_DOUBLE_EQ(H::upper_bound(0), 1e-6);
  EXPECT_DOUBLE_EQ(H::upper_bound(1), 2e-6);
  // Values beyond the largest finite bound land in the +Inf bucket.
  EXPECT_EQ(H::bucket_for(1e9), H::kBuckets - 1);
  // Bucket ranges are [lower, upper): the bound itself goes one bucket up.
  const double b3 = H::upper_bound(3);
  EXPECT_EQ(H::bucket_for(b3), H::bucket_for(b3 * 0.99) + 1);
}

TEST_F(MetricsTest, HistogramTotalsExactUnderConcurrency) {
  constexpr int kTasks = 16;
  constexpr int kRecordsPerTask = 20000;
  auto& h = sgp::obs::histogram("test.metrics.hist");
  sgp::util::ThreadPool pool(8);
  std::vector<std::future<void>> futures;
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.submit([&h] {
      for (int i = 0; i < kRecordsPerTask; ++i) h.record(0.5);
    }));
  }
  for (auto& f : futures) f.get();
  const auto snap = h.snapshot();
  const auto total = static_cast<std::uint64_t>(kTasks) * kRecordsPerTask;
  EXPECT_EQ(snap.count, total);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 * static_cast<double>(total));
  std::uint64_t bucket_total = 0;
  for (auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, total);
  // All records identical, so exactly one bucket is populated.
  EXPECT_EQ(snap.buckets[sgp::obs::Histogram::bucket_for(0.5)], total);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsNames) {
  auto& c = sgp::obs::counter("test.metrics.resettable");
  c.add(7);
  sgp::obs::reset_all_metrics();
  EXPECT_EQ(c.value(), 0u);
  const auto snap = sgp::obs::snapshot_metrics();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.metrics.resettable") {
      found = true;
      EXPECT_EQ(value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  sgp::obs::counter("test.metrics.zz");
  sgp::obs::counter("test.metrics.aa");
  const auto snap = sgp::obs::snapshot_metrics();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

}  // namespace
