// Merge-plane tests: histogram bucket-merge algebra, v2 report writing
// (counter sums, per-process gauges, span re-parenting), the v2 and Chrome
// validators, and Prometheus exporter edge cases (obs/aggregate.hpp).
#include "obs/aggregate.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace {

using sgp::obs::Histogram;
using sgp::obs::ProcessHistogram;
using sgp::obs::ProcessLog;
using sgp::util::JsonValue;

ProcessHistogram histogram_fixture(std::uint64_t seed) {
  ProcessHistogram h;
  h.buckets[0] = seed;
  h.buckets[3] = seed * 2;
  h.buckets[Histogram::kBuckets - 1] = seed + 1;  // the +Inf bucket
  h.count = seed + seed * 2 + seed + 1;
  h.sum = static_cast<double>(seed) * 0.25;
  return h;
}

TEST(MergeHistograms, AssociativeAndCommutativeIncludingInfBucket) {
  const ProcessHistogram a = histogram_fixture(1);
  const ProcessHistogram b = histogram_fixture(10);
  const ProcessHistogram c = histogram_fixture(100);

  const ProcessHistogram left =
      sgp::obs::merge_histograms(sgp::obs::merge_histograms(a, b), c);
  const ProcessHistogram right =
      sgp::obs::merge_histograms(a, sgp::obs::merge_histograms(b, c));
  const ProcessHistogram swapped =
      sgp::obs::merge_histograms(sgp::obs::merge_histograms(b, a), c);

  for (const ProcessHistogram* m : {&right, &swapped}) {
    EXPECT_EQ(left.count, m->count);
    EXPECT_DOUBLE_EQ(left.sum, m->sum);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      EXPECT_EQ(left.buckets[i], m->buckets[i]) << "bucket " << i;
    }
  }
  EXPECT_EQ(left.buckets[Histogram::kBuckets - 1], 2u + 11u + 101u);
  EXPECT_EQ(left.count, a.count + b.count + c.count);
}

/// A hand-built three-process release: the coordinator owns span 1, each
/// worker was handed parent_span=1 and contributed one root span plus a
/// child, on a trace clock offset from the coordinator's.
class ReportV2Test : public ::testing::Test {
 protected:
  static ProcessLog coordinator() {
    ProcessLog log;
    log.pid = 100;
    log.role = "coordinator";
    log.trace_id = "feedfacefeedface";
    log.epoch_unix = 1000.0;
    log.counters["publish.shards"] = 0;  // workers did all the shards
    log.counters["obs.events"] = 3;
    log.gauges["publish.workers"] = 2.0;
    log.gauges["proc.rss_mb"] = 10.0;
    sgp::obs::SpanRecord root;
    root.id = 1;
    root.name = "publish.distributed";
    root.start_seconds = 0.0;
    root.duration_seconds = 4.0;
    log.spans.push_back(root);
    sgp::obs::EventRecord ev;
    ev.t = 0.5;
    ev.name = "shard.leased";
    ev.fields = {{"shard", "0"}, {"worker", "0"}};
    log.events.push_back(ev);
    return log;
  }

  static ProcessLog worker(std::uint64_t pid, std::int64_t slot,
                           double epoch_offset, const std::string& shard) {
    ProcessLog log;
    log.pid = pid;
    log.role = "worker";
    log.trace_id = "feedfacefeedface";
    log.parent_span = 1;
    log.worker = slot;
    log.gen = 0;
    log.epoch_unix = 1000.0 + epoch_offset;
    log.counters["publish.shards"] = 1;
    log.counters["obs.events"] = 2;
    log.gauges["proc.rss_mb"] = 20.0 + static_cast<double>(slot);
    ProcessHistogram h;
    h.count = 1;
    h.sum = 0.25;
    h.buckets[4] = 1;
    log.histograms["publish.shard.seconds"] = h;
    sgp::obs::SpanRecord root;
    root.id = 1;  // deliberately collides with every other process
    root.name = "worker.run";
    root.start_seconds = 0.1;
    root.duration_seconds = 1.0;
    log.spans.push_back(root);
    sgp::obs::SpanRecord child;
    child.id = 2;
    child.parent_id = 1;
    child.name = "publish.shard";
    child.start_seconds = 0.2;
    child.duration_seconds = 0.5;
    child.attrs = {{"shard", shard}};
    log.spans.push_back(child);
    sgp::obs::EventRecord ev;
    ev.t = 0.9;
    ev.name = "shard.committed";
    ev.fields = {{"shard", shard}};
    log.events.push_back(ev);
    return log;
  }

  static JsonValue merged() {
    std::ostringstream out;
    sgp::obs::write_report_v2(out, "unit", coordinator(),
                              {worker(200, 0, 0.5, "0"),
                               worker(300, 1, -0.25, "1")});
    return sgp::util::parse_json(out.str());
  }
};

TEST_F(ReportV2Test, ValidatesAndCarriesIdentity) {
  const JsonValue doc = merged();
  EXPECT_EQ(sgp::obs::validate_report_v2_json(doc), std::nullopt);
  EXPECT_EQ(doc.find("schema")->as_string(), "sgp-obs-report v2");
  EXPECT_EQ(doc.find("trace_id")->as_string(), "feedfacefeedface");
  ASSERT_EQ(doc.find("processes")->as_array().size(), 3u);
}

TEST_F(ReportV2Test, CountersSumAcrossProcesses) {
  const JsonValue doc = merged();
  const JsonValue* counters = doc.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("publish.shards")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(counters->find("obs.events")->as_number(), 7.0);
}

TEST_F(ReportV2Test, GaugesKeepEveryProcessReading) {
  const JsonValue doc = merged();
  const JsonValue* rss = doc.find("metrics")->find("gauges")->find(
      "proc.rss_mb");
  ASSERT_NE(rss, nullptr);
  // Representative value is the coordinator's; nothing last-write-wins.
  EXPECT_DOUBLE_EQ(rss->find("value")->as_number(), 10.0);
  const JsonValue* per_pid = rss->find("processes");
  ASSERT_NE(per_pid, nullptr);
  EXPECT_DOUBLE_EQ(per_pid->find("100")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(per_pid->find("200")->as_number(), 20.0);
  EXPECT_DOUBLE_EQ(per_pid->find("300")->as_number(), 21.0);
  // A gauge only workers carry falls back to the lowest-pid reading.
  const JsonValue* workers_gauge =
      doc.find("metrics")->find("gauges")->find("publish.workers");
  ASSERT_NE(workers_gauge, nullptr);
  EXPECT_DOUBLE_EQ(workers_gauge->find("value")->as_number(), 2.0);
}

TEST_F(ReportV2Test, HistogramsBucketMergeAcrossWorkers) {
  const JsonValue doc = merged();
  const JsonValue* hist = doc.find("metrics")->find("histograms")->find(
      "publish.shard.seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 0.5);
  const auto& buckets = hist->find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 1u);  // sparse: only the occupied bucket
  EXPECT_DOUBLE_EQ(buckets[0].find("count")->as_number(), 2.0);
}

TEST_F(ReportV2Test, WorkerSpansReparentUnderCoordinatorWithFreshIds) {
  const JsonValue doc = merged();
  const auto& roots = doc.find("spans")->as_array();
  ASSERT_EQ(roots.size(), 1u);
  const JsonValue& dist = roots[0];
  EXPECT_EQ(dist.find("name")->as_string(), "publish.distributed");
  EXPECT_DOUBLE_EQ(dist.find("pid")->as_number(), 100.0);
  // Both worker roots hang off the coordinator span they were handed.
  const auto& children = dist.find("children")->as_array();
  ASSERT_EQ(children.size(), 2u);
  std::vector<std::string> shards;
  for (const JsonValue& run : children) {
    EXPECT_EQ(run.find("name")->as_string(), "worker.run");
    const auto& grandchildren = run.find("children")->as_array();
    ASSERT_EQ(grandchildren.size(), 1u);
    EXPECT_EQ(grandchildren[0].find("name")->as_string(), "publish.shard");
    shards.push_back(
        grandchildren[0].find("attrs")->find("shard")->as_string());
  }
  std::sort(shards.begin(), shards.end());
  EXPECT_EQ(shards, (std::vector<std::string>{"0", "1"}));
  // Worker clocks shift onto the coordinator epoch: worker 200 started its
  // root at 0.1 on a clock 0.5s ahead, worker 300 on one 0.25s behind.
  std::vector<double> starts;
  for (const JsonValue& run : children) {
    starts.push_back(run.find("start")->as_number());
  }
  std::sort(starts.begin(), starts.end());
  EXPECT_NEAR(starts[0], -0.15, 1e-9);
  EXPECT_NEAR(starts[1], 0.6, 1e-9);
}

TEST_F(ReportV2Test, EventsMergeTimeOrderedWithSourcePid) {
  const JsonValue doc = merged();
  const auto& events = doc.find("events")->as_array();
  ASSERT_EQ(events.size(), 3u);
  double last = -1e18;
  for (const JsonValue& e : events) {
    EXPECT_GE(e.find("t")->as_number(), last);
    last = e.find("t")->as_number();
  }
  // Worker 300's commit at local t=0.9 lands at 0.65 coordinator time —
  // before worker 200's at 1.4.
  EXPECT_EQ(events[1].find("name")->as_string(), "shard.committed");
  EXPECT_DOUBLE_EQ(events[1].find("pid")->as_number(), 300.0);
}

TEST_F(ReportV2Test, ValidatorRejectsSchemaViolations) {
  const std::string good_text = [] {
    std::ostringstream out;
    sgp::obs::write_report_v2(out, "unit", coordinator(),
                              {worker(200, 0, 0.0, "0")});
    return out.str();
  }();

  struct Case {
    std::string from;
    std::string to;
  };
  const std::vector<Case> cases = {
      // Wrong schema tag.
      {"sgp-obs-report v2", "sgp-obs-report v9"},
      // Gauge flattened to a bare number (the v1 shape) loses per-process
      // readings — the validator must refuse it.
      {"\"publish.workers\": {\"value\": 2, \"processes\": {\"100\": 2}}",
       "\"publish.workers\": 2"},
      // A span without a source pid cannot be laned in the timeline.
      {"\"pid\": 100, \"attrs\"", "\"attrs\""},
  };
  for (const Case& c : cases) {
    std::string text = good_text;
    const std::size_t at = text.find(c.from);
    ASSERT_NE(at, std::string::npos) << c.from;
    text.replace(at, c.from.size(), c.to);
    const JsonValue doc = sgp::util::parse_json(text);
    EXPECT_NE(sgp::obs::validate_report_v2_json(doc), std::nullopt) << c.from;
  }

  EXPECT_NE(sgp::obs::validate_report_v2_json(
                sgp::util::parse_json("{\"schema\": \"sgp-obs-report v2\"}")),
            std::nullopt)
      << "missing trace_id/processes must be rejected";
}

TEST_F(ReportV2Test, ChromeTraceRoundTripsThroughValidator) {
  const JsonValue doc = merged();
  std::ostringstream out;
  sgp::obs::write_chrome_trace(out, doc);
  const JsonValue trace = sgp::util::parse_json(out.str());
  EXPECT_EQ(sgp::obs::validate_chrome_trace_json(trace), std::nullopt);

  const auto& events = trace.find("traceEvents")->as_array();
  std::size_t metadata = 0;
  std::size_t complete = 0;
  std::size_t instants = 0;
  for (const JsonValue& e : events) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") ++metadata;
    if (ph == "X") ++complete;
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(metadata, 3u);  // one process_name record per process
  EXPECT_EQ(complete, 5u);  // every span in the merged tree
  EXPECT_EQ(instants, 3u);  // every lifecycle event
}

TEST_F(ReportV2Test, ChromeValidatorRejectsMalformedTraces) {
  EXPECT_NE(sgp::obs::validate_chrome_trace_json(
                sgp::util::parse_json("{\"traceEvents\": 7}")),
            std::nullopt);
  EXPECT_NE(sgp::obs::validate_chrome_trace_json(sgp::util::parse_json(
                "{\"traceEvents\": [{\"name\": \"x\", \"ph\": 9}]}")),
            std::nullopt)
      << "ph must be a string";
  EXPECT_NE(
      sgp::obs::validate_chrome_trace_json(sgp::util::parse_json(
          "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"pid\": 1, "
          "\"tid\": 0, \"ts\": 1.0, \"dur\": -2.0}]}")),
      std::nullopt)
      << "negative dur must be rejected";
  EXPECT_NE(
      sgp::obs::validate_chrome_trace_json(sgp::util::parse_json(
          "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"i\", \"pid\": 1}]}")),
      std::nullopt)
      << "non-metadata events need a timestamp";
}

/// Prometheus exporter edge cases. Runs against the live process registry,
/// so names are namespaced and values asserted via find() — this binary has
/// no exact-output goldens (those live in obs_export_test).
class PrometheusEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sgp::obs::set_metrics_enabled(true);
    sgp::obs::reset_all_metrics();
  }
  void TearDown() override {
    sgp::obs::reset_all_metrics();
    sgp::obs::set_metrics_enabled(false);
  }
  static std::string render() {
    std::ostringstream out;
    sgp::obs::write_metrics_prometheus(out);
    return out.str();
  }
};

TEST_F(PrometheusEdgeTest, NonAlnumCharactersEscapeToUnderscore) {
  sgp::obs::counter("test.prom-edge.weird").add(4);
  const std::string text = render();
  EXPECT_NE(text.find("# TYPE sgp_test_prom_edge_weird counter\n"
                      "sgp_test_prom_edge_weird 4\n"),
            std::string::npos)
      << text;
}

TEST_F(PrometheusEdgeTest, HistogramBucketsAreCumulativeUpToInf) {
  auto& h = sgp::obs::histogram("test.prom.cumulative.seconds");
  h.record(1e-6);  // lowest bucket
  h.record(0.5);
  h.record(1e9);  // beyond the largest finite bound: +Inf bucket
  const std::string text = render();

  // Every bucket line's count is monotone non-decreasing and the +Inf line
  // equals _count.
  const std::string bucket_prefix =
      "sgp_test_prom_cumulative_seconds_bucket{le=\"";
  double last = -1.0;
  std::size_t lines = 0;
  std::size_t at = 0;
  while ((at = text.find(bucket_prefix, at)) != std::string::npos) {
    const std::size_t value_at = text.find("} ", at);
    ASSERT_NE(value_at, std::string::npos);
    const double value = std::strtod(text.c_str() + value_at + 2, nullptr);
    EXPECT_GE(value, last);
    last = value;
    ++lines;
    at = value_at;
  }
  EXPECT_EQ(lines, sgp::obs::Histogram::kBuckets);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("sgp_test_prom_cumulative_seconds_count 3\n"),
            std::string::npos);
}

TEST_F(PrometheusEdgeTest, EmptyRegistrySectionsRenderNothing) {
  // A freshly reset registry may still carry earlier tests' names, so
  // assert on a definitely-absent name rather than emptiness.
  const std::string text = render();
  EXPECT_EQ(text.find("sgp_test_prom_never_registered"), std::string::npos);
}

}  // namespace
