// Tests for the RAII trace spans: nesting, attributes, and per-thread
// hierarchies.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "obs/scoped_timer.hpp"

namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sgp::obs::set_trace_enabled(true);
    sgp::obs::clear_spans();
  }
  void TearDown() override {
    sgp::obs::clear_spans();
    sgp::obs::set_trace_enabled(false);
  }

  static const sgp::obs::SpanRecord* find(
      const std::vector<sgp::obs::SpanRecord>& spans, std::string_view name) {
    const auto it = std::find_if(
        spans.begin(), spans.end(),
        [&](const sgp::obs::SpanRecord& s) { return s.name == name; });
    return it == spans.end() ? nullptr : &*it;
  }
};

TEST_F(TraceTest, DisabledSpanIsInert) {
  sgp::obs::set_trace_enabled(false);
  {
    sgp::obs::Span span("test.trace.off");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(sgp::obs::collected_spans().empty());
}

TEST_F(TraceTest, NestedSpansLinkParentToChild) {
  {
    sgp::obs::Span outer("test.trace.outer");
    {
      sgp::obs::Span inner("test.trace.inner");
      inner.attr("k", std::string_view("v"));
    }
  }
  const auto spans = sgp::obs::collected_spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto* outer = find(spans, "test.trace.outer");
  const auto* inner = find(spans, "test.trace.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->id);
  // Children complete first, times nest.
  EXPECT_GE(inner->start_seconds, outer->start_seconds);
  EXPECT_LE(inner->duration_seconds, outer->duration_seconds);
  ASSERT_EQ(inner->attrs.size(), 1u);
  EXPECT_EQ(inner->attrs[0].first, "k");
  EXPECT_EQ(inner->attrs[0].second, "v");
}

TEST_F(TraceTest, SiblingsShareAParent) {
  {
    sgp::obs::Span root("test.trace.root");
    { sgp::obs::Span a("test.trace.a"); }
    { sgp::obs::Span b("test.trace.b"); }
  }
  const auto spans = sgp::obs::collected_spans();
  ASSERT_EQ(spans.size(), 3u);
  const auto* root = find(spans, "test.trace.root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(find(spans, "test.trace.a")->parent_id, root->id);
  EXPECT_EQ(find(spans, "test.trace.b")->parent_id, root->id);
}

TEST_F(TraceTest, CloseIsIdempotent) {
  sgp::obs::Span span("test.trace.close");
  span.close();
  span.close();
  EXPECT_FALSE(span.active());
  EXPECT_EQ(sgp::obs::collected_spans().size(), 1u);
}

TEST_F(TraceTest, AttributeTypesRender) {
  {
    sgp::obs::Span span("test.trace.attrs");
    span.attr("str", "text");
    span.attr("int", std::int64_t{-5});
    span.attr("uint", std::uint64_t{7});
    span.attr("dbl", 2.5);
  }
  const auto spans = sgp::obs::collected_spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 4u);
  EXPECT_EQ(spans[0].attrs[0].second, "text");
  EXPECT_EQ(spans[0].attrs[1].second, "-5");
  EXPECT_EQ(spans[0].attrs[2].second, "7");
}

TEST_F(TraceTest, EachThreadGetsItsOwnHierarchy) {
  // Spans opened on a worker thread must become that thread's roots, not
  // children of whatever the spawning thread had open.
  sgp::obs::Span main_root("test.trace.main");
  std::thread t1([] {
    sgp::obs::Span root("test.trace.t1");
    sgp::obs::Span child("test.trace.t1.child");
  });
  std::thread t2([] { sgp::obs::Span root("test.trace.t2"); });
  t1.join();
  t2.join();
  main_root.close();

  const auto spans = sgp::obs::collected_spans();
  ASSERT_EQ(spans.size(), 4u);
  const auto* m = find(spans, "test.trace.main");
  const auto* r1 = find(spans, "test.trace.t1");
  const auto* c1 = find(spans, "test.trace.t1.child");
  const auto* r2 = find(spans, "test.trace.t2");
  EXPECT_EQ(m->parent_id, 0u);
  EXPECT_EQ(r1->parent_id, 0u);  // not a child of main
  EXPECT_EQ(r2->parent_id, 0u);
  EXPECT_EQ(c1->parent_id, r1->id);
  EXPECT_EQ(c1->thread, r1->thread);
  EXPECT_NE(r1->thread, m->thread);
  EXPECT_NE(r2->thread, r1->thread);
}

TEST_F(TraceTest, ScopedTimerRecordsSpanAndHistogram) {
  sgp::obs::set_metrics_enabled(true);
  sgp::obs::reset_all_metrics();
  {
    sgp::obs::ScopedTimer timer("test.trace.timer");
    timer.attr("n", std::uint64_t{3});
    EXPECT_GE(timer.seconds(), 0.0);
  }
  const auto spans = sgp::obs::collected_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.trace.timer");
  const auto snap =
      sgp::obs::histogram("test.trace.timer.seconds").snapshot();
  EXPECT_EQ(snap.count, 1u);
  sgp::obs::set_metrics_enabled(false);
}

TEST_F(TraceTest, ScopedTimerStopReturnsElapsedOnce) {
  sgp::obs::ScopedTimer timer("test.trace.stop");
  const double first = timer.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(timer.stop(), first);
  EXPECT_DOUBLE_EQ(timer.seconds(), first);
}

TEST_F(TraceTest, ClearSpansDropsOnlyFinishedSpans) {
  sgp::obs::Span open("test.trace.still_open");
  { sgp::obs::Span done("test.trace.done"); }
  sgp::obs::clear_spans();
  EXPECT_TRUE(sgp::obs::collected_spans().empty());
  open.close();
  const auto spans = sgp::obs::collected_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.trace.still_open");
}

}  // namespace
