// Resource sampler tests: /proc-backed gauges, sample counting, lifecycle
// idempotence, and the metrics gate (obs/resource_sampler.hpp).
#include "obs/resource_sampler.hpp"

#include <gtest/gtest.h>

#include "obs/event_log.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace {

class ResourceSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sgp::obs::set_metrics_enabled(true);
    sgp::obs::reset_all_metrics();
    sgp::obs::clear_event_log();
  }
  void TearDown() override {
    sgp::obs::clear_event_log();
    sgp::obs::reset_all_metrics();
    sgp::obs::set_metrics_enabled(false);
  }
};

TEST_F(ResourceSamplerTest, SampleOnceReadsProcGauges) {
#if defined(__unix__)
  ASSERT_TRUE(sgp::obs::ResourceSampler::sample_once());
  // A live test process certainly has resident memory and open fds.
  EXPECT_GT(sgp::obs::gauge(sgp::obs::names::kProcRssMb).value(), 0.0);
  EXPECT_GT(sgp::obs::gauge(sgp::obs::names::kProcPeakRssMb).value(), 0.0);
  EXPECT_GE(sgp::obs::gauge(sgp::obs::names::kProcPeakRssMb).value(),
            sgp::obs::gauge(sgp::obs::names::kProcRssMb).value());
  EXPECT_GT(sgp::obs::gauge(sgp::obs::names::kProcOpenFds).value(), 0.0);
  EXPECT_GE(sgp::obs::gauge(sgp::obs::names::kProcUtimeSeconds).value(), 0.0);
  EXPECT_EQ(sgp::obs::counter(sgp::obs::names::kProcSamples).value(), 1u);
  // Each sample mirrors into a (batched) proc.sample event.
  const auto events = sgp::obs::collected_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, sgp::obs::names::kEventProcSample);
#else
  EXPECT_FALSE(sgp::obs::ResourceSampler::sample_once());
#endif
}

TEST_F(ResourceSamplerTest, StartStopIsIdempotentAndCounts) {
#if defined(__unix__)
  sgp::obs::ResourceSampler sampler;
  sampler.start(/*interval_ms=*/10);
  EXPECT_TRUE(sampler.active());
  sampler.start(/*interval_ms=*/10);  // second start is a no-op
  EXPECT_TRUE(sampler.active());
  sampler.stop();
  EXPECT_FALSE(sampler.active());
  sampler.stop();  // second stop is a no-op
  // At least the synchronous first sample and the final stop() sample.
  EXPECT_GE(sgp::obs::counter(sgp::obs::names::kProcSamples).value(), 2u);
#endif
}

TEST_F(ResourceSamplerTest, DisabledMetricsKeepSamplerInert) {
  sgp::obs::set_metrics_enabled(false);
  sgp::obs::ResourceSampler sampler;
  sampler.start(/*interval_ms=*/10);
  EXPECT_FALSE(sampler.active());
  sampler.stop();
  EXPECT_EQ(sgp::obs::counter(sgp::obs::names::kProcSamples).value(), 0u);
}

}  // namespace
