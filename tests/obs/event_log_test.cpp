// Sidecar event log tests: CRC framing, buffered replay, torn-tail
// tolerance, durable vs batched records (obs/event_log.hpp + the reader in
// obs/aggregate.hpp).
#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sgp::obs::set_metrics_enabled(true);
    sgp::obs::reset_all_metrics();
    sgp::obs::clear_event_log();
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ = (std::filesystem::path(::testing::TempDir()) /
             ("sgp_evlog_" + name + ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    sgp::obs::clear_event_log();
    sgp::obs::reset_all_metrics();
    sgp::obs::set_metrics_enabled(false);
    std::filesystem::remove(path_);
  }

  static sgp::obs::SidecarInfo worker_info() {
    sgp::obs::SidecarInfo info;
    info.role = "worker";
    info.trace_id = "deadbeefdeadbeef";
    info.parent_span = 7;
    info.worker = 2;
    info.gen = 1;
    return info;
  }

  std::string path_;
};

TEST_F(EventLogTest, CrcFrameRoundTrips) {
  const std::string body = "{\"type\":\"event\",\"name\":\"x\"}";
  const std::string line = sgp::obs::crc_frame(body);
  std::string out;
  ASSERT_TRUE(sgp::obs::crc_unframe(line, out));
  EXPECT_EQ(out, body);
}

TEST_F(EventLogTest, CrcUnframeRejectsCorruption) {
  std::string line = sgp::obs::crc_frame("{\"a\":1}");
  std::string out;
  // Flip one body byte: the trailer no longer matches.
  line[2] = line[2] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(sgp::obs::crc_unframe(line, out));
  // Truncated trailer (a torn write) is rejected, not trusted.
  const std::string full = sgp::obs::crc_frame("{\"a\":1}");
  EXPECT_FALSE(sgp::obs::crc_unframe(full.substr(0, full.size() - 3), out));
  EXPECT_FALSE(sgp::obs::crc_unframe("no trailer here", out));
}

TEST_F(EventLogTest, EventsBeforeOpenAreReplayedBehindHeader) {
  // The ledger charge happens before the coordinator knows its sidecar
  // path — pre-open events must survive into the file, after the header.
  sgp::obs::log_event("early.one", {{"k", "v"}});
  sgp::obs::log_event("early.two");
  sgp::obs::open_sidecar(path_, worker_info());
  sgp::obs::log_event("late.three");
  sgp::obs::close_sidecar();

  const sgp::obs::ProcessLog log = sgp::obs::read_sidecar(path_);
  EXPECT_EQ(log.role, "worker");
  EXPECT_EQ(log.trace_id, "deadbeefdeadbeef");
  EXPECT_EQ(log.parent_span, 7u);
  EXPECT_EQ(log.worker, 2);
  EXPECT_EQ(log.gen, 1);
  EXPECT_FALSE(log.torn_tail);
  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_EQ(log.events[0].name, "early.one");
  ASSERT_EQ(log.events[0].fields.size(), 1u);
  EXPECT_EQ(log.events[0].fields[0].first, "k");
  EXPECT_EQ(log.events[0].fields[0].second, "v");
  EXPECT_EQ(log.events[1].name, "early.two");
  EXPECT_EQ(log.events[2].name, "late.three");
}

TEST_F(EventLogTest, TornTailKeepsTruthfulPrefix) {
  sgp::obs::open_sidecar(path_, worker_info());
  sgp::obs::log_event("committed.event");
  sgp::obs::close_sidecar();
  {
    // Simulate a SIGKILL mid-append: a partial line with no CRC trailer.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "{\"type\":\"event\",\"t\":1.0,\"name\":\"torn";
  }
  const sgp::obs::ProcessLog log = sgp::obs::read_sidecar(path_);
  EXPECT_TRUE(log.torn_tail);
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].name, "committed.event");
}

TEST_F(EventLogTest, FlushWritesSpansAndMetricsSnapshot) {
  sgp::obs::set_trace_enabled(true);
  sgp::obs::clear_spans();
  sgp::obs::open_sidecar(path_, worker_info());
  sgp::obs::counter("test.evlog.counter").add(5);
  sgp::obs::gauge("test.evlog.gauge").set(2.5);
  sgp::obs::histogram("test.evlog.seconds").record(0.001);
  { sgp::obs::Span span("test.evlog.span"); }
  sgp::obs::flush_sidecar();
  // A later snapshot replaces the earlier one at read time (last wins).
  sgp::obs::counter("test.evlog.counter").add(1);
  sgp::obs::close_sidecar();
  sgp::obs::set_trace_enabled(false);

  const sgp::obs::ProcessLog log = sgp::obs::read_sidecar(path_);
  ASSERT_EQ(log.counters.count("test.evlog.counter"), 1u);
  EXPECT_EQ(log.counters.at("test.evlog.counter"), 6u);
  ASSERT_EQ(log.gauges.count("test.evlog.gauge"), 1u);
  EXPECT_DOUBLE_EQ(log.gauges.at("test.evlog.gauge"), 2.5);
  ASSERT_EQ(log.histograms.count("test.evlog.seconds"), 1u);
  const auto& h = log.histograms.at("test.evlog.seconds");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 0.001);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 1u);
  bool found_span = false;
  for (const auto& s : log.spans) {
    if (s.name == "test.evlog.span") found_span = true;
  }
  EXPECT_TRUE(found_span);
}

TEST_F(EventLogTest, BatchedEventsLandOnFlush) {
  sgp::obs::open_sidecar(path_, worker_info());
  sgp::obs::log_event("batched.sample", {{"rss", "1.0"}}, /*durable=*/false);
  sgp::obs::flush_sidecar();
  sgp::obs::close_sidecar();
  const sgp::obs::ProcessLog log = sgp::obs::read_sidecar(path_);
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].name, "batched.sample");
}

TEST_F(EventLogTest, DisabledLogIsNoOp) {
  sgp::obs::set_metrics_enabled(false);
  sgp::obs::log_event("ignored.event");
  EXPECT_TRUE(sgp::obs::collected_events().empty());
}

TEST_F(EventLogTest, ReadSidecarRejectsMissingFileAndMissingHeader) {
  EXPECT_THROW(sgp::obs::read_sidecar(path_ + ".nope"), sgp::util::IoError);
  {
    std::ofstream out(path_, std::ios::binary);
    out << sgp::obs::crc_frame(
               "{\"type\":\"event\",\"t\":0.5,\"name\":\"orphan\"}")
        << "\n";
  }
  EXPECT_THROW(sgp::obs::read_sidecar(path_), sgp::util::IoError);
}

TEST_F(EventLogTest, ClearEventLogDropsStateAndDetaches) {
  sgp::obs::open_sidecar(path_, worker_info());
  sgp::obs::log_event("before.clear");
  sgp::obs::clear_event_log();
  EXPECT_FALSE(sgp::obs::sidecar_open());
  EXPECT_TRUE(sgp::obs::collected_events().empty());
}

}  // namespace
