#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"

namespace sgp::ranking {
namespace {

graph::Graph path(std::size_t n) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, static_cast<std::uint32_t>(i + 1)});
  }
  return graph::Graph::from_edges(n, edges);
}

TEST(ClosenessTest, PathCenterHighestExact) {
  const auto g = path(5);
  const auto scores = closeness_centrality(g, 5);  // exact: all sources
  // Node 2 is the center of the path.
  for (std::size_t u = 0; u < 5; ++u) {
    if (u != 2) {
      EXPECT_GT(scores[2], scores[u]) << u;
    }
  }
  // Symmetry of the path.
  EXPECT_NEAR(scores[0], scores[4], 1e-12);
  EXPECT_NEAR(scores[1], scores[3], 1e-12);
}

TEST(ClosenessTest, ExactValuesOnPath) {
  const auto g = path(3);
  const auto scores = closeness_centrality(g, 3);
  // distances from each node: node0: 0+1+2=3; node1: 1+0+1=2; node2: 3.
  EXPECT_NEAR(scores[0], 1.0 / (1.0 + 3.0), 1e-12);
  EXPECT_NEAR(scores[1], 1.0 / (1.0 + 2.0), 1e-12);
}

TEST(ClosenessTest, DisconnectedNodesPenalized) {
  const auto g = graph::Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  const auto scores = closeness_centrality(g, 4);
  EXPECT_LT(scores[3], scores[0]);
  EXPECT_LT(scores[3], scores[1]);
}

TEST(ClosenessTest, SampledApproximatesExactRanking) {
  random::Rng rng(4);
  const auto g = graph::barabasi_albert(300, 3, rng);
  const auto exact = closeness_centrality(g, 300);
  const auto sampled = closeness_centrality(g, 60, 11);
  EXPECT_GT(spearman_rho(exact, sampled), 0.85);
}

TEST(ClosenessTest, DeterministicForSeed) {
  random::Rng rng(5);
  const auto g = graph::erdos_renyi(80, 0.1, rng);
  const auto a = closeness_centrality(g, 20, 3);
  const auto b = closeness_centrality(g, 20, 3);
  EXPECT_EQ(a, b);
}

TEST(ClosenessTest, InvalidArgsThrow) {
  EXPECT_THROW((void)closeness_centrality(graph::Graph(), 1),
               std::invalid_argument);
  const auto g = path(3);
  EXPECT_THROW((void)closeness_centrality(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::ranking
