#include "ranking/betweenness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"
#include "ranking/metrics.hpp"

namespace sgp::ranking {
namespace {

graph::Graph path(std::size_t n) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, static_cast<std::uint32_t>(i + 1)});
  }
  return graph::Graph::from_edges(n, edges);
}

graph::Graph star(std::size_t leaves) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 1; i <= leaves; ++i) edges.push_back({0, i});
  return graph::Graph::from_edges(leaves + 1, edges);
}

TEST(BetweennessTest, StarCenterCarriesAllPaths) {
  const auto bc = betweenness_centrality(star(5));
  // Center: all C(5,2) = 10 leaf pairs route through it.
  EXPECT_DOUBLE_EQ(bc[0], 10.0);
  for (std::size_t i = 1; i <= 5; ++i) EXPECT_DOUBLE_EQ(bc[i], 0.0);
}

TEST(BetweennessTest, PathInteriorValues) {
  // Path 0-1-2-3: bc(1) = pairs (0,2),(0,3) = 2; bc(2) = (0,3),(1,3) = 2.
  const auto bc = betweenness_centrality(path(4));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);
  EXPECT_DOUBLE_EQ(bc[2], 2.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(BetweennessTest, CycleIsUniform) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i < 6; ++i) {
    edges.push_back({i, static_cast<std::uint32_t>((i + 1) % 6)});
  }
  const auto bc = betweenness_centrality(graph::Graph::from_edges(6, edges));
  for (std::size_t i = 1; i < 6; ++i) EXPECT_NEAR(bc[i], bc[0], 1e-12);
}

TEST(BetweennessTest, CompleteGraphAllZero) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  const auto bc = betweenness_centrality(graph::Graph::from_edges(5, edges));
  for (double v : bc) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BetweennessTest, BridgeNodeDominates) {
  // Two triangles bridged via node 3 (articulation point).
  const auto g = graph::Graph::from_edges(
      7, std::vector<graph::Edge>{{0, 1},
                                  {1, 2},
                                  {0, 2},
                                  {2, 3},
                                  {3, 4},
                                  {4, 5},
                                  {5, 6},
                                  {4, 6}});
  const auto bc = betweenness_centrality(g);
  for (std::size_t i = 0; i < 7; ++i) {
    if (i != 3 && i != 2 && i != 4) {
      EXPECT_GT(bc[3], bc[i]) << i;
    }
  }
}

TEST(BetweennessTest, SplitShortestPathsShareCredit) {
  // Square 0-1-3-2-0: two equal paths 0→3 (via 1 and via 2), each interior
  // node gets 0.5 from pair (0,3) and 0.5 from pair... symmetric: bc(1) =
  // 0.5 (pair 0-3) and bc(2) = 0.5.
  const auto g = graph::Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(BetweennessTest, DisconnectedComponentsIndependent) {
  const auto g = graph::Graph::from_edges(
      6, std::vector<graph::Edge>{{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[4], 1.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
}

TEST(BetweennessTest, ApproximationExactWhenAllSources) {
  random::Rng rng(1);
  const auto g = graph::erdos_renyi(60, 0.1, rng);
  const auto exact = betweenness_centrality(g);
  const auto approx = approximate_betweenness(g, 60, 9);
  for (std::size_t i = 0; i < 60; ++i) {
    ASSERT_NEAR(approx[i], exact[i], 1e-9);
  }
}

TEST(BetweennessTest, SampledApproximationCorrelates) {
  random::Rng rng(2);
  const auto g = graph::barabasi_albert(300, 3, rng);
  const auto exact = betweenness_centrality(g);
  const auto approx = approximate_betweenness(g, 60, 11);
  EXPECT_GT(spearman_rho(exact, approx), 0.8);
}

TEST(BetweennessTest, InvalidArgsThrow) {
  EXPECT_THROW((void)betweenness_centrality(graph::Graph()),
               std::invalid_argument);
  const auto g = path(3);
  EXPECT_THROW((void)approximate_betweenness(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::ranking
