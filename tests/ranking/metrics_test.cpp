#include "ranking/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::ranking {
namespace {

TEST(RankingFromScoresTest, DescendingWithStableTies) {
  const std::vector<double> scores{1.0, 3.0, 2.0, 3.0};
  const auto order = ranking_from_scores(scores);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(TopKOverlapTest, IdenticalScoresIsOne) {
  const std::vector<double> s{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(top_k_overlap(s, s, 2), 1.0);
  EXPECT_DOUBLE_EQ(top_k_overlap(s, s, 5), 1.0);
}

TEST(TopKOverlapTest, DisjointTopsIsZero) {
  const std::vector<double> a{10, 9, 1, 1, 1, 1};
  const std::vector<double> b{1, 1, 1, 1, 9, 10};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.0);
}

TEST(TopKOverlapTest, PartialOverlap) {
  const std::vector<double> a{10, 9, 8, 0, 0};
  const std::vector<double> b{10, 0, 8, 9, 0};
  // top-3(a) = {0,1,2}; top-3(b) = {0,3,2} → overlap 2/3.
  EXPECT_NEAR(top_k_overlap(a, b, 3), 2.0 / 3.0, 1e-12);
}

TEST(TopKOverlapTest, FullSetAlwaysOne) {
  random::Rng rng(1);
  std::vector<double> a(20), b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    a[i] = rng.next_double();
    b[i] = rng.next_double();
  }
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 20), 1.0);
}

TEST(TopKOverlapTest, InvalidKThrows) {
  const std::vector<double> s{1, 2};
  EXPECT_THROW((void)top_k_overlap(s, s, 0), std::invalid_argument);
  EXPECT_THROW((void)top_k_overlap(s, s, 3), std::invalid_argument);
}

TEST(TopKJaccardTest, Values) {
  const std::vector<double> a{10, 9, 8, 0, 0};
  const std::vector<double> b{10, 0, 8, 9, 0};
  EXPECT_DOUBLE_EQ(top_k_jaccard(a, a, 2), 1.0);
  // |∩| = 2, |∪| = 4 → 0.5.
  EXPECT_NEAR(top_k_jaccard(a, b, 3), 0.5, 1e-12);
}

TEST(KendallTauTest, PerfectAgreement) {
  const std::vector<double> s{1, 2, 3, 4, 5};
  EXPECT_NEAR(kendall_tau(s, s), 1.0, 1e-12);
}

TEST(KendallTauTest, PerfectDisagreement) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{5, 4, 3, 2, 1};
  EXPECT_NEAR(kendall_tau(a, b), -1.0, 1e-12);
}

TEST(KendallTauTest, KnownSmallExample) {
  // a-order: 1,2,3,4. b: 1,3,2,4. Discordant pairs: (2,3) only → τ = (5-1)/6.
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{1, 3, 2, 4};
  EXPECT_NEAR(kendall_tau(a, b), 4.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, MatchesBruteForceOnRandomData) {
  random::Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> a(50), b(50);
    for (std::size_t i = 0; i < 50; ++i) {
      a[i] = random::normal(rng);
      b[i] = random::normal(rng);
    }
    double concordant = 0, discordant = 0;
    for (std::size_t i = 0; i < 50; ++i) {
      for (std::size_t j = i + 1; j < 50; ++j) {
        const double prod = (a[i] - a[j]) * (b[i] - b[j]);
        if (prod > 0) ++concordant;
        if (prod < 0) ++discordant;
      }
    }
    const double expect = (concordant - discordant) / (50.0 * 49.0 / 2.0);
    EXPECT_NEAR(kendall_tau(a, b), expect, 1e-12) << "trial " << trial;
  }
}

TEST(KendallTauTest, TiesHandledAsTauA) {
  // a has ties; tied pairs count in denominator but not numerator.
  const std::vector<double> a{1, 1, 2};
  const std::vector<double> b{1, 2, 3};
  // Pairs: (0,1) tied in a; (0,2) and (1,2) concordant → τ-a = 2/3.
  EXPECT_NEAR(kendall_tau(a, b), 2.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, SingleElementIsOne) {
  EXPECT_DOUBLE_EQ(kendall_tau({1.0}, {2.0}), 1.0);
}

TEST(KendallTauTest, IndependentRandomNearZero) {
  random::Rng rng(3);
  std::vector<double> a(5000), b(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = random::normal(rng);
    b[i] = random::normal(rng);
  }
  EXPECT_NEAR(kendall_tau(a, b), 0.0, 0.03);
}

TEST(SpearmanTest, PerfectMonotone) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{10, 100, 1000, 10000};  // nonlinear but monotone
  EXPECT_NEAR(spearman_rho(a, b), 1.0, 1e-12);
}

TEST(SpearmanTest, PerfectInverse) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  EXPECT_NEAR(spearman_rho(a, b), -1.0, 1e-12);
}

TEST(SpearmanTest, ConstantVectorIsZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(spearman_rho(a, b), 0.0);
}

TEST(SpearmanTest, TiesUseMidRanks) {
  // Classic example with ties; compare against scipy-verified value.
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> b{1, 2, 3, 4};
  // mid-ranks a: 1, 2.5, 2.5, 4; b: 1,2,3,4.
  // Pearson of those ranks = cov/σσ = (computed) ≈ 0.9486832980505138.
  EXPECT_NEAR(spearman_rho(a, b), 0.9486832980505138, 1e-12);
}

TEST(SpearmanTest, SizeMismatchThrows) {
  EXPECT_THROW((void)spearman_rho({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(AgreementTest, TauAndRhoAgreeInSignOnCorrelatedData) {
  random::Rng rng(4);
  std::vector<double> a(300), b(300);
  for (std::size_t i = 0; i < 300; ++i) {
    a[i] = random::normal(rng);
    b[i] = a[i] + 0.5 * random::normal(rng);
  }
  const double tau = kendall_tau(a, b);
  const double rho = spearman_rho(a, b);
  EXPECT_GT(tau, 0.4);
  EXPECT_GT(rho, 0.6);
  EXPECT_GT(rho, tau);  // ρ ≥ τ for positively correlated data (typical)
}

}  // namespace
}  // namespace sgp::ranking
