#include "ranking/centrality.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/generators.hpp"
#include "ranking/metrics.hpp"

namespace sgp::ranking {
namespace {

graph::Graph star(std::size_t leaves) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 1; i <= leaves; ++i) edges.push_back({0, i});
  return graph::Graph::from_edges(leaves + 1, edges);
}

TEST(DegreeCentralityTest, MatchesDegrees) {
  const auto g = star(4);
  const auto scores = degree_centrality(g);
  EXPECT_DOUBLE_EQ(scores[0], 4.0);
  for (std::size_t i = 1; i <= 4; ++i) EXPECT_DOUBLE_EQ(scores[i], 1.0);
}

TEST(EigenvectorCentralityTest, StarCenterDominates) {
  const auto scores = eigenvector_centrality(star(6));
  for (std::size_t i = 1; i <= 6; ++i) EXPECT_GT(scores[0], scores[i]);
  // Leaves symmetric.
  for (std::size_t i = 2; i <= 6; ++i) EXPECT_NEAR(scores[i], scores[1], 1e-8);
}

TEST(EigenvectorCentralityTest, UnitNormNonNegative) {
  random::Rng rng(1);
  const auto g = graph::barabasi_albert(200, 3, rng);
  const auto scores = eigenvector_centrality(g);
  double norm2 = 0;
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    norm2 += s * s;
  }
  EXPECT_NEAR(norm2, 1.0, 1e-6);
}

TEST(EigenvectorCentralityTest, SatisfiesEigenEquation) {
  random::Rng rng(2);
  const auto g = graph::erdos_renyi(50, 0.2, rng);
  const auto x = eigenvector_centrality(g, 500, 1e-14);
  // A x = λ x with λ = xᵀAx.
  const auto a = g.adjacency_matrix();
  const auto ax = a.multiply_vector(x);
  double lambda = 0;
  for (std::size_t i = 0; i < x.size(); ++i) lambda += x[i] * ax[i];
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(ax[i], lambda * x[i], 1e-6);
  }
}

TEST(EigenvectorCentralityTest, EmptyEdgeSetStaysUniform) {
  const auto g = graph::Graph::from_edges(5, {});
  const auto scores = eigenvector_centrality(g);
  for (double s : scores) EXPECT_NEAR(s, 1.0 / std::sqrt(5.0), 1e-12);
}

TEST(EigenvectorCentralityTest, EmptyGraphThrows) {
  EXPECT_THROW(eigenvector_centrality(graph::Graph()), std::invalid_argument);
}

TEST(PageRankTest, SumsToOne) {
  random::Rng rng(3);
  const auto g = graph::barabasi_albert(100, 2, rng);
  const auto pr = pagerank(g);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
}

TEST(PageRankTest, StarCenterHighest) {
  const auto pr = pagerank(star(5));
  for (std::size_t i = 1; i <= 5; ++i) EXPECT_GT(pr[0], pr[i]);
}

TEST(PageRankTest, RegularGraphIsUniform) {
  // Cycle: every node identical by symmetry.
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i < 10; ++i) {
    edges.push_back({i, static_cast<std::uint32_t>((i + 1) % 10)});
  }
  const auto g = graph::Graph::from_edges(10, edges);
  const auto pr = pagerank(g);
  for (double p : pr) EXPECT_NEAR(p, 0.1, 1e-9);
}

TEST(PageRankTest, DanglingNodesHandled) {
  // Node 2 is isolated (dangling in the undirected sense of degree 0).
  const auto g =
      graph::Graph::from_edges(3, std::vector<graph::Edge>{{0, 1}});
  const auto pr = pagerank(g);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(pr[0], pr[2]);
}

TEST(PageRankTest, InvalidAlphaThrows) {
  const auto g = star(3);
  EXPECT_THROW(pagerank(g, 1.0), std::invalid_argument);
  EXPECT_THROW(pagerank(g, -0.1), std::invalid_argument);
}

TEST(PageRankTest, CorrelatesWithDegreeOnHeavyTailGraph) {
  random::Rng rng(4);
  const auto g = graph::barabasi_albert(500, 3, rng);
  const auto pr = pagerank(g);
  const auto deg = degree_centrality(g);
  EXPECT_GT(spearman_rho(pr, deg), 0.9);
}

TEST(CentralityFromEmbeddingTest, AbsoluteFirstColumn) {
  linalg::DenseMatrix u(3, 2, {-0.5, 1.0, 0.3, 2.0, -0.1, 3.0});
  const auto scores = centrality_from_embedding(u);
  EXPECT_DOUBLE_EQ(scores[0], 0.5);
  EXPECT_DOUBLE_EQ(scores[1], 0.3);
  EXPECT_DOUBLE_EQ(scores[2], 0.1);
}

TEST(CentralityFromEmbeddingTest, EmptyColumnsThrow) {
  EXPECT_THROW(centrality_from_embedding(linalg::DenseMatrix(3, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgp::ranking
