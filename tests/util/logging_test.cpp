// Tests for the structured, thread-safe logger.
#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { sgp::util::set_log_level(sgp::util::LogLevel::kInfo); }
  void TearDown() override {
    sgp::util::set_log_level(sgp::util::LogLevel::kInfo);
  }
};

TEST_F(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  sgp::util::LogLevel level = sgp::util::LogLevel::kInfo;
  EXPECT_TRUE(sgp::util::parse_log_level("debug", level));
  EXPECT_EQ(level, sgp::util::LogLevel::kDebug);
  EXPECT_TRUE(sgp::util::parse_log_level("WARN", level));
  EXPECT_EQ(level, sgp::util::LogLevel::kWarn);
  EXPECT_TRUE(sgp::util::parse_log_level("Warning", level));
  EXPECT_EQ(level, sgp::util::LogLevel::kWarn);
  EXPECT_TRUE(sgp::util::parse_log_level("off", level));
  EXPECT_EQ(level, sgp::util::LogLevel::kOff);
  EXPECT_FALSE(sgp::util::parse_log_level("verbose", level));
  EXPECT_EQ(level, sgp::util::LogLevel::kOff);  // untouched on failure
}

TEST_F(LoggingTest, ThresholdFiltersLowerLevels) {
  sgp::util::set_log_level(sgp::util::LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  sgp::util::log_info("should be dropped");
  sgp::util::log_warn("should appear");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
  EXPECT_NE(captured.find("[WARN "), std::string::npos);
}

TEST_F(LoggingTest, LogStreamAppendsStructuredFields) {
  ::testing::internal::CaptureStderr();
  sgp::util::LogStream(sgp::util::LogLevel::kInfo)
      .with("nodes", 500)
      .with("dataset", "fb")
      << "loaded graph";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("loaded graph nodes=500 dataset=fb"),
            std::string::npos);
}

TEST_F(LoggingTest, ConcurrentLinesNeverInterleave) {
  // Each worker logs a recognizable full line; with the single-buffer
  // single-write design every captured line must carry an intact payload.
  constexpr int kLines = 200;
  const std::string payload(120, 'x');
  ::testing::internal::CaptureStderr();
  {
    sgp::util::ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < kLines; ++i) {
      futures.push_back(pool.submit(
          [&payload] { sgp::util::log_info("marker " + payload + " end"); }));
    }
    for (auto& f : futures) f.get();
  }
  const std::string captured = ::testing::internal::GetCapturedStderr();
  std::istringstream lines(captured);
  std::string line;
  int intact = 0;
  while (std::getline(lines, line)) {
    if (line.find("marker") == std::string::npos) continue;  // other noise
    EXPECT_NE(line.find("marker " + payload + " end"), std::string::npos)
        << "interleaved line: " << line;
    ++intact;
  }
  EXPECT_EQ(intact, kLines);
}

}  // namespace
