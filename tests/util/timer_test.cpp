#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sgp::util {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  WallTimer timer;
  const double t1 = timer.seconds();
  const double t2 = timer.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(TimerTest, MeasuresSleep) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
}

TEST(TimerTest, ResetRestartsClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(TimerTest, MillisMatchesSeconds) {
  WallTimer timer;
  const double s = timer.seconds();
  const double ms = timer.millis();
  EXPECT_GE(ms, s * 1e3);
  EXPECT_LT(ms, (s + 0.1) * 1e3);
}

}  // namespace
}  // namespace sgp::util
