// util/retry.hpp: deterministic backoff schedule, IoError-only retry
// semantics, sleeper injection, and the retry.attempts counter.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/retry.hpp"

namespace sgp::util {
namespace {

RetrySleeper recorder(std::vector<double>& sleeps) {
  return [&sleeps](double s) { sleeps.push_back(s); };
}

TEST(RetryBackoff, IsDeterministicAndCappedExponential) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    const double a = retry_backoff_seconds(policy, attempt);
    const double b = retry_backoff_seconds(policy, attempt);
    EXPECT_EQ(a, b) << "schedule must replay exactly, attempt " << attempt;
    // Jittered downward only: backoff · (1 − jitter·u) stays within
    // (base·(1−jitter), base].
    double base = policy.initial_backoff_seconds;
    for (std::size_t i = 1; i < attempt; ++i) base *= 2.0;
    base = std::min(base, policy.max_backoff_seconds);
    EXPECT_LE(a, base);
    EXPECT_GT(a, base * (1.0 - policy.jitter) - 1e-12);
  }
}

TEST(RetryBackoff, SeedChangesJitterOnly) {
  RetryPolicy a, b;
  b.seed = a.seed + 1;
  EXPECT_NE(retry_backoff_seconds(a, 1), retry_backoff_seconds(b, 1));
}

TEST(RetryWithBackoff, ReturnsFirstSuccess) {
  std::vector<double> sleeps;
  int calls = 0;
  const int result = retry_with_backoff(
      RetryPolicy{}, "test op",
      [&] {
        ++calls;
        if (calls < 3) throw IoError("transient");
        return 42;
      },
      recorder(sleeps));
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
}

TEST(RetryWithBackoff, RethrowsAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  std::vector<double> sleeps;
  int calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   policy, "test op",
                   [&]() -> int {
                     ++calls;
                     throw IoError("persistent");
                   },
                   recorder(sleeps)),
               IoError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);  // no sleep after the final failure
}

TEST(RetryWithBackoff, SingleAttemptPolicyIsFailFast) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  std::vector<double> sleeps;
  int calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   policy, "test op",
                   [&]() -> int {
                     ++calls;
                     throw IoError("boom");
                   },
                   recorder(sleeps)),
               IoError);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryWithBackoff, OnlyIoErrorIsRetried) {
  // Deterministic failures (precondition, parse, internal) must surface
  // immediately — retrying them would just repeat the failure.
  std::vector<double> sleeps;
  int calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   RetryPolicy{}, "test op",
                   [&]() -> int {
                     ++calls;
                     throw PreconditionError("bad input");
                   },
                   recorder(sleeps)),
               PreconditionError);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryWithBackoff, CountsRetriesInCanonicalCounter) {
  // Metrics are process-globally gated; the registry is off by default in
  // test binaries.
  obs::set_metrics_enabled(true);
  const auto before = obs::counter(obs::names::kRetryAttempts).value();
  std::vector<double> sleeps;
  int calls = 0;
  retry_with_backoff(
      RetryPolicy{}, "test op",
      [&] {
        ++calls;
        if (calls < 2) throw IoError("transient");
        return 0;
      },
      recorder(sleeps));
  EXPECT_EQ(obs::counter(obs::names::kRetryAttempts).value(), before + 1);
  obs::set_metrics_enabled(false);
}

TEST(RetryWithBackoff, RidesOutSingleFireInjectedFault) {
  // The integration the shard loop relies on: a count=1 armed fault is
  // absorbed by a retrying policy and the operation still succeeds.
  disarm_all_faults();
  FaultConfig cfg;
  cfg.max_fires = 1;
  arm_fault("io.read", cfg);
  std::vector<double> sleeps;
  const int result = retry_with_backoff(
      RetryPolicy{}, "faulty read",
      [&] {
        fault_point("io.read");
        return 7;
      },
      recorder(sleeps));
  EXPECT_EQ(result, 7);
  EXPECT_EQ(sleeps.size(), 1u);
  disarm_all_faults();
}

TEST(RetryWithBackoff, RejectsZeroAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(
      retry_with_backoff(policy, "test op", [] { return 0; }),
      PreconditionError);
}

}  // namespace
}  // namespace sgp::util
