// util/durable.hpp: the fsync-per-append log writer behind the checkpoint
// and lease files. Durability itself (surviving power loss) cannot be
// asserted in a unit test; what can is the contract around it — bytes land
// exactly as appended, truncate/append modes behave, and failures surface
// as IoError instead of silent data loss.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/durable.hpp"
#include "util/errors.hpp"

namespace sgp::util {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class DurableTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/sgp_durable_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DurableTest, AppendsBytesExactly) {
  DurableAppender log;
  EXPECT_FALSE(log.is_open());
  log.open(path_, /*truncate=*/true);
  EXPECT_TRUE(log.is_open());
  EXPECT_EQ(log.path(), path_);
  log.append("header\n");
  log.append_line("record 1");
  log.append_line("record 2");
  log.close();
  EXPECT_FALSE(log.is_open());
  EXPECT_EQ(read_all(path_), "header\nrecord 1\nrecord 2\n");
}

TEST_F(DurableTest, TruncateDiscardsExistingContent) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "stale stale stale\n";
  }
  DurableAppender log;
  log.open(path_, /*truncate=*/true);
  log.append_line("fresh");
  log.close();
  EXPECT_EQ(read_all(path_), "fresh\n");
}

TEST_F(DurableTest, AppendModePreservesExistingContent) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "kept\n";
  }
  DurableAppender log;
  log.open(path_, /*truncate=*/false);
  log.append_line("added");
  log.close();
  EXPECT_EQ(read_all(path_), "kept\nadded\n");
}

TEST_F(DurableTest, CloseIsIdempotent) {
  DurableAppender log;
  log.open(path_, /*truncate=*/true);
  log.append_line("x");
  log.close();
  EXPECT_NO_THROW(log.close());
}

TEST_F(DurableTest, ReopenContinuesTheLog) {
  {
    DurableAppender log;
    log.open(path_, /*truncate=*/true);
    log.append_line("first");
  }  // destructor closes silently
  DurableAppender log;
  log.open(path_, /*truncate=*/false);
  log.append_line("second");
  log.close();
  EXPECT_EQ(read_all(path_), "first\nsecond\n");
}

TEST_F(DurableTest, OpenFailureThrowsIoError) {
  DurableAppender log;
  EXPECT_THROW(log.open(testing::TempDir() + "/no_such_dir_sgp/x.log",
                        /*truncate=*/true),
               IoError);
  EXPECT_FALSE(log.is_open());
}

TEST_F(DurableTest, AppendOnClosedHandleThrows) {
  DurableAppender log;
  EXPECT_THROW(log.append("data"), IoError);
}

TEST_F(DurableTest, OneShotDurableAppend) {
  durable_append(path_, "a\n");
  durable_append(path_, "b\n");
  EXPECT_EQ(read_all(path_), "a\nb\n");
}

}  // namespace
}  // namespace sgp::util
