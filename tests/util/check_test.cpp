#include "util/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/errors.hpp"

namespace sgp::util {
namespace {

TEST(CheckTest, RequirePassesWhenTrue) {
  EXPECT_NO_THROW(require(true, "never thrown"));
}

TEST(CheckTest, RequireThrowsTypedPreconditionError) {
  EXPECT_THROW(require(false, "bad arg"), PreconditionError);
}

TEST(CheckTest, RequireStaysCatchableAsInvalidArgument) {
  // Exit-code contract: usage errors map to exit 2 via the tools'
  // catch (std::invalid_argument); the typed error must stay inside it.
  EXPECT_THROW(require(false, "bad arg"), std::invalid_argument);
}

TEST(CheckTest, RequireMessagePropagates) {
  try {
    require(false, "epsilon must be positive");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "epsilon must be positive");
  }
}

TEST(CheckTest, EnsurePassesWhenTrue) {
  EXPECT_NO_THROW(ensure(true, "never thrown"));
}

TEST(CheckTest, EnsureThrowsTypedInternalError) {
  EXPECT_THROW(ensure(false, "invariant broken"), InternalError);
}

TEST(CheckTest, EnsureKindIsInternal) {
  try {
    ensure(false, "invariant broken");
    FAIL() << "expected throw";
  } catch (const SgpError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInternal);
  }
}

TEST(CheckTest, EnsureStaysCatchableAsRuntimeError) {
  EXPECT_THROW(ensure(false, "invariant broken"), std::runtime_error);
}

TEST(CheckTest, EnsureMessagePropagates) {
  try {
    ensure(false, "lanczos failed to converge");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lanczos failed to converge");
  }
}

TEST(CheckTest, RequireMacroAddsFileLineContext) {
  try {
    SGP_REQUIRE(1 == 2, "ids must match");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("ids must match"), std::string::npos) << what;
  }
}

TEST(CheckTest, CheckMacroThrowsInternalErrorWithContext) {
  try {
    SGP_CHECK(false, "ledger invariant");
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("ledger invariant"), std::string::npos) << what;
  }
}

TEST(CheckTest, MacrosDoNotThrowWhenConditionHolds) {
  EXPECT_NO_THROW(SGP_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(SGP_CHECK(true, "fine"));
}

}  // namespace
}  // namespace sgp::util
